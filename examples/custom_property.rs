//! Writing a custom, application-specific correctness property — and
//! assembling the whole scenario with the fluent `ScenarioBuilder`.
//!
//! The paper lets programmers express correctness as Python snippets that
//! observe transitions and assert over the global state (Section 5.1). Here
//! the same role is played by implementing the `Property` trait: this example
//! defines "the controller never floods more than a bounded number of times"
//! and checks the MAC-learning switch against it on the Figure 1 topology.
//!
//! Run with: `cargo run --release --example custom_property`

use nice::apps::pyswitch::{PySwitchApp, PySwitchVariant};
use nice::mc::properties::Event;
use nice::mc::state::SystemState;
use nice::openflow::EthType;
use nice::prelude::*;

/// A custom property: flooding is allowed only a bounded number of times per
/// execution (a crude proxy for "the controller eventually learns paths").
#[derive(Debug, Clone)]
struct BoundedFlooding {
    max_floods: usize,
    floods_seen: usize,
}

impl BoundedFlooding {
    fn new(max_floods: usize) -> Self {
        BoundedFlooding {
            max_floods,
            floods_seen: 0,
        }
    }
}

impl Property for BoundedFlooding {
    fn name(&self) -> &str {
        "BoundedFlooding"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if let Event::PacketFlooded { .. } = event {
            self.floods_seen += 1;
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        (self.floods_seen > self.max_floods).then(|| {
            format!(
                "the controller flooded {} times (allowed: {})",
                self.floods_seen, self.max_floods
            )
        })
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

fn main() {
    // The system under test, assembled from scratch with the builder: the
    // Figure 1 topology, the published pyswitch, a pinging client, an
    // echoing peer, symbolic packet discovery over the layer-2 ping
    // domains, and our custom property.
    let topology = Topology::linear_two_switches();
    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();
    let domains = PacketDomains::from_topology(&topology)
        .with_eth_types(vec![EthType::L2Ping.value() as u64])
        .with_ports(vec![0])
        .with_payloads(vec![0]);

    let scenario = Scenario::builder("pyswitch-bounded-flooding")
        .topology(topology)
        .app(Box::new(PySwitchApp::new(PySwitchVariant::Original)))
        .host(Box::new(ClientHost::new(
            host_a,
            SendBudget::sends_with_burst(2, 1),
        )))
        .host(Box::new(
            ClientHost::new(host_b, SendBudget::SILENT).with_echo(),
        ))
        .send_policy(SendPolicy::Discover)
        .packet_domains(domains)
        .property(Box::new(BoundedFlooding::new(2)))
        .build();

    let report = Nice::new(scenario).with_max_transitions(100_000).check();
    println!("custom property check: {report}");
    match report.first_violation() {
        Some(v) => println!("violation found as expected: {}", v.message),
        None => println!("no violation found — try lowering the flood budget"),
    }
}
