//! Writing a custom, application-specific correctness property.
//!
//! The paper lets programmers express correctness as Python snippets that
//! observe transitions and assert over the global state (Section 5.1). Here
//! the same role is played by implementing the `Property` trait: this example
//! defines "the controller never floods more than a bounded number of times"
//! and checks the MAC-learning switch against it.
//!
//! Run with: `cargo run --release --example custom_property`

use nice::mc::properties::Event;
use nice::mc::state::SystemState;
use nice::prelude::*;

/// A custom property: flooding is allowed only a bounded number of times per
/// execution (a crude proxy for "the controller eventually learns paths").
#[derive(Debug, Clone)]
struct BoundedFlooding {
    max_floods: usize,
    floods_seen: usize,
}

impl BoundedFlooding {
    fn new(max_floods: usize) -> Self {
        BoundedFlooding {
            max_floods,
            floods_seen: 0,
        }
    }
}

impl Property for BoundedFlooding {
    fn name(&self) -> &str {
        "BoundedFlooding"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if let Event::PacketFlooded { .. } = event {
            self.floods_seen += 1;
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        (self.floods_seen > self.max_floods).then(|| {
            format!(
                "the controller flooded {} times (allowed: {})",
                self.floods_seen, self.max_floods
            )
        })
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

fn main() {
    // The pyswitch scenario from the paper's evaluation, but with our custom
    // property attached instead of the built-in ones.
    let mut scenario = nice::scenarios::bug_scenario(nice::scenarios::BugId::BugII);
    scenario.properties.clear();
    scenario.properties.push(Box::new(BoundedFlooding::new(2)));
    scenario.name = "pyswitch-bounded-flooding".into();

    let report = Nice::new(scenario).with_max_transitions(100_000).check();
    println!("custom property check: {report}");
    match report.first_violation() {
        Some(v) => println!("violation found as expected: {}", v.message),
        None => println!("no violation found — try lowering the flood budget"),
    }
}
