//! Testing the web-server load balancer of Section 8.2.
//!
//! Reproduces two findings from the paper, checking registry scenarios
//! through sessions bounded by a wall-clock budget:
//! * BUG-IV — after installing the per-connection rule the controller
//!   forgets to release the buffered packet (`NoForgottenPackets`).
//! * BUG-VII — a duplicate SYN during a policy change splits a TCP
//!   connection across replicas (`FlowAffinity`).
//!
//! Run with: `cargo run --release --example load_balancer`

use nice::prelude::*;
use nice::scenarios::find_scenario;
use std::time::Duration;

fn main() {
    println!("NICE: checking the OpenFlow load balancer");
    println!("=========================================");

    for (label, name) in [
        ("BUG-IV (forgotten packet)", "bug-iv-next-packet-dropped"),
        ("BUG-VII (duplicate SYN)", "bug-vii-duplicate-syn"),
    ] {
        let entry = find_scenario(name).expect("registered");
        // A session with a time budget: even a search that would blow the
        // transition budget ends within a minute, and the report says so
        // (`outcome: interrupted-by-deadline`) instead of silently lying.
        let report = Nice::new(entry.build())
            .with_max_transitions(300_000)
            .checker()
            .session()
            .with_time_budget(Duration::from_secs(60))
            .run();
        println!("\n{label}:");
        if report.outcome.interrupted() {
            println!("  search interrupted by its time budget before a verdict");
        }
        match report.first_violation() {
            Some(v) => {
                println!("  violated property : {}", v.property);
                println!("  message           : {}", v.message);
                println!("  trace length      : {} transitions", v.trace.len());
                println!(
                    "  found after       : {} transitions explored",
                    v.transitions_explored
                );
            }
            None => println!("  no violation found (unexpected)"),
        }
    }

    // The fixed load balancer releases every buffered packet.
    let entry = find_scenario("bug-iv-fixed").expect("registered");
    let report = Nice::new(entry.build())
        .with_max_transitions(300_000)
        .check();
    println!(
        "\nfixed load balancer vs NoForgottenPackets: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
}
