//! Testing the web-server load balancer of Section 8.2.
//!
//! Reproduces two findings from the paper:
//! * BUG-IV — after installing the per-connection rule the controller
//!   forgets to release the buffered packet (`NoForgottenPackets`).
//! * BUG-VII — a duplicate SYN during a policy change splits a TCP
//!   connection across replicas (`FlowAffinity`).
//!
//! Run with: `cargo run --release --example load_balancer`

use nice::prelude::*;
use nice::scenarios::{bug_scenario, fixed_scenario, BugId};

fn main() {
    println!("NICE: checking the OpenFlow load balancer");
    println!("=========================================");

    for (label, bug) in [
        ("BUG-IV (forgotten packet)", BugId::BugIV),
        ("BUG-VII (duplicate SYN)", BugId::BugVII),
    ] {
        let report = Nice::new(bug_scenario(bug))
            .with_max_transitions(300_000)
            .check();
        println!("\n{label}:");
        match report.first_violation() {
            Some(v) => {
                println!("  violated property : {}", v.property);
                println!("  message           : {}", v.message);
                println!("  trace length      : {} transitions", v.trace.len());
                println!(
                    "  found after       : {} transitions explored",
                    v.transitions_explored
                );
            }
            None => println!("  no violation found (unexpected)"),
        }
    }

    // The fixed load balancer releases every buffered packet.
    let report = Nice::new(fixed_scenario(BugId::BugIV).expect("fixed variant"))
        .with_max_transitions(300_000)
        .check();
    println!(
        "\nfixed load balancer vs NoForgottenPackets: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
}
