//! Testing the energy-efficient traffic-engineering application of
//! Section 8.3 on the triangle topology (always-on path through switches
//! 1–2, on-demand path through switch 3).
//!
//! Reproduces BUG-VIII (first packet of a flow dropped), BUG-X (only
//! on-demand routes used under high load, caught by the application-specific
//! `UseCorrectRoutingTable` property) and shows the fixed variant passing —
//! all resolved by name from the scenario registry and driven as sessions.
//!
//! Run with: `cargo run --release --example traffic_engineering`

use nice::prelude::*;
use nice::scenarios::find_scenario;

fn main() {
    println!("NICE: checking the energy-aware traffic-engineering application");
    println!("===============================================================");

    for (label, name) in [
        (
            "BUG-VIII (first packet dropped)",
            "bug-viii-first-packet-dropped",
        ),
        (
            "BUG-X (only on-demand routes under high load)",
            "bug-x-only-on-demand-routes",
        ),
    ] {
        let entry = find_scenario(name).expect("registered");
        let report = Nice::new(entry.build())
            .with_max_transitions(300_000)
            .check_with(&mut |event: &CheckEvent| {
                if let CheckEvent::Started { scenario, .. } = event {
                    println!("\n{label} [{scenario}]:");
                }
            });
        match report.first_violation() {
            Some(v) => {
                println!("  violated property : {}", v.property);
                println!("  message           : {}", v.message);
                println!("  shortest trace    :");
                for (i, step) in v.trace.iter().enumerate() {
                    println!("    {:>2}. {step}", i + 1);
                }
            }
            None => println!("  no violation found (unexpected)"),
        }
    }

    let entry = find_scenario("bug-x-fixed").expect("registered");
    let report = Nice::new(entry.build())
        .with_max_transitions(300_000)
        .check();
    println!(
        "\nfixed traffic engineering vs UseCorrectRoutingTable: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
}
