//! Testing the energy-efficient traffic-engineering application of
//! Section 8.3 on the triangle topology (always-on path through switches
//! 1–2, on-demand path through switch 3).
//!
//! Reproduces BUG-VIII (first packet of a flow dropped), BUG-X (only
//! on-demand routes used under high load, caught by the application-specific
//! `UseCorrectRoutingTable` property) and shows the fixed variant passing.
//!
//! Run with: `cargo run --release --example traffic_engineering`

use nice::prelude::*;
use nice::scenarios::{bug_scenario, fixed_scenario, BugId};

fn main() {
    println!("NICE: checking the energy-aware traffic-engineering application");
    println!("===============================================================");

    for (label, bug) in [
        ("BUG-VIII (first packet dropped)", BugId::BugVIII),
        ("BUG-X (only on-demand routes under high load)", BugId::BugX),
    ] {
        let report = Nice::new(bug_scenario(bug))
            .with_max_transitions(300_000)
            .check();
        println!("\n{label}:");
        match report.first_violation() {
            Some(v) => {
                println!("  violated property : {}", v.property);
                println!("  message           : {}", v.message);
                println!("  shortest trace    :");
                for (i, step) in v.trace.iter().enumerate() {
                    println!("    {:>2}. {step}", i + 1);
                }
            }
            None => println!("  no violation found (unexpected)"),
        }
    }

    let report = Nice::new(fixed_scenario(BugId::BugX).expect("fixed variant"))
        .with_max_transitions(300_000)
        .check();
    println!(
        "\nfixed traffic engineering vs UseCorrectRoutingTable: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
}
