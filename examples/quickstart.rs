//! Quickstart: test the MAC-learning switch of Figure 3 with NICE.
//!
//! Runs two checks on the two-switch topology of Figure 1:
//! 1. The published pyswitch violates `StrictDirectPaths` (BUG-II: the
//!    controller only installs rules for one direction at a time).
//! 2. The fixed variant (install the reverse rule first) passes.
//!
//! Run with: `cargo run --release --example quickstart`

use nice::prelude::*;
use nice::scenarios::{bug_scenario, fixed_scenario, BugId};

fn main() {
    println!("NICE quickstart (v{})", nice::VERSION);
    println!("=================================================");

    // 1. Check the original pyswitch.
    let report = Nice::new(bug_scenario(BugId::BugII))
        .with_strategy(StrategyKind::FullDfs)
        .with_max_transitions(200_000)
        .check();
    println!("\n[1] pyswitch (as published) vs StrictDirectPaths:");
    println!("{report}");
    assert!(!report.passed(), "expected to reproduce BUG-II");

    // 2. Check the fixed variant on the same workload.
    let report = Nice::new(fixed_scenario(BugId::BugII).expect("fixed variant exists"))
        .with_max_transitions(200_000)
        .check();
    println!("\n[2] pyswitch (two-way install fix) vs StrictDirectPaths:");
    println!("{report}");
    assert!(report.passed(), "the fix must satisfy StrictDirectPaths");

    println!("\nDone: the bug is reproduced and the fix verified.");
}
