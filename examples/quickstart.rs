//! Quickstart: test the MAC-learning switch of Figure 3 with NICE.
//!
//! Runs two checks from the scenario registry on the two-switch topology of
//! Figure 1, driving each through an observable check *session*:
//! 1. The published pyswitch violates `StrictDirectPaths` (BUG-II: the
//!    controller only installs rules for one direction at a time) — the
//!    violation is streamed the moment the search finds it.
//! 2. The fixed variant (install the reverse rule first) passes.
//!
//! Run with: `cargo run --release --example quickstart`

use nice::prelude::*;
use nice::scenarios::{find_scenario, ScenarioEntry};

/// Checks one registry entry through the session API, streaming progress
/// and violations as they happen, and returns the final report.
fn check_streaming(entry: &ScenarioEntry) -> CheckReport {
    let checker = Nice::new(entry.build())
        .with_strategy(StrategyKind::FullDfs)
        .with_max_transitions(200_000)
        .checker();
    checker
        .session()
        .with_progress_every(5_000)
        .run_with(&mut |event: &CheckEvent| match event {
            CheckEvent::Started {
                scenario, strategy, ..
            } => {
                println!("  checking {scenario} with {strategy}...")
            }
            CheckEvent::Progress {
                states,
                transitions,
                rate,
                ..
            } => {
                println!("  ... {states} states / {transitions} transitions ({rate:.0} states/s)")
            }
            CheckEvent::ViolationFound(v) => {
                println!(
                    "  ! {} violated after {} transitions",
                    v.property, v.transitions_explored
                )
            }
            CheckEvent::Finished(_) => {}
        })
}

fn main() {
    println!("NICE quickstart (v{})", nice::VERSION);
    println!("=================================================");

    // 1. Check the original pyswitch (the registry names every scenario;
    //    `nice list` prints the same set).
    let buggy = find_scenario("bug-ii-delayed-direct-path").expect("registered");
    println!("\n[1] pyswitch (as published) vs StrictDirectPaths:");
    let report = check_streaming(&buggy);
    println!("{report}");
    assert!(!report.passed(), "expected to reproduce BUG-II");

    // 2. Check the fixed variant on the same workload.
    let fixed = find_scenario("bug-ii-fixed").expect("registered");
    println!("\n[2] pyswitch (two-way install fix) vs StrictDirectPaths:");
    let report = check_streaming(&fixed);
    println!("{report}");
    assert!(report.passed(), "the fix must satisfy StrictDirectPaths");

    println!("\nDone: the bug is reproduced and the fix verified.");
}
