//! Using NICE as a simulator: random walks over the system state space
//! (Section 1.3: "the programmer can also use NICE as a simulator to perform
//! manually-driven, step-by-step system executions or random walks").
//!
//! Compares how quickly random walks and the systematic search find BUG-VIII
//! in the traffic-engineering application; the systematic leg runs as a
//! session so the moment of detection is streamed live.
//!
//! Run with: `cargo run --release --example random_walk`

use nice::prelude::*;
use nice::scenarios::find_scenario;

fn main() {
    let entry = find_scenario("bug-viii-first-packet-dropped").expect("registered");
    let nice = Nice::new(entry.build()).with_max_transitions(200_000);

    println!("Random-walk simulation vs systematic search (BUG-VIII)");
    println!("=======================================================");

    for seed in [1u64, 7, 42] {
        let report = nice.random_walk(seed, 20, 200);
        println!(
            "random walks (seed {seed:>2}): {} transitions, {} walks hit a violation: {}",
            report.stats.transitions,
            report.violations.len(),
            if report.passed() {
                "none found"
            } else {
                "found"
            }
        );
    }

    let report = nice.check_with(&mut |event: &CheckEvent| {
        if let CheckEvent::ViolationFound(v) = event {
            println!(
                "systematic search     : {} found after {} transitions (streamed)",
                v.property, v.transitions_explored
            );
        }
    });
    println!(
        "systematic search     : {} transitions, violation {}",
        report.stats.transitions,
        if report.passed() {
            "not found"
        } else {
            "found"
        }
    );
    if let Some(v) = report.first_violation() {
        println!("  shortest trace has {} steps", v.trace.len());
    }
}
