//! Offline stand-in for the tiny slice of the `rand` crate this workspace
//! uses: a seedable deterministic generator (`rngs::StdRng`) and
//! `Rng::gen_range` over integer ranges.
//!
//! The build environment has no network access, so the real crates-io
//! dependency cannot be fetched. This shim is deliberately minimal — it is
//! **not** cryptographically secure and does not promise the same stream as
//! the real `StdRng`; the workspace only relies on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Trait for seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that `gen_range` can produce.
pub trait SampleUniform: Copy {
    /// Converts from the generator's native `u64`, reduced modulo the span.
    fn from_u64(v: u64) -> Self;
    /// Widens to `u64` for span arithmetic.
    fn to_u64(self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Trait providing range sampling (shim of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniformly samples from a half-open integer range. Panics if the range
    /// is empty, like the real `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "cannot sample from an empty range");
        let span = hi - lo;
        // Multiply-shift reduction: unbiased enough for simulation purposes
        // and, crucially, deterministic.
        let v = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + v)
    }

    /// A uniformly random boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Generator implementations (shim of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xorshift* over a SplitMix64-expanded
    /// seed). Not the real `StdRng` stream, but stable per seed forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread low-entropy seeds over the state space.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }
}
