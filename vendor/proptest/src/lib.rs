//! Offline stand-in for the slice of the `proptest` crate this workspace
//! uses. The build environment has no network access, so the real crates-io
//! dependency cannot be fetched.
//!
//! What is implemented: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, strategies for integer ranges / tuples / `Just` / `any` /
//! collections, the `proptest!`, `prop_oneof!` and `prop_assert*` macros,
//! and a deterministic test runner (default 64 cases per property,
//! overridable with `PROPTEST_CASES`). What is not: shrinking, persisted
//! failure seeds, and the full strategy combinator zoo. Failures report the
//! deterministic case index, which reproduces the exact inputs.

#![forbid(unsafe_code)]

/// Deterministic random generation for test cases.
pub mod test_runner {
    /// A deterministic 64-bit generator (SplitMix64). Each test case gets its
    /// own stream derived from the case index, so failures are reproducible
    /// by case number alone.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5DEE_CE66_D613_7C1F,
            }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform sample from `[0, bound)`. Panics on `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below zero");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Drives the per-property case loop.
    #[derive(Debug)]
    pub struct TestRunner {
        /// Number of cases to run per property.
        pub cases: u64,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            TestRunner { cases }
        }
    }

    impl TestRunner {
        /// The generator for one case.
        pub fn rng_for_case(&self, case: u64) -> TestRng {
            TestRng::for_case(case)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type (shim of
    /// `proptest::strategy::Strategy`). No shrinking support.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (**self).gen_value(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always produces a clone of one value (shim of
    /// `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn gen_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (the expansion of
    /// `prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds a choice over `options`. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// Types with a canonical strategy (shim of `proptest::arbitrary`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A type with a default generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (shim of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize);
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s with a target size drawn from `size`. Like the
    /// real crate, generation retries on duplicates; if the element domain is
    /// too small the set may come out smaller than requested.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Alias module so `prop::collection::vec(...)` works as in the real crate.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface (shim of `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {
        if !($cond) {
            return Err(format!($fmt $(, $arg)*));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($fmt $(, $arg)*),
                left,
                right
            ));
        }
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Uniform choice between alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::default();
            for case in 0..runner.cases {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), String> = (move || {
                    $body
                    Ok(())
                })();
                if let Err(message) = result {
                    panic!(
                        "proptest {} failed at deterministic case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        runner.cases,
                        message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let v = (3u64..17).gen_value(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=32).gen_value(&mut rng);
            assert!(w <= 32);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let v = prop::collection::vec(0u32..10, 2..5).gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s: BTreeSet<u64> =
                prop::collection::btree_set(0u64..1000, 1..6).gen_value(&mut rng);
            assert!(!s.is_empty() && s.len() < 6);
        }
    }

    #[test]
    fn oneof_map_just_and_tuples_compose() {
        let strategy = prop_oneof![
            (0u32..3, 10u32..13).prop_map(|(a, b)| a + b),
            Just(99u32),
            any::<bool>().prop_map(|b| b as u32),
        ];
        let mut rng = TestRng::for_case(2);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = strategy.gen_value(&mut rng);
            assert!(v == 99 || v <= 15);
            saw_just |= v == 99;
        }
        assert!(saw_just, "each alternative is reachable");
    }

    proptest! {
        /// The macro wires arguments, assertions and the case loop together.
        #[test]
        fn macro_smoke(a in 0u64..10, b in 0u64..10) {
            prop_assert!(a < 10);
            prop_assert!(b < 10, "b out of range: {}", b);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }
}
