//! Offline stand-in for the slice of the `criterion` crate this workspace
//! uses. The build environment has no network access, so the real crates-io
//! dependency cannot be fetched.
//!
//! Semantics: each benchmark runs a short warm-up, then `sample_size` timed
//! samples (each sample is one invocation of the closure passed to
//! [`Bencher::iter`]); mean / min / max wall-clock times are printed in a
//! criterion-like format. There is no statistical analysis, HTML report, or
//! saved baseline — just honest wall-clock numbers suitable for the coarse
//! comparisons these benches make.
//!
//! Running with `--quick` (or `CRITERION_QUICK=1`) reduces the sample count
//! to 2, mirroring criterion's quick mode. Other CLI flags criterion accepts
//! (e.g. `--bench`, filters passed by `cargo bench`) are tolerated: unknown
//! arguments select benchmarks by substring match, like the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (shim of
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group (shim of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Renders the id.
    pub fn as_str(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark's measurement loop (shim of `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    /// Wall-clock duration of each sample, filled by [`Bencher::iter`].
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample after a single warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(name: &str, samples: usize, filters: &[String], f: impl FnOnce(&mut Bencher)) {
    if !filters.is_empty() && !filters.iter().any(|needle| name.contains(needle.as_str())) {
        return;
    }
    let mut bencher = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut bencher);
    if bencher.durations.is_empty() {
        println!("{name:<40} (no measurement — Bencher::iter never called)");
        return;
    }
    let total: Duration = bencher.durations.iter().sum();
    let mean = total / bencher.durations.len() as u32;
    let min = *bencher.durations.iter().min().unwrap();
    let max = *bencher.durations.iter().max().unwrap();
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        bencher.durations.len(),
    );
}

/// A named collection of related benchmarks (shim of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.criterion.quick { n.min(2) } else { n };
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility; the
    /// shim always runs exactly `sample_size` samples.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &self.criterion.filters, |b| f(b));
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &self.criterion.filters, |b| {
            f(b, input)
        });
    }

    /// Ends the group (a no-op in the shim; printing is immediate).
    pub fn finish(self) {}
}

/// The benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        // Positional (non-flag) arguments filter benchmarks by substring,
        // matching `cargo bench -- <filter>` behaviour.
        let filters = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .collect();
        Criterion {
            sample_size: if quick { 2 } else { 10 },
            quick,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = if self.quick { n.min(2) } else { n };
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &self.filters, |b| f(b));
        self
    }

    /// Final configuration hook used by `criterion_main!`.
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group function (shim of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (shim of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: 3,
            durations: Vec::new(),
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.durations.len(), 3);
        assert_eq!(count, 4, "one warm-up plus three samples");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("search", 4).as_str(), "search/4");
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
