//! Integration tests: every Table 2 bug is detected by at least the full
//! (PKT-SEQ) search within a modest transition budget, the violated property
//! matches the paper, and the available fixes eliminate the violations.

use nice_apps::scenarios::{bug_scenario, fixed_scenario, registry, BugId, ScenarioKind};
use nice_mc::{CheckerConfig, ModelChecker, StrategyKind};

fn detect(bug: BugId, strategy: StrategyKind, budget: u64) -> Option<String> {
    let report = ModelChecker::new(
        bug_scenario(bug),
        CheckerConfig::default()
            .with_strategy(strategy)
            .with_max_transitions(budget),
    )
    .run();
    report.first_violation().map(|v| v.property.clone())
}

#[test]
fn cheap_bugs_are_detected_with_the_expected_property() {
    // The quick-to-find bugs (small traces in Table 2).
    for bug in [
        BugId::BugIII,
        BugId::BugIV,
        BugId::BugVI,
        BugId::BugVIII,
        BugId::BugIX,
    ] {
        let property = detect(bug, StrategyKind::FullDfs, 200_000)
            .unwrap_or_else(|| panic!("{bug:?} was not detected"));
        assert_eq!(property, bug.property_name(), "{bug:?}");
    }
}

#[test]
fn bug_ii_violates_strict_direct_paths() {
    let property = detect(BugId::BugII, StrategyKind::FullDfs, 500_000).expect("BUG-II not found");
    assert_eq!(property, "StrictDirectPaths");
}

#[test]
fn bug_v_and_vii_are_found_in_the_load_balancer() {
    let property = detect(BugId::BugV, StrategyKind::FullDfs, 500_000).expect("BUG-V not found");
    assert_eq!(property, "NoForgottenPackets");
    let property =
        detect(BugId::BugVII, StrategyKind::FullDfs, 500_000).expect("BUG-VII not found");
    assert_eq!(property, "FlowAffinity");
}

#[test]
fn bug_x_violates_use_correct_routing_table() {
    let property = detect(BugId::BugX, StrategyKind::FullDfs, 500_000).expect("BUG-X not found");
    assert_eq!(property, "UseCorrectRoutingTable");
}

#[test]
fn unusual_strategy_finds_the_race_condition_bugs() {
    for bug in [BugId::BugIX, BugId::BugXI] {
        let property = detect(bug, StrategyKind::Unusual, 500_000)
            .unwrap_or_else(|| panic!("{bug:?} was not detected by UNUSUAL"));
        assert_eq!(property, bug.property_name(), "{bug:?}");
    }
}

#[test]
fn no_delay_misses_the_rule_installation_race() {
    // NO-DELAY treats rule installation as atomic, so BUG-IX (a packet
    // overtaking its rule at an intermediate switch) cannot manifest — the
    // false-negative behaviour the paper reports for this class of bugs.
    assert_eq!(detect(BugId::BugIX, StrategyKind::NoDelay, 200_000), None);
}

#[test]
fn fixed_variants_pass() {
    // Driven by the registry rather than a hand-kept list, so a new fixed
    // scenario is automatically covered (and `fixed_scenario` stays in sync
    // with the registry's Fixed entries).
    let fixed: Vec<_> = registry()
        .into_iter()
        .filter(|e| e.kind == ScenarioKind::Fixed)
        .collect();
    assert!(fixed.len() >= 5, "the five published fixes are registered");
    for entry in fixed {
        assert!(fixed_scenario(entry.bug).is_some(), "{:?}", entry.bug);
        let report = ModelChecker::new(
            entry.build(),
            CheckerConfig::default().with_max_transitions(500_000),
        )
        .run();
        assert!(
            report.passed(),
            "fix '{}' still violates {}: {report}",
            entry.name,
            entry.property()
        );
        assert!(
            !report.stats.truncated,
            "{}: the budget must suffice",
            entry.name
        );
    }
}

#[test]
fn registry_bug_entries_detect_their_expected_violation_via_sessions() {
    // The registry's cheap bug entries, checked through the session API:
    // the streamed ViolationFound events and the final report agree, and
    // the violated property is the one the entry advertises.
    use nice_mc::{CheckEvent, CheckObserver};

    #[derive(Default)]
    struct FirstViolation(Option<String>);
    impl CheckObserver for FirstViolation {
        fn on_event(&mut self, event: &CheckEvent) {
            if let CheckEvent::ViolationFound(v) = event {
                self.0.get_or_insert_with(|| v.property.clone());
            }
        }
    }

    for bug in [BugId::BugIV, BugId::BugVIII] {
        let entry = registry()
            .into_iter()
            .find(|e| e.bug == bug && e.kind == ScenarioKind::Buggy)
            .expect("every bug has a registry entry");
        let checker = ModelChecker::new(
            entry.build(),
            CheckerConfig::default().with_max_transitions(200_000),
        );
        let mut observer = FirstViolation::default();
        let report = checker.session().run_with(&mut observer);
        assert!(!report.passed(), "{bug:?}");
        assert_eq!(
            observer.0.as_deref(),
            entry.expected_violation,
            "{bug:?}: streamed violation matches the registry expectation"
        );
    }
}
