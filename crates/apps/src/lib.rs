//! # nice-apps
//!
//! The three real OpenFlow controller applications the NICE paper evaluates
//! (Section 8), re-implemented against the `nice-controller` platform, each
//! with switches that re-introduce or fix the individual bugs the paper
//! reports:
//!
//! * [`pyswitch`] — the MAC-learning switch of Figure 3 (BUG-I, BUG-II,
//!   BUG-III and the fixed variants).
//! * [`loadbalancer`] — the wildcard-rule web server load balancer of
//!   Section 8.2 (BUG-IV … BUG-VII).
//! * [`energyte`] — the energy-efficient traffic-engineering application of
//!   Section 8.3 (BUG-VIII … BUG-XI), plus its application-specific
//!   `UseCorrectRoutingTable` property.
//! * [`scenarios`] — one ready-to-check [`nice_mc::Scenario`] per bug,
//!   matching the topologies and workloads of Table 2.
//! * [`workloads`] — the Section 7 benchmark workloads (ping, switch
//!   chains, fault chains) plus the spec resolver the `nice-dist` worker
//!   processes rebuild job scenarios from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energyte;
pub mod loadbalancer;
pub mod pyswitch;
pub mod scenarios;
pub mod util;
pub mod workloads;

pub use energyte::{EnergyTeApp, EnergyTeConfig, UseCorrectRoutingTable};
pub use loadbalancer::{LoadBalancerApp, LoadBalancerConfig};
pub use pyswitch::{PySwitchApp, PySwitchVariant};
pub use scenarios::{bug_scenario, BugId};
