//! Small helpers shared by the applications: building concrete match
//! patterns from (possibly symbolic) packets.

use nice_openflow::matchfields::PrefixMatch;
use nice_openflow::IpProto;
use nice_openflow::{EthType, MacAddr, MatchPattern, NwAddr, PortId};
use nice_sym::{Env, SymPacket};

/// Builds the layer-2 match of Figure 3 line 11 (`DL_SRC`, `DL_DST`,
/// `DL_TYPE`, `IN_PORT`) from a possibly-symbolic packet, concretising the
/// fields through the execution environment.
pub fn l2_match(env: &mut dyn Env, packet: &SymPacket, in_port: PortId) -> MatchPattern {
    MatchPattern {
        in_port: Some(in_port),
        dl_src: Some(MacAddr(env.concretize(&packet.src_mac))),
        dl_dst: Some(MacAddr(env.concretize(&packet.dst_mac))),
        dl_type: Some(EthType::from_value(env.concretize(&packet.eth_type) as u16)),
        ..MatchPattern::default()
    }
}

/// Builds the reverse-direction layer-2 match (for the StrictDirectPaths fix
/// of BUG-II): source and destination swapped, matching on the port the
/// reply traffic will arrive on.
pub fn l2_match_reverse(
    env: &mut dyn Env,
    packet: &SymPacket,
    reverse_in_port: PortId,
) -> MatchPattern {
    MatchPattern {
        in_port: Some(reverse_in_port),
        dl_src: Some(MacAddr(env.concretize(&packet.dst_mac))),
        dl_dst: Some(MacAddr(env.concretize(&packet.src_mac))),
        dl_type: Some(EthType::from_value(env.concretize(&packet.eth_type) as u16)),
        ..MatchPattern::default()
    }
}

/// Builds an exact TCP five-tuple match ("microflow") from a possibly-
/// symbolic packet — the per-connection rules the load balancer installs.
pub fn tcp_microflow_match(env: &mut dyn Env, packet: &SymPacket) -> MatchPattern {
    MatchPattern {
        dl_type: Some(EthType::Ipv4),
        nw_proto: Some(IpProto::Tcp),
        nw_src: Some(PrefixMatch::exact(NwAddr(
            env.concretize(&packet.src_ip) as u32
        ))),
        nw_dst: Some(PrefixMatch::exact(NwAddr(
            env.concretize(&packet.dst_ip) as u32
        ))),
        tp_src: Some(env.concretize(&packet.src_port) as u16),
        tp_dst: Some(env.concretize(&packet.dst_port) as u16),
        ..MatchPattern::default()
    }
}

/// Builds a destination-only layer-2 match used by the traffic-engineering
/// application's path rules.
pub fn dst_match(env: &mut dyn Env, packet: &SymPacket) -> MatchPattern {
    MatchPattern {
        dl_dst: Some(MacAddr(env.concretize(&packet.dst_mac))),
        ..MatchPattern::default()
    }
}

/// A symbolic-friendly connection key for TCP flows: `(src_ip << 16) |
/// src_port`, computed over [`nice_sym::SymValue`]s so it can key a
/// [`nice_sym::SymMap`] under symbolic execution.
pub fn connection_key(packet: &SymPacket) -> nice_sym::SymValue {
    packet.src_ip.shl(16).bit_or(&packet.src_port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_openflow::{Packet, TcpFlags};
    use nice_sym::ConcreteEnv;

    fn tcp_packet() -> Packet {
        Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            1000,
            80,
            TcpFlags::SYN,
            0,
        )
    }

    #[test]
    fn l2_match_pins_addresses_and_port() {
        let pkt = tcp_packet();
        let sym = SymPacket::from_concrete(&pkt);
        let mut env = ConcreteEnv::new();
        let m = l2_match(&mut env, &sym, PortId(3));
        assert!(m.matches(&pkt, PortId(3)));
        assert!(!m.matches(&pkt, PortId(4)));
        let reply = pkt.reply_template(2);
        assert!(!m.matches(&reply, PortId(3)));
        let rev = l2_match_reverse(&mut env, &sym, PortId(5));
        assert!(rev.matches(&reply, PortId(5)));
        assert!(!rev.matches(&pkt, PortId(5)));
    }

    #[test]
    fn microflow_match_is_connection_specific() {
        let pkt = tcp_packet();
        let sym = SymPacket::from_concrete(&pkt);
        let mut env = ConcreteEnv::new();
        let m = tcp_microflow_match(&mut env, &sym);
        assert!(m.matches(&pkt, PortId(1)));
        let mut other = pkt;
        other.src_port = 2000;
        assert!(!m.matches(&other, PortId(1)));
    }

    #[test]
    fn dst_match_ignores_everything_else() {
        let pkt = tcp_packet();
        let sym = SymPacket::from_concrete(&pkt);
        let mut env = ConcreteEnv::new();
        let m = dst_match(&mut env, &sym);
        let mut other = pkt;
        other.src_port = 9999;
        other.src_mac = MacAddr::for_host(7);
        assert!(m.matches(&other, PortId(9)));
    }

    #[test]
    fn connection_key_distinguishes_ports_and_ips() {
        let a = SymPacket::from_concrete(&tcp_packet());
        let mut other = tcp_packet();
        other.src_port = 1001;
        let b = SymPacket::from_concrete(&other);
        let mut env = ConcreteEnv::new();
        assert_ne!(
            env.concretize(&connection_key(&a)),
            env.concretize(&connection_key(&b))
        );
    }
}
