//! The MAC-learning switch (`pyswitch`) of Figure 3 and Section 8.1.
//!
//! The application learns the `<source MAC, ingress port>` association of
//! every non-broadcast packet and, when the destination MAC is already known,
//! installs a forwarding rule and releases the packet along it; otherwise it
//! floods. This is a faithful port of the pseudo-code in Figure 3 — including
//! its bugs:
//!
//! * **BUG-I** (host unreachable after moving): the installed rule has a soft
//!   timeout that never expires while traffic keeps flowing, so after the
//!   destination host moves, packets are forwarded into a dead end
//!   (`NoBlackHoles`).
//! * **BUG-II** (delayed direct path): a rule is installed only for the
//!   direction of the packet being handled, so the third packet of a
//!   ping/pong exchange still goes to the controller
//!   (`StrictDirectPaths`).
//! * **BUG-III** (excess flooding): no spanning tree is constructed, so
//!   flooding loops on cyclic topologies (`NoForwardingLoops`).
//!
//! The [`PySwitchVariant`] selects between the original behaviour, the naive
//! BUG-II fix the paper warns about (installing the reverse rule *after*
//! releasing the packet, which re-introduces a race), and the correct fix
//! (install the reverse rule first).

use crate::util::{l2_match, l2_match_reverse};
use nice_controller::{ControllerApp, ControllerOps, PacketInContext, RuleSpec};
use nice_openflow::{Action, Fingerprint, Fnv64, Packet, PortId, SwitchId, Timeouts};
use nice_sym::{Env, SymMap, SymPacket};
use std::collections::{BTreeMap, VecDeque};

/// Which variant of the MAC-learning switch to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PySwitchVariant {
    /// The pseudo-code of Figure 3 exactly as published (contains BUG-I,
    /// BUG-II and BUG-III).
    #[default]
    Original,
    /// The naive BUG-II fix: also install the reverse rule, but *after*
    /// releasing the packet — the ordering the paper points out can let the
    /// reply overtake the reverse rule.
    NaiveTwoWayInstall,
    /// The correct BUG-II fix: install the reverse rule first, then the
    /// forward rule, then release the packet (satisfies StrictDirectPaths).
    FixedTwoWayInstall,
    /// A crash-resilient variant for fault-injection scenarios: behaves like
    /// [`PySwitchVariant::Original`] on the happy path, but remembers every
    /// released packet until a barrier reply confirms the switch processed
    /// the release, and re-sends the unconfirmed ones when the switch
    /// reconnects after a crash (satisfies `NoAbandonedPackets` under switch
    /// crashes).
    CrashResilient,
}

/// The MAC-learning controller application.
#[derive(Debug, Clone, Default)]
pub struct PySwitchApp {
    variant: PySwitchVariant,
    /// Per-switch MAC table: MAC address → port (the `ctrl_state` hashtable
    /// of Figure 3). A [`SymMap`] so symbolic execution sees the lookup
    /// constraints.
    tables: BTreeMap<SwitchId, SymMap<u16>>,
    /// Packets released towards a switch whose processing has not yet been
    /// confirmed by a barrier reply, in release order: the original ingress
    /// port, the release actions, and the packet itself. Only populated by
    /// [`PySwitchVariant::CrashResilient`].
    unconfirmed: BTreeMap<SwitchId, VecDeque<(PortId, Vec<Action>, Packet)>>,
}

impl PySwitchApp {
    /// Creates the application in the given variant.
    pub fn new(variant: PySwitchVariant) -> Self {
        PySwitchApp {
            variant,
            tables: BTreeMap::new(),
            unconfirmed: BTreeMap::new(),
        }
    }

    /// The variant in use.
    pub fn variant(&self) -> PySwitchVariant {
        self.variant
    }

    /// The number of `<MAC, port>` entries learned at `switch`.
    pub fn learned_entries(&self, switch: SwitchId) -> usize {
        self.tables.get(&switch).map(|t| t.len()).unwrap_or(0)
    }

    /// The number of released-but-unconfirmed packets tracked for `switch`
    /// (always zero outside [`PySwitchVariant::CrashResilient`]).
    pub fn unconfirmed_releases(&self, switch: SwitchId) -> usize {
        self.unconfirmed.get(&switch).map(|q| q.len()).unwrap_or(0)
    }

    /// Releases a buffered packet with `actions` and, in the crash-resilient
    /// variant, remembers it until a trailing barrier confirms the switch
    /// processed the release.
    fn release(
        &mut self,
        ops: &mut dyn ControllerOps,
        ctx: PacketInContext,
        packet: &SymPacket,
        actions: Vec<Action>,
    ) {
        ops.send_packet_out(ctx.switch, ctx.buffer_id, ctx.in_port, actions.clone());
        if self.variant == PySwitchVariant::CrashResilient {
            // Symbolic discovery runs on scratch clones with fully symbolic
            // packets; only concretely-executed releases need the receipt.
            if let Some(concrete) = packet.concrete_origin() {
                self.unconfirmed.entry(ctx.switch).or_default().push_back((
                    ctx.in_port,
                    actions,
                    *concrete,
                ));
                ops.send_barrier(ctx.switch);
            }
        }
    }
}

impl ControllerApp for PySwitchApp {
    fn name(&self) -> &str {
        match self.variant {
            PySwitchVariant::Original => "pyswitch",
            PySwitchVariant::NaiveTwoWayInstall => "pyswitch-naive-fix",
            PySwitchVariant::FixedTwoWayInstall => "pyswitch-fixed",
            PySwitchVariant::CrashResilient => "pyswitch-resilient",
        }
    }

    fn packet_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        // Figure 3, line 3: the per-switch MAC table (switch_join already
        // initialised the controller's per-switch state; a defensive entry
        // here mirrors `ctrl_state[sw_id]`).
        let table = self.tables.entry(ctx.switch).or_default();

        // Lines 4-7: learn the source port for non-group source addresses.
        let is_bcast_src = env.branch(&packet.src_mac_is_group());
        let is_bcast_dst = env.branch(&packet.dst_mac_is_group());
        if !is_bcast_src {
            table.insert(packet.src_mac.clone(), ctx.in_port.value());
        }

        // Lines 8-15: if the destination is known on a different port,
        // install a forwarding rule and release the packet along it.
        if !is_bcast_dst {
            if let Some(outport) = table.get(&packet.dst_mac, env) {
                let outport = PortId(outport);
                if outport != ctx.in_port {
                    let forward = RuleSpec::new(
                        l2_match(env, packet, ctx.in_port),
                        vec![Action::Output(outport)],
                    )
                    .with_timeouts(Timeouts::SOFT_5)
                    .with_cookie(1);

                    match self.variant {
                        PySwitchVariant::Original => {
                            ops.install_rule(ctx.switch, forward);
                            ops.send_packet_out(
                                ctx.switch,
                                ctx.buffer_id,
                                ctx.in_port,
                                vec![Action::Output(outport)],
                            );
                        }
                        PySwitchVariant::CrashResilient => {
                            // Same messages as `Original`, but the release is
                            // tracked until the trailing barrier confirms it.
                            ops.install_rule(ctx.switch, forward);
                            self.release(ops, ctx, packet, vec![Action::Output(outport)]);
                        }
                        PySwitchVariant::NaiveTwoWayInstall => {
                            // The "easy" fix the paper warns about: the
                            // reverse rule is installed *after* the packet is
                            // released, so the reply can race it.
                            ops.install_rule(ctx.switch, forward);
                            ops.send_packet_out(
                                ctx.switch,
                                ctx.buffer_id,
                                ctx.in_port,
                                vec![Action::Output(outport)],
                            );
                            let reverse = RuleSpec::new(
                                l2_match_reverse(env, packet, outport),
                                vec![Action::Output(ctx.in_port)],
                            )
                            .with_timeouts(Timeouts::SOFT_5)
                            .with_cookie(2);
                            ops.install_rule(ctx.switch, reverse);
                        }
                        PySwitchVariant::FixedTwoWayInstall => {
                            // Correct fix: reverse rule first, then forward
                            // rule, then release the packet.
                            let reverse = RuleSpec::new(
                                l2_match_reverse(env, packet, outport),
                                vec![Action::Output(ctx.in_port)],
                            )
                            .with_timeouts(Timeouts::SOFT_5)
                            .with_cookie(2);
                            ops.install_rule(ctx.switch, reverse);
                            ops.install_rule(ctx.switch, forward);
                            ops.send_packet_out(
                                ctx.switch,
                                ctx.buffer_id,
                                ctx.in_port,
                                vec![Action::Output(outport)],
                            );
                        }
                    }
                    return;
                }
            }
        }

        // Line 16: flood (tracked like any other release in the
        // crash-resilient variant).
        self.release(ops, ctx, packet, vec![Action::Flood]);
    }

    fn switch_join(&mut self, ops: &mut dyn ControllerOps, switch: SwitchId, _ports: &[PortId]) {
        // Lines 17-19.
        self.tables.entry(switch).or_default();
        // Crash recovery: a rejoining switch lost everything that was in
        // flight, so re-send every unconfirmed release inline (the original
        // switch buffer is gone) and track it again behind a fresh barrier.
        if self.variant == PySwitchVariant::CrashResilient {
            let pending: Vec<(PortId, Vec<Action>, Packet)> = self
                .unconfirmed
                .get_mut(&switch)
                .map(|q| q.drain(..).collect())
                .unwrap_or_default();
            for (in_port, actions, pkt) in pending {
                ops.send_packet(switch, pkt, in_port, actions.clone());
                self.unconfirmed
                    .entry(switch)
                    .or_default()
                    .push_back((in_port, actions, pkt));
                ops.send_barrier(switch);
            }
        }
    }

    fn barrier_reply(&mut self, _ops: &mut dyn ControllerOps, switch: SwitchId, _request_id: u64) {
        // A barrier reply confirms everything released before it was
        // processed; the control channel is reliable and in-order, so the
        // oldest unconfirmed release is the one being acknowledged.
        if let Some(q) = self.unconfirmed.get_mut(&switch) {
            q.pop_front();
            if q.is_empty() {
                self.unconfirmed.remove(&switch);
            }
        }
    }

    fn switch_leave(&mut self, _ops: &mut dyn ControllerOps, switch: SwitchId) {
        // Lines 20-22.
        self.tables.remove(&switch);
    }

    fn clone_app(&self) -> Box<dyn ControllerApp> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_usize(self.tables.len());
        for (switch, table) in &self.tables {
            switch.fingerprint(hasher);
            table.fingerprint(hasher);
        }
        hasher.write_usize(self.unconfirmed.len());
        for (switch, queue) in &self.unconfirmed {
            switch.fingerprint(hasher);
            hasher.write_usize(queue.len());
            for (port, actions, packet) in queue {
                port.fingerprint(hasher);
                hasher.write_usize(actions.len());
                for action in actions {
                    action.fingerprint(hasher);
                }
                packet.fingerprint(hasher);
            }
        }
    }

    fn held_packets(&self) -> Vec<nice_openflow::PacketId> {
        self.unconfirmed
            .values()
            .flat_map(|queue| queue.iter().map(|(_, _, packet)| packet.id))
            .collect()
    }

    fn is_same_flow(&self, a: &nice_openflow::Packet, b: &nice_openflow::Packet) -> bool {
        // The MAC-learning switch treats traffic between different MAC pairs
        // independently (the FLOW-IR example from Section 4).
        let pair = |p: &nice_openflow::Packet| {
            let (x, y) = (p.src_mac.value(), p.dst_mac.value());
            if x <= y {
                (x, y)
            } else {
                (y, x)
            }
        };
        pair(a) == pair(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_controller::ControllerRuntime;
    use nice_openflow::{BufferId, MacAddr, OfMessage, Packet, PacketInReason};

    fn packet_in(src: u32, dst: u32, switch: u32, port: u16, buffer: u64) -> OfMessage {
        OfMessage::PacketIn {
            switch: SwitchId(switch),
            in_port: PortId(port),
            packet: Packet::l2_ping(buffer, MacAddr::for_host(src), MacAddr::for_host(dst), 0),
            buffer_id: BufferId(buffer),
            reason: PacketInReason::NoMatch,
        }
    }

    #[test]
    fn unknown_destination_floods() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
        let out = rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            OfMessage::PacketOut { actions, .. } => assert_eq!(actions, &vec![Action::Flood]),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn known_destination_installs_rule_and_forwards() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
        // Learn host 1 on port 1.
        rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        // Reply from host 2 on port 2: host 1 is known → install + forward.
        let out = rt.handle_message(&packet_in(2, 1, 1, 2, 2));
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].1, OfMessage::FlowMod { .. }));
        match &out[1].1 {
            OfMessage::PacketOut { actions, .. } => {
                assert_eq!(actions, &vec![Action::Output(PortId(1))]);
            }
            other => panic!("unexpected {other}"),
        }
        let app: &PySwitchApp = rt.app_as().unwrap();
        assert_eq!(app.learned_entries(SwitchId(1)), 2);
    }

    #[test]
    fn original_variant_installs_only_one_direction() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
        rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        let out = rt.handle_message(&packet_in(2, 1, 1, 2, 2));
        let flow_mods = out
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::FlowMod { .. }))
            .count();
        assert_eq!(
            flow_mods, 1,
            "BUG-II: only the handled direction gets a rule"
        );
    }

    #[test]
    fn fixed_variant_installs_reverse_rule_first() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(
            PySwitchVariant::FixedTwoWayInstall,
        )));
        rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        let out = rt.handle_message(&packet_in(2, 1, 1, 2, 2));
        assert_eq!(out.len(), 3);
        // Reverse rule, forward rule, then packet release — in that order.
        assert!(matches!(&out[0].1, OfMessage::FlowMod { cookie: 2, .. }));
        assert!(matches!(&out[1].1, OfMessage::FlowMod { cookie: 1, .. }));
        assert!(matches!(&out[2].1, OfMessage::PacketOut { .. }));
    }

    #[test]
    fn naive_variant_installs_reverse_rule_after_release() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(
            PySwitchVariant::NaiveTwoWayInstall,
        )));
        rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        let out = rt.handle_message(&packet_in(2, 1, 1, 2, 2));
        assert_eq!(out.len(), 3);
        assert!(matches!(&out[0].1, OfMessage::FlowMod { cookie: 1, .. }));
        assert!(matches!(&out[1].1, OfMessage::PacketOut { .. }));
        assert!(matches!(&out[2].1, OfMessage::FlowMod { cookie: 2, .. }));
    }

    #[test]
    fn broadcast_source_is_not_learned() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
        let bcast = OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::l2_ping(1, MacAddr::BROADCAST, MacAddr::for_host(2), 0),
            buffer_id: BufferId(1),
            reason: PacketInReason::NoMatch,
        };
        rt.handle_message(&bcast);
        let app: &PySwitchApp = rt.app_as().unwrap();
        assert_eq!(app.learned_entries(SwitchId(1)), 0);
    }

    #[test]
    fn same_port_destination_floods_instead_of_hairpinning() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
        // Learn host 1 on port 1, then handle a packet towards host 1 that
        // also arrives on port 1: outport == inport → flood, no rule.
        rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        let out = rt.handle_message(&packet_in(3, 1, 1, 1, 2));
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            OfMessage::PacketOut { actions, .. } => assert_eq!(actions, &vec![Action::Flood]),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn switch_leave_forgets_state() {
        let mut rt = ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::Original)));
        rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        rt.handle_message(&OfMessage::SwitchLeave {
            switch: SwitchId(1),
        });
        let app: &PySwitchApp = rt.app_as().unwrap();
        assert_eq!(app.learned_entries(SwitchId(1)), 0);
    }

    #[test]
    fn flow_independence_oracle_groups_by_mac_pair() {
        let app = PySwitchApp::new(PySwitchVariant::Original);
        let a = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let b = Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        let c = Packet::l2_ping(3, MacAddr::for_host(1), MacAddr::for_host(3), 0);
        assert!(
            app.is_same_flow(&a, &b),
            "both directions of a pair are one flow"
        );
        assert!(
            !app.is_same_flow(&a, &c),
            "different destinations are independent"
        );
    }

    #[test]
    fn resilient_variant_tracks_and_resends_unconfirmed_releases() {
        let mut rt =
            ControllerRuntime::new(Box::new(PySwitchApp::new(PySwitchVariant::CrashResilient)));
        // A flood release is tracked and followed by a barrier.
        let out = rt.handle_message(&packet_in(1, 2, 1, 1, 1));
        assert!(matches!(out[0].1, OfMessage::PacketOut { .. }));
        assert!(matches!(out[1].1, OfMessage::BarrierRequest { .. }));
        let app: &PySwitchApp = rt.app_as().unwrap();
        assert_eq!(app.unconfirmed_releases(SwitchId(1)), 1);

        // The barrier reply confirms the release.
        let request_id = match out[1].1 {
            OfMessage::BarrierRequest { request_id, .. } => request_id,
            _ => unreachable!(),
        };
        rt.handle_message(&OfMessage::BarrierReply {
            switch: SwitchId(1),
            request_id,
        });
        let app: &PySwitchApp = rt.app_as().unwrap();
        assert_eq!(app.unconfirmed_releases(SwitchId(1)), 0);

        // An unconfirmed release is re-sent inline when the switch rejoins
        // (crash recovery), and tracked again behind a fresh barrier.
        rt.handle_message(&packet_in(3, 4, 1, 2, 2));
        let out = rt.handle_message(&OfMessage::SwitchJoin {
            switch: SwitchId(1),
            ports: vec![PortId(1), PortId(2)],
        });
        assert_eq!(out.len(), 2);
        match &out[0].1 {
            OfMessage::PacketOut {
                buffer_id, packet, ..
            } => {
                assert!(buffer_id.is_none(), "re-sends carry the packet inline");
                assert!(packet.is_some());
            }
            other => panic!("unexpected {other}"),
        }
        assert!(matches!(out[1].1, OfMessage::BarrierRequest { .. }));
        let app: &PySwitchApp = rt.app_as().unwrap();
        assert_eq!(app.unconfirmed_releases(SwitchId(1)), 1);
    }

    #[test]
    fn variant_names_differ() {
        assert_eq!(
            PySwitchApp::new(PySwitchVariant::Original).name(),
            "pyswitch"
        );
        assert_eq!(
            PySwitchApp::new(PySwitchVariant::FixedTwoWayInstall).name(),
            "pyswitch-fixed"
        );
        assert_eq!(
            PySwitchApp::new(PySwitchVariant::NaiveTwoWayInstall).name(),
            "pyswitch-naive-fix"
        );
    }
}
