//! The energy-efficient traffic-engineering application of Section 8.3.
//!
//! Modelled on REsPoNse: the application pre-computes two routing tables —
//! an *always-on* table able to carry the base load and an *on-demand* table
//! that adds capacity under high load — and selects one for each new flow. It
//! learns the network load by querying switches for port statistics.
//!
//! Bug flags reproduce the paper's findings:
//!
//! * **BUG-VIII** (`bug_forget_packet_out`): the handler installs the path
//!   but never releases the triggering packet (`NoForgottenPackets`).
//! * **BUG-IX** (`bug_ignore_intermediate`): packets reaching an intermediate
//!   switch before its rule is installed are ignored
//!   (`NoForgottenPackets`; only manifests under rule-installation delays).
//! * **BUG-X** (`bug_single_table_pointer`): the statistics handler keeps a
//!   single "current table" pointer, so under high load every new flow uses
//!   the on-demand table instead of splitting (`UseCorrectRoutingTable`).
//! * **BUG-XI** (`bug_ignore_after_scale_down`): after the load drops the
//!   application recomputes the set of always-on switches and ignores
//!   packets arriving from switches outside it (`NoForgottenPackets`).

use crate::util::dst_match;
use nice_controller::{ControllerApp, ControllerOps, PacketInContext, RuleSpec};
use nice_mc::properties::{Event, Property};
use nice_mc::state::SystemState;
use nice_openflow::{Action, Fingerprint, Fnv64, MacAddr, PortId, StatsKind, SwitchId};
use nice_sym::{Env, SymPacket, SymStats, SymValue};
use std::collections::{BTreeMap, BTreeSet};

/// An explicit path: at each listed switch, forward matching packets out of
/// the listed port. The first entry is the ingress switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpec {
    /// `(switch, output port)` hops in ingress-to-egress order.
    pub hops: Vec<(SwitchId, PortId)>,
}

impl PathSpec {
    /// The output port this path uses at `switch`, if the switch is on the
    /// path.
    pub fn port_at(&self, switch: SwitchId) -> Option<PortId> {
        self.hops
            .iter()
            .find(|(s, _)| *s == switch)
            .map(|(_, p)| *p)
    }

    /// The switches on this path.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.hops.iter().map(|(s, _)| *s)
    }
}

/// Static configuration: the pre-computed routing tables and bug flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyTeConfig {
    /// The always-on routing table: destination MAC → path.
    pub always_on: BTreeMap<u64, PathSpec>,
    /// The on-demand routing table: destination MAC → path.
    pub on_demand: BTreeMap<u64, PathSpec>,
    /// The switch where new flows enter the network.
    pub ingress_switch: SwitchId,
    /// The switch whose port statistics drive the energy state.
    pub monitored_switch: SwitchId,
    /// The port whose utilisation is compared against the threshold.
    pub monitored_port: PortId,
    /// Bytes above which the network is considered highly loaded.
    pub utilization_threshold: u64,
    /// How many times the application re-issues its statistics query after a
    /// reply (1 = query once at switch join and never again). BUG-XI needs at
    /// least one re-poll so the load can rise and then fall.
    pub stats_polls: u32,
    /// BUG-VIII.
    pub bug_forget_packet_out: bool,
    /// BUG-IX.
    pub bug_ignore_intermediate: bool,
    /// BUG-X.
    pub bug_single_table_pointer: bool,
    /// BUG-XI.
    pub bug_ignore_after_scale_down: bool,
}

impl EnergyTeConfig {
    /// The triangle topology of Section 8.3 (and
    /// [`nice_openflow::Topology::triangle`]): sender at switch 1, two
    /// receivers at switch 2, switch 3 on the on-demand path. All bug flags
    /// off.
    pub fn triangle_default() -> Self {
        let mut always_on = BTreeMap::new();
        let mut on_demand = BTreeMap::new();
        for (host, egress_port) in [(2u32, PortId(1)), (3u32, PortId(4))] {
            let mac = MacAddr::for_host(host).value();
            always_on.insert(
                mac,
                PathSpec {
                    hops: vec![(SwitchId(1), PortId(2)), (SwitchId(2), egress_port)],
                },
            );
            on_demand.insert(
                mac,
                PathSpec {
                    hops: vec![
                        (SwitchId(1), PortId(3)),
                        (SwitchId(3), PortId(2)),
                        (SwitchId(2), egress_port),
                    ],
                },
            );
        }
        EnergyTeConfig {
            always_on,
            on_demand,
            ingress_switch: SwitchId(1),
            monitored_switch: SwitchId(1),
            monitored_port: PortId(2),
            utilization_threshold: 1_000,
            stats_polls: 1,
            bug_forget_packet_out: false,
            bug_ignore_intermediate: false,
            bug_single_table_pointer: false,
            bug_ignore_after_scale_down: false,
        }
    }
}

/// One routing decision, recorded for the `UseCorrectRoutingTable` property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingDecision {
    /// The destination MAC of the flow.
    pub dst_mac: u64,
    /// True if the on-demand table was used.
    pub used_on_demand: bool,
    /// The energy state at decision time.
    pub high_load: bool,
}

/// The traffic-engineering controller application.
#[derive(Debug, Clone)]
pub struct EnergyTeApp {
    config: EnergyTeConfig,
    high_load: bool,
    flows_routed: u32,
    decisions: Vec<RoutingDecision>,
    /// Switches considered active (on always-on paths) after a scale-down;
    /// initially every switch is active.
    active_switches: BTreeSet<SwitchId>,
    scaled_down: bool,
    /// Remaining statistics re-polls.
    polls_remaining: u32,
}

impl EnergyTeApp {
    /// Creates the application.
    pub fn new(config: EnergyTeConfig) -> Self {
        let mut active: BTreeSet<SwitchId> = BTreeSet::new();
        for path in config.always_on.values().chain(config.on_demand.values()) {
            active.extend(path.switches());
        }
        let polls_remaining = config.stats_polls.saturating_sub(1);
        EnergyTeApp {
            config,
            high_load: false,
            flows_routed: 0,
            decisions: Vec::new(),
            active_switches: active,
            scaled_down: false,
            polls_remaining,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnergyTeConfig {
        &self.config
    }

    /// The routing decisions made so far (for the correctness property).
    pub fn decisions(&self) -> &[RoutingDecision] {
        &self.decisions
    }

    /// The current energy state.
    pub fn high_load(&self) -> bool {
        self.high_load
    }

    fn current_path(&self, dst_mac: u64, on_demand: bool) -> Option<&PathSpec> {
        if on_demand {
            self.config.on_demand.get(&dst_mac)
        } else {
            self.config.always_on.get(&dst_mac)
        }
    }

    fn handle_at_intermediate(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        if self.config.bug_ignore_intermediate {
            // BUG-IX: the handler implicitly assumes intermediate switches
            // never send packets up, so this packet is forgotten.
            return;
        }
        if self.config.bug_ignore_after_scale_down
            && self.scaled_down
            && !self.active_switches.contains(&ctx.switch)
        {
            // BUG-XI: after scaling down, switches outside the recomputed
            // always-on paths are not found in any list and their packets are
            // ignored.
            return;
        }
        // Correct behaviour: forward along whichever of the two tables routes
        // this destination through this switch.
        let dst = env.concretize(&packet.dst_mac);
        for on_demand in [false, true] {
            if let Some(port) = self
                .current_path(dst, on_demand)
                .and_then(|p| p.port_at(ctx.switch))
            {
                ops.send_packet_out(
                    ctx.switch,
                    ctx.buffer_id,
                    ctx.in_port,
                    vec![Action::Output(port)],
                );
                return;
            }
        }
        ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
    }
}

impl ControllerApp for EnergyTeApp {
    fn name(&self) -> &str {
        "energy-te"
    }

    fn packet_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        if ctx.switch != self.config.ingress_switch {
            self.handle_at_intermediate(ops, env, ctx, packet);
            return;
        }

        let dst = env.concretize(&packet.dst_mac);
        // Choose the routing table for this new flow.
        let use_on_demand = if self.high_load {
            if self.config.bug_single_table_pointer {
                // BUG-X: a single table pointer updated by the statistics
                // handler sends every new flow over on-demand routes.
                true
            } else {
                // Fixed behaviour: split flows evenly over the two tables.
                self.flows_routed % 2 == 1
            }
        } else {
            false
        };
        self.flows_routed += 1;
        self.decisions.push(RoutingDecision {
            dst_mac: dst,
            used_on_demand: use_on_demand,
            high_load: self.high_load,
        });

        let path = match self.current_path(dst, use_on_demand) {
            Some(path) => path.clone(),
            None => {
                ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
                return;
            }
        };
        // Install a rule at every hop of the chosen path.
        for (switch, port) in &path.hops {
            ops.install_rule(
                *switch,
                RuleSpec::new(dst_match(env, packet), vec![Action::Output(*port)])
                    .with_cookie(if use_on_demand { 2 } else { 1 }),
            );
        }
        if !self.config.bug_forget_packet_out {
            // The fix for BUG-VIII: release the triggering packet along the
            // first hop.
            let first_hop = path.hops[0].1;
            ops.send_packet_out(
                ctx.switch,
                ctx.buffer_id,
                ctx.in_port,
                vec![Action::Output(first_hop)],
            );
        }
    }

    fn switch_join(&mut self, ops: &mut dyn ControllerOps, switch: SwitchId, _ports: &[PortId]) {
        if switch == self.config.monitored_switch {
            ops.request_stats(switch, StatsKind::Port);
        }
    }

    fn port_stats_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        switch: SwitchId,
        stats: &SymStats,
    ) {
        if switch != self.config.monitored_switch {
            return;
        }
        // Keep monitoring while the poll budget lasts (the real application
        // polls periodically; the budget keeps the model finite).
        if self.polls_remaining > 0 {
            self.polls_remaining -= 1;
            ops.request_stats(switch, StatsKind::Port);
        }
        let load = match stats.total_bytes_for(self.config.monitored_port) {
            Some(load) => load.clone(),
            None => return,
        };
        let threshold = SymValue::concrete(self.config.utilization_threshold);
        let high = env.branch(&threshold.lt(&load));
        if high != self.high_load {
            self.high_load = high;
            if !high {
                // Load reduced: recompute the active (always-on) switch set.
                self.scaled_down = true;
                self.active_switches = self
                    .config
                    .always_on
                    .values()
                    .flat_map(|p| p.switches())
                    .collect();
            }
        }
    }

    fn uses_stats(&self) -> bool {
        true
    }

    fn clone_app(&self) -> Box<dyn ControllerApp> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_bool(self.high_load);
        hasher.write_u32(self.flows_routed);
        hasher.write_bool(self.scaled_down);
        hasher.write_u32(self.polls_remaining);
        hasher.write_usize(self.decisions.len());
        for d in &self.decisions {
            hasher.write_u64(d.dst_mac);
            hasher.write_bool(d.used_on_demand);
            hasher.write_bool(d.high_load);
        }
        hasher.write_usize(self.active_switches.len());
        for s in &self.active_switches {
            s.fingerprint(hasher);
        }
    }

    fn is_same_flow(&self, a: &nice_openflow::Packet, b: &nice_openflow::Packet) -> bool {
        a.dst_mac == b.dst_mac
    }
}

/// The application-specific correctness property of Section 8.3: the
/// controller must install rules according to the routing table appropriate
/// for the current network load — always-on paths under low load, and an even
/// split between the two tables under high load.
#[derive(Debug, Clone, Default)]
pub struct UseCorrectRoutingTable;

impl UseCorrectRoutingTable {
    /// Creates the property.
    pub fn new() -> Self {
        Self
    }
}

impl Property for UseCorrectRoutingTable {
    fn name(&self) -> &str {
        "UseCorrectRoutingTable"
    }

    fn on_event(&mut self, _event: &Event, _state: &SystemState) {}

    fn check(&self, state: &SystemState) -> Option<String> {
        let app: &EnergyTeApp = state.controller().app_as()?;
        let decisions = app.decisions();
        for d in decisions {
            if !d.high_load && d.used_on_demand {
                return Some(format!(
                    "flow to {} routed over an on-demand path while the network load was low",
                    MacAddr(d.dst_mac)
                ));
            }
        }
        let high: Vec<_> = decisions.iter().filter(|d| d.high_load).collect();
        if high.len() >= 2 && high.iter().all(|d| d.used_on_demand) {
            return Some(format!(
                "all {} flows routed under high load used on-demand paths; traffic must split over both tables",
                high.len()
            ));
        }
        None
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_controller::ControllerRuntime;
    use nice_openflow::{BufferId, OfMessage, Packet, PacketInReason, PortStatsEntry};

    fn packet_in(switch: u32, port: u16, dst: u32, buffer: u64) -> OfMessage {
        OfMessage::PacketIn {
            switch: SwitchId(switch),
            in_port: PortId(port),
            packet: Packet::l2_ping(buffer, MacAddr::for_host(1), MacAddr::for_host(dst), 0),
            buffer_id: BufferId(buffer),
            reason: PacketInReason::NoMatch,
        }
    }

    fn stats_reply(bytes: u64) -> OfMessage {
        OfMessage::PortStatsReply {
            switch: SwitchId(1),
            request_id: 1,
            entries: vec![PortStatsEntry {
                port: PortId(2),
                rx_packets: 0,
                tx_packets: 0,
                rx_bytes: 0,
                tx_bytes: bytes,
            }],
        }
    }

    #[test]
    fn low_load_uses_always_on_path() {
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(
            EnergyTeConfig::triangle_default(),
        )));
        let out = rt.handle_message(&packet_in(1, 1, 2, 1));
        // Two hops on the always-on path + packet_out.
        assert_eq!(out.len(), 3);
        let targets: Vec<SwitchId> = out.iter().map(|(sw, _)| *sw).collect();
        assert_eq!(targets[0], SwitchId(1));
        assert_eq!(targets[1], SwitchId(2));
        assert!(matches!(out[2].1, OfMessage::PacketOut { .. }));
        let app: &EnergyTeApp = rt.app_as().unwrap();
        assert_eq!(app.decisions().len(), 1);
        assert!(!app.decisions()[0].used_on_demand);
    }

    #[test]
    fn high_load_splits_flows_between_tables() {
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(
            EnergyTeConfig::triangle_default(),
        )));
        rt.handle_message(&stats_reply(10_000));
        rt.handle_message(&packet_in(1, 1, 2, 1));
        rt.handle_message(&packet_in(1, 1, 3, 2));
        let app: &EnergyTeApp = rt.app_as().unwrap();
        assert!(app.high_load());
        let on_demand: Vec<bool> = app.decisions().iter().map(|d| d.used_on_demand).collect();
        assert_eq!(
            on_demand,
            vec![false, true],
            "flows alternate between the two tables"
        );
        assert!(UseCorrectRoutingTable::new()
            .name()
            .contains("RoutingTable"));
    }

    #[test]
    fn bug_x_routes_everything_on_demand_under_high_load() {
        let mut config = EnergyTeConfig::triangle_default();
        config.bug_single_table_pointer = true;
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(config)));
        rt.handle_message(&stats_reply(10_000));
        rt.handle_message(&packet_in(1, 1, 2, 1));
        rt.handle_message(&packet_in(1, 1, 3, 2));
        let app: &EnergyTeApp = rt.app_as().unwrap();
        assert!(app.decisions().iter().all(|d| d.used_on_demand));
    }

    #[test]
    fn bug_viii_forgets_the_first_packet() {
        let mut config = EnergyTeConfig::triangle_default();
        config.bug_forget_packet_out = true;
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(config)));
        let out = rt.handle_message(&packet_in(1, 1, 2, 1));
        assert_eq!(out.len(), 2, "rules only, no packet_out");
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, OfMessage::FlowMod { .. })));
    }

    #[test]
    fn intermediate_switch_packets_are_forwarded_when_fixed_and_ignored_when_buggy() {
        // Fixed behaviour: packet at switch 2 towards host 2 is released out
        // of the egress port.
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(
            EnergyTeConfig::triangle_default(),
        )));
        let out = rt.handle_message(&packet_in(2, 2, 2, 1));
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0].1, OfMessage::PacketOut { actions, .. }
            if actions == &vec![Action::Output(PortId(1))]));

        // BUG-IX: the same packet is ignored.
        let mut config = EnergyTeConfig::triangle_default();
        config.bug_ignore_intermediate = true;
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(config)));
        assert!(rt.handle_message(&packet_in(2, 2, 2, 1)).is_empty());
    }

    #[test]
    fn bug_xi_ignores_non_active_switches_after_scale_down() {
        let mut config = EnergyTeConfig::triangle_default();
        config.bug_ignore_after_scale_down = true;
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(config)));
        // Go to high load, then back to low load (scale down).
        rt.handle_message(&stats_reply(10_000));
        rt.handle_message(&stats_reply(0));
        // A packet arriving from switch 3 (not on any always-on path) is
        // ignored.
        let out = rt.handle_message(&packet_in(3, 1, 2, 1));
        assert!(out.is_empty());
        // Without the bug it is forwarded along the on-demand path hop.
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(
            EnergyTeConfig::triangle_default(),
        )));
        rt.handle_message(&stats_reply(10_000));
        rt.handle_message(&stats_reply(0));
        let out = rt.handle_message(&packet_in(3, 1, 2, 1));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn switch_join_requests_stats_only_for_monitored_switch() {
        let mut rt = ControllerRuntime::new(Box::new(EnergyTeApp::new(
            EnergyTeConfig::triangle_default(),
        )));
        let out = rt.handle_message(&OfMessage::SwitchJoin {
            switch: SwitchId(1),
            ports: vec![PortId(1)],
        });
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, OfMessage::StatsRequest { .. }));
        let out = rt.handle_message(&OfMessage::SwitchJoin {
            switch: SwitchId(3),
            ports: vec![PortId(1)],
        });
        assert!(out.is_empty());
    }

    #[test]
    fn path_spec_lookup() {
        let config = EnergyTeConfig::triangle_default();
        let path = config.on_demand.get(&MacAddr::for_host(2).value()).unwrap();
        assert_eq!(path.port_at(SwitchId(3)), Some(PortId(2)));
        assert_eq!(path.port_at(SwitchId(9)), None);
        assert_eq!(path.switches().count(), 3);
    }
}
