//! The benchmark workloads of Section 7, packaged as ready-to-build
//! scenarios so every front-end — the bench bins, the CLI, and the
//! `nice-dist` worker processes — constructs bit-identical systems from a
//! name alone.
//!
//! The builders used to live in `nice-bench`; they moved here so the
//! distributed checking service can resolve a job's scenario without
//! depending on the bench harness (which sits above the service in the
//! crate stack). `nice-bench` re-exports them unchanged.

use crate::pyswitch::{PySwitchApp, PySwitchVariant};
use crate::scenarios::find_scenario;
use nice_hosts::{ClientHost, HostModel, SendBudget};
use nice_mc::{FaultPlan, Scenario};
use nice_openflow::{HostId, Packet, PortId, SwitchConfig, SwitchId, Topology};

/// The layer-2 ping workload of Section 7: host A sends `pings` pings to
/// host B over the Figure 1 topology, host B echoes each one, and the
/// controller runs the MAC-learning switch of Figure 3. Symbolic execution is
/// off (scripted sends), matching Table 1's setup.
pub fn ping_workload(pings: u32, canonical_switch_model: bool) -> Scenario {
    let topology = Topology::linear_two_switches();
    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();
    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(host_a, SendBudget::sends(pings))),
        Box::new(ClientHost::new(host_b, SendBudget::SILENT).with_echo()),
    ];
    let script: Vec<Packet> = (0..pings)
        .map(|i| Packet::l2_ping(i as u64 + 1, host_a.mac, host_b.mac, i))
        .collect();
    Scenario::builder(format!("ping-{pings}"))
        .topology(topology)
        .app(Box::new(PySwitchApp::new(PySwitchVariant::Original)))
        .hosts(hosts)
        .scripted_sends([(HostId(1), script)])
        .switch_config(SwitchConfig {
            canonical_flow_table: canonical_switch_model,
            ..SwitchConfig::default()
        })
        .build()
}

/// The ping workload stretched over a chain of `switches` switches: host A
/// at one end of the chain, the echoing host B at the other, pyswitch
/// learning MACs along the way. Used by the exploration-engine benches —
/// the larger the system, the more a full state clone costs and the more
/// copy-on-write snapshots win.
pub fn chain_ping_workload(switches: u32, pings: u32) -> Scenario {
    assert!(switches >= 2, "a chain needs at least two switches");
    // Port plan per switch: 1 = host (ends only), 2 = towards the next
    // switch, 3 = towards the previous switch.
    let mut builder = Topology::builder();
    for s in 1..=switches {
        builder = builder.switch(SwitchId(s), &[1, 2, 3]);
    }
    builder = builder.host(HostId(1), SwitchId(1), PortId(1)).host(
        HostId(2),
        SwitchId(switches),
        PortId(1),
    );
    for s in 1..switches {
        builder = builder.link(SwitchId(s), PortId(2), SwitchId(s + 1), PortId(3));
    }
    let topology = builder.build();

    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();
    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(host_a, SendBudget::sends(pings))),
        Box::new(ClientHost::new(host_b, SendBudget::SILENT).with_echo()),
    ];
    let script: Vec<Packet> = (0..pings)
        .map(|i| Packet::l2_ping(i as u64 + 1, host_a.mac, host_b.mac, i))
        .collect();
    Scenario::builder(format!("chain{switches}-ping-{pings}"))
        .topology(topology)
        .app(Box::new(PySwitchApp::new(PySwitchVariant::Original)))
        .hosts(hosts)
        .scripted_sends([(HostId(1), script)])
        .build()
}

/// The chain ping workload with a fault plan attached: a switch-crash budget
/// plus lossy ingress channels. With fault injection *off* (the default) the
/// plan is dormant and the explored state space is bit-identical to
/// [`chain_ping_workload`] — the CI bench gate asserts exactly that — while
/// runs with `CheckerConfig::inject_faults` stress the crash/recovery
/// paths of the same topology.
pub fn chain_fault_workload(switches: u32, pings: u32) -> Scenario {
    chain_ping_workload(switches, pings).with_fault_plan(FaultPlan::lossy(1).with_switch_crash())
}

/// The load-balancer bug-hunt scenario (BUG-V) explored exhaustively — the
/// second workload the exploration-engine benches must demonstrate wins on.
/// Resolved through the scenario registry, so the bench bins exercise the
/// same entry `nice run` does.
pub fn load_balancer_workload() -> Scenario {
    find_scenario("bug-v-packets-dropped-in-transition")
        .expect("BUG-V is registered")
        .build()
}

/// Resolves a scenario *spec* to a scenario: either a registry name
/// (`bug-v-packets-dropped-in-transition`, see
/// [`scenarios::registry`](crate::scenarios::registry)) or one of the
/// parameterised bench workloads:
///
/// * `ping:<pings>` — [`ping_workload`] with the canonical switch model,
/// * `chain:<switches>:<pings>` — [`chain_ping_workload`],
/// * `chain-faults:<switches>:<pings>` — [`chain_fault_workload`].
///
/// Worker processes of the `nice-dist` service rebuild their scenario from
/// this spec, so every shard starts from the identical system.
pub fn resolve(spec: &str) -> Option<Scenario> {
    if let Some(entry) = find_scenario(spec) {
        return Some(entry.build());
    }
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let args: Vec<u32> = parts.map(|p| p.parse().ok()).collect::<Option<_>>()?;
    match (kind, args.as_slice()) {
        ("ping", [pings]) => Some(ping_workload(*pings, true)),
        ("chain", [switches, pings]) if *switches >= 2 => {
            Some(chain_ping_workload(*switches, *pings))
        }
        ("chain-faults", [switches, pings]) if *switches >= 2 => {
            Some(chain_fault_workload(*switches, *pings))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_accepts_registry_names_and_parameterised_specs() {
        assert_eq!(
            resolve("bug-v-packets-dropped-in-transition").unwrap().name,
            find_scenario("bug-v-packets-dropped-in-transition")
                .unwrap()
                .build()
                .name
        );
        assert_eq!(resolve("ping:2").unwrap().name, "ping-2");
        assert_eq!(resolve("chain:5:2").unwrap().name, "chain5-ping-2");
        assert!(resolve("chain-faults:5:2")
            .unwrap()
            .fault_plan
            .any_enabled());
        for bad in ["", "chain:1:2", "chain:x:2", "nope", "ping:2:3"] {
            assert!(resolve(bad).is_none(), "{bad:?} must not resolve");
        }
    }
}
