//! The web-server load balancer of Section 8.2.
//!
//! The application (modelled on "OpenFlow-Based Server Load Balancing Gone
//! Wild", Wang et al.) spreads client TCP connections addressed to a virtual
//! IP over a set of server replicas, answers ARP requests for the virtual IP
//! on the replicas' behalf, and can change its load-balancing policy at run
//! time; connections started before a policy change must keep their replica
//! (FlowAffinity), which the application approximates by treating a SYN seen
//! during the transition as the start of a new connection.
//!
//! Each bug the paper found is behind a configuration flag so that the model
//! checker can demonstrate both the violation and the fix:
//!
//! * **BUG-IV** (`bug_forget_packet_out`): the handler installs the
//!   per-connection rule but never releases the buffered packet that
//!   triggered it (`NoForgottenPackets`).
//! * **BUG-V** (`bug_ignore_unexpected_reason`): during a policy transition
//!   the handler ignores packets whose `packet_in` reason code is not the one
//!   it expects, leaving them in the switch buffer (`NoForgottenPackets`).
//! * **BUG-VI** (`bug_forget_arp_buffer`): the handler answers ARP requests
//!   for the virtual IP but never discards the buffered request
//!   (`NoForgottenPackets`).
//! * **BUG-VII** (inherent to the SYN heuristic): a duplicate SYN arriving
//!   during a policy transition re-assigns an existing connection to the new
//!   replica (`FlowAffinity`).

use crate::util::{connection_key, tcp_microflow_match};
use nice_controller::{ControllerApp, ControllerOps, PacketInContext, RuleSpec};
use nice_openflow::{Action, Fingerprint, Fnv64, MacAddr, NwAddr, Packet, PacketInReason, PortId};
use nice_sym::{Env, SymMap, SymPacket};

/// One server replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// The replica's MAC address.
    pub mac: MacAddr,
    /// The replica's real IP address.
    pub ip: NwAddr,
    /// The switch port the replica is attached to.
    pub port: PortId,
}

/// Static configuration of the load balancer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadBalancerConfig {
    /// The virtual IP clients connect to.
    pub vip: NwAddr,
    /// The virtual MAC answered in ARP replies for the VIP.
    pub vmac: MacAddr,
    /// The switch port the client is attached to (reply traffic is sent
    /// there).
    pub client_port: PortId,
    /// The server replicas, in policy order.
    pub replicas: Vec<Replica>,
    /// After this many handled TCP packets the policy flips from replica 0 to
    /// replica 1 and the application enters its transition phase (0 = never
    /// reconfigure).
    pub reconfigure_after: u32,
    /// BUG-IV: do not release the buffered packet after installing the rule.
    pub bug_forget_packet_out: bool,
    /// BUG-V: during a transition, ignore packets whose reason code is not
    /// the expected one.
    pub bug_ignore_unexpected_reason: bool,
    /// BUG-VI: do not discard buffered ARP requests after answering them.
    pub bug_forget_arp_buffer: bool,
}

impl LoadBalancerConfig {
    /// A correct (all fixes applied) configuration for the single-switch
    /// topology used in the paper's evaluation: client on port 1, two
    /// replicas on ports 2 and 3.
    pub fn correct(vip: NwAddr) -> Self {
        LoadBalancerConfig {
            vip,
            vmac: MacAddr(0x0200_0000_0100),
            client_port: PortId(1),
            replicas: vec![
                Replica {
                    mac: MacAddr::for_host(2),
                    ip: NwAddr::for_host(2),
                    port: PortId(2),
                },
                Replica {
                    mac: MacAddr::for_host(3),
                    ip: NwAddr::for_host(3),
                    port: PortId(3),
                },
            ],
            reconfigure_after: 0,
            bug_forget_packet_out: false,
            bug_ignore_unexpected_reason: false,
            bug_forget_arp_buffer: false,
        }
    }

    /// Enables a policy change after `n` handled TCP packets (builder style).
    pub fn with_reconfiguration_after(mut self, n: u32) -> Self {
        self.reconfigure_after = n;
        self
    }
}

/// The load-balancer controller application.
#[derive(Debug, Clone)]
pub struct LoadBalancerApp {
    config: LoadBalancerConfig,
    /// Handled TCP packets (drives the scripted policy change).
    packets_handled: u32,
    /// True once the policy change has started.
    in_transition: bool,
    /// Index of the replica new connections are assigned to.
    policy: u16,
    /// Connection → replica assignment, keyed by `(src_ip << 16) | src_port`.
    connections: SymMap<u16>,
}

impl LoadBalancerApp {
    /// Creates the application.
    pub fn new(config: LoadBalancerConfig) -> Self {
        LoadBalancerApp {
            config,
            packets_handled: 0,
            in_transition: false,
            policy: 0,
            connections: SymMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LoadBalancerConfig {
        &self.config
    }

    /// True once the application has entered its policy transition.
    pub fn in_transition(&self) -> bool {
        self.in_transition
    }

    /// Number of connections with a replica assignment.
    pub fn known_connections(&self) -> usize {
        self.connections.len()
    }

    fn handle_arp(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        let is_request_for_vip = packet
            .arp_op
            .eq_const(1)
            .and(&packet.dst_ip.eq_const(self.config.vip.value() as u64));
        if env.branch(&is_request_for_vip) {
            // Answer on behalf of the VIP.
            let requester_mac = MacAddr(env.concretize(&packet.src_mac));
            let requester_ip = NwAddr(env.concretize(&packet.src_ip) as u32);
            let reply = Packet::arp_reply(
                0,
                self.config.vmac,
                self.config.vip,
                requester_mac,
                requester_ip,
            );
            ops.send_packet(
                ctx.switch,
                reply,
                ctx.in_port,
                vec![Action::Output(ctx.in_port)],
            );
            if !self.config.bug_forget_arp_buffer {
                // Discard the buffered request (the fix for BUG-VI): an empty
                // action list tells the switch to drop it.
                ops.send_packet_out(ctx.switch, ctx.buffer_id, ctx.in_port, Vec::new());
            }
        } else {
            // Other ARP traffic (e.g. server-generated requests) is flooded.
            ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
        }
    }

    fn handle_tcp_to_vip(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        self.packets_handled += 1;
        if self.config.reconfigure_after > 0
            && !self.in_transition
            && self.packets_handled > self.config.reconfigure_after
        {
            self.in_transition = true;
            self.policy = 1 % self.config.replicas.len() as u16;
        }

        if self.in_transition
            && self.config.bug_ignore_unexpected_reason
            && ctx.reason == PacketInReason::NoMatch
        {
            // BUG-V: during the transition the application expects its
            // redirect rules to send packets up with reason=Action; a
            // NO_MATCH packet is "unexpected" and silently ignored, so the
            // buffered packet is never released.
            return;
        }

        let key = connection_key(packet);
        let existing = self.connections.get(&key, env);
        let is_syn = env.branch(&packet.is_syn());
        let replica_index = match existing {
            // BUG-VII: during a transition a SYN is assumed to start a new
            // connection and is re-assigned under the new policy, even if the
            // connection already has a replica.
            Some(index) if !(self.in_transition && is_syn) => index,
            _ => {
                let index = self.policy;
                self.connections.insert(key, index);
                index
            }
        };
        let replica = self.config.replicas[replica_index as usize];

        ops.install_rule(
            ctx.switch,
            RuleSpec::new(
                tcp_microflow_match(env, packet),
                vec![Action::Output(replica.port)],
            )
            .with_priority(200)
            .with_cookie(10 + replica_index as u64),
        );
        if !self.config.bug_forget_packet_out {
            // The fix for BUG-IV: also release the triggering packet.
            ops.send_packet_out(
                ctx.switch,
                ctx.buffer_id,
                ctx.in_port,
                vec![Action::Output(replica.port)],
            );
        }
    }
}

impl ControllerApp for LoadBalancerApp {
    fn name(&self) -> &str {
        "load-balancer"
    }

    fn packet_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        if env.branch(&packet.is_arp()) {
            self.handle_arp(ops, env, ctx, packet);
            return;
        }
        let tcp_to_vip = packet
            .is_tcp()
            .and(&packet.dst_ip.eq_const(self.config.vip.value() as u64));
        if env.branch(&tcp_to_vip) {
            self.handle_tcp_to_vip(ops, env, ctx, packet);
            return;
        }
        // Return traffic from the replicas (sourced from the VIP) goes back
        // to the client port.
        if env.branch(&packet.src_ip.eq_const(self.config.vip.value() as u64)) {
            ops.send_packet_out(
                ctx.switch,
                ctx.buffer_id,
                ctx.in_port,
                vec![Action::Output(self.config.client_port)],
            );
            return;
        }
        // Anything else is flooded.
        ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
    }

    fn clone_app(&self) -> Box<dyn ControllerApp> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u32(self.packets_handled);
        hasher.write_bool(self.in_transition);
        hasher.write_u16(self.policy);
        self.connections.fingerprint(hasher);
    }

    fn is_same_flow(&self, a: &Packet, b: &Packet) -> bool {
        // Packets of the same TCP connection belong to the same flow, except
        // that (like the application itself) a SYN is treated as the start of
        // a new, independent flow — this is exactly why the FLOW-IR strategy
        // misses BUG-VII in the paper.
        let key = |p: &Packet| (p.src_ip, p.src_port, p.dst_ip, p.dst_port);
        key(a) == key(b) && a.tcp_flags.is_syn() == b.tcp_flags.is_syn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_controller::ControllerRuntime;
    use nice_openflow::{BufferId, OfMessage, SwitchId, TcpFlags};

    fn vip() -> NwAddr {
        NwAddr::from_octets(10, 0, 0, 100)
    }

    fn tcp_packet_in(src_port: u16, flags: TcpFlags, buffer: u64) -> OfMessage {
        OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::tcp(
                buffer,
                MacAddr::for_host(1),
                MacAddr(0x0200_0000_0100),
                NwAddr::for_host(1),
                vip(),
                src_port,
                80,
                flags,
                0,
            ),
            buffer_id: BufferId(buffer),
            reason: PacketInReason::NoMatch,
        }
    }

    fn arp_packet_in(buffer: u64) -> OfMessage {
        OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::arp_request(buffer, MacAddr::for_host(1), NwAddr::for_host(1), vip()),
            buffer_id: BufferId(buffer),
            reason: PacketInReason::NoMatch,
        }
    }

    #[test]
    fn tcp_connection_gets_rule_and_packet_out() {
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(
            LoadBalancerConfig::correct(vip()),
        )));
        let out = rt.handle_message(&tcp_packet_in(1000, TcpFlags::SYN, 1));
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].1, OfMessage::FlowMod { .. }));
        match &out[1].1 {
            OfMessage::PacketOut { actions, .. } => {
                assert_eq!(
                    actions,
                    &vec![Action::Output(PortId(2))],
                    "policy 0 → replica on port 2"
                );
            }
            other => panic!("unexpected {other}"),
        }
        let app: &LoadBalancerApp = rt.app_as().unwrap();
        assert_eq!(app.known_connections(), 1);
    }

    #[test]
    fn bug_iv_forgets_the_triggering_packet() {
        let mut config = LoadBalancerConfig::correct(vip());
        config.bug_forget_packet_out = true;
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(config)));
        let out = rt.handle_message(&tcp_packet_in(1000, TcpFlags::SYN, 1));
        assert_eq!(out.len(), 1, "only the flow_mod, no packet_out");
        assert!(matches!(out[0].1, OfMessage::FlowMod { .. }));
    }

    #[test]
    fn arp_request_for_vip_is_answered_and_buffer_discarded() {
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(
            LoadBalancerConfig::correct(vip()),
        )));
        let out = rt.handle_message(&arp_packet_in(1));
        assert_eq!(out.len(), 2);
        match &out[0].1 {
            OfMessage::PacketOut {
                packet: Some(reply),
                ..
            } => {
                assert_eq!(reply.arp_op, 2);
                assert_eq!(reply.src_ip, vip());
                assert_eq!(reply.dst_mac, MacAddr::for_host(1));
            }
            other => panic!("unexpected {other}"),
        }
        match &out[1].1 {
            OfMessage::PacketOut {
                buffer_id: Some(_),
                actions,
                ..
            } => {
                assert!(actions.is_empty(), "the buffered request is dropped");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn bug_vi_forgets_the_arp_buffer() {
        let mut config = LoadBalancerConfig::correct(vip());
        config.bug_forget_arp_buffer = true;
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(config)));
        let out = rt.handle_message(&arp_packet_in(1));
        assert_eq!(
            out.len(),
            1,
            "the reply is sent but the buffer is never released"
        );
    }

    #[test]
    fn bug_v_ignores_unexpected_reason_during_transition() {
        let mut config = LoadBalancerConfig::correct(vip()).with_reconfiguration_after(1);
        config.bug_ignore_unexpected_reason = true;
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(config)));
        // First packet: steady state, handled normally.
        assert_eq!(
            rt.handle_message(&tcp_packet_in(1000, TcpFlags::SYN, 1))
                .len(),
            2
        );
        // Second packet starts the transition and is then ignored because its
        // reason code is NO_MATCH.
        let out = rt.handle_message(&tcp_packet_in(1000, TcpFlags::ACK, 2));
        assert!(out.is_empty(), "BUG-V: the packet is silently ignored");
        let app: &LoadBalancerApp = rt.app_as().unwrap();
        assert!(app.in_transition());
    }

    #[test]
    fn bug_vii_duplicate_syn_reassigns_connection_during_transition() {
        let config = LoadBalancerConfig::correct(vip()).with_reconfiguration_after(1);
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(config)));
        // SYN before the transition: assigned to replica 0 (port 2).
        let out = rt.handle_message(&tcp_packet_in(1000, TcpFlags::SYN, 1));
        assert!(matches!(&out[1].1, OfMessage::PacketOut { actions, .. }
            if actions == &vec![Action::Output(PortId(2))]));
        // Duplicate SYN after the transition threshold: re-assigned to
        // replica 1 (port 3) — the FlowAffinity violation the checker later
        // observes in the data plane.
        let out = rt.handle_message(&tcp_packet_in(1000, TcpFlags::SYN, 2));
        assert!(matches!(&out[1].1, OfMessage::PacketOut { actions, .. }
            if actions == &vec![Action::Output(PortId(3))]));
        // A non-SYN packet of the same connection keeps its assignment even
        // during the transition.
        let config = LoadBalancerConfig::correct(vip()).with_reconfiguration_after(1);
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(config)));
        rt.handle_message(&tcp_packet_in(1000, TcpFlags::SYN, 1));
        let out = rt.handle_message(&tcp_packet_in(1000, TcpFlags::ACK, 2));
        assert!(matches!(&out[1].1, OfMessage::PacketOut { actions, .. }
            if actions == &vec![Action::Output(PortId(2))]));
    }

    #[test]
    fn replica_return_traffic_goes_to_the_client_port() {
        let mut rt = ControllerRuntime::new(Box::new(LoadBalancerApp::new(
            LoadBalancerConfig::correct(vip()),
        )));
        let reply = Packet::tcp(
            5,
            MacAddr::for_host(2),
            MacAddr::for_host(1),
            vip(),
            NwAddr::for_host(1),
            80,
            1000,
            TcpFlags::SYN_ACK,
            0,
        );
        let out = rt.handle_message(&OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(2),
            packet: reply,
            buffer_id: BufferId(5),
            reason: PacketInReason::NoMatch,
        });
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0].1, OfMessage::PacketOut { actions, .. }
            if actions == &vec![Action::Output(PortId(1))]));
    }

    #[test]
    fn flow_independence_oracle() {
        let app = LoadBalancerApp::new(LoadBalancerConfig::correct(vip()));
        let syn = Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            vip(),
            1000,
            80,
            TcpFlags::SYN,
            0,
        );
        let mut data = syn;
        data.tcp_flags = TcpFlags::ACK;
        let mut other_conn = syn;
        other_conn.src_port = 2000;
        assert!(app.is_same_flow(&syn, &syn));
        assert!(app.is_same_flow(&data, &data));
        assert!(
            !app.is_same_flow(&syn, &data),
            "a SYN starts an independent flow"
        );
        assert!(!app.is_same_flow(&syn, &other_conn));
    }
}
