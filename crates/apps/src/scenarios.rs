//! Ready-to-check scenarios for the eleven bugs of Section 8 (Table 2),
//! plus the enumerable **scenario registry**.
//!
//! Each scenario pairs the application variant containing the bug with the
//! topology, host models, send policy and the correctness property that the
//! paper reports as detecting it. The benchmark harness iterates over
//! [`BugId::ALL`] × the four search strategies to regenerate Table 2.
//!
//! [`BugId::BugXII`] extends the table beyond the paper: a fault-injection
//! scenario ([`ScenarioEntry::requires_faults`]) whose violation only exists
//! when the checker schedules switch crashes, and whose fixed counterpart
//! survives the same crashes by re-sending unconfirmed packets.
//!
//! [`registry`] enumerates every bug/fixed pair as a [`ScenarioEntry`] —
//! name, application, bug, expected violation and a `build()` constructor —
//! so sweeps, CLIs and CI jobs can iterate over "everything NICE knows how
//! to check" without hand-wiring [`bug_scenario`]/[`fixed_scenario`] call
//! sites.

use crate::energyte::{EnergyTeApp, EnergyTeConfig, UseCorrectRoutingTable};
use crate::loadbalancer::{LoadBalancerApp, LoadBalancerConfig};
use crate::pyswitch::{PySwitchApp, PySwitchVariant};
use nice_hosts::{ClientHost, HostModel, MobileHost, SendBudget, ServerHost};
use nice_mc::properties::{
    FlowAffinity, NoAbandonedPackets, NoBlackHoles, NoForgottenPackets, NoForwardingLoops,
    Property, StrictDirectPaths,
};
use nice_mc::{FaultPlan, Scenario, SendPolicy};
use nice_openflow::{EthType, HostId, Location, MacAddr, NwAddr, Packet, PortId, Topology};
use nice_sym::{PacketDomains, StatsDomains};

/// The bugs reported in Section 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum BugId {
    BugI,
    BugII,
    BugIII,
    BugIV,
    BugV,
    BugVI,
    BugVII,
    BugVIII,
    BugIX,
    BugX,
    BugXI,
    BugXII,
}

impl BugId {
    /// All bugs, in Table 2 order (the fault-injection scenario last).
    pub const ALL: [BugId; 12] = [
        BugId::BugI,
        BugId::BugII,
        BugId::BugIII,
        BugId::BugIV,
        BugId::BugV,
        BugId::BugVI,
        BugId::BugVII,
        BugId::BugVIII,
        BugId::BugIX,
        BugId::BugX,
        BugId::BugXI,
        BugId::BugXII,
    ];

    /// The Roman-numeral label used in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            BugId::BugI => "I",
            BugId::BugII => "II",
            BugId::BugIII => "III",
            BugId::BugIV => "IV",
            BugId::BugV => "V",
            BugId::BugVI => "VI",
            BugId::BugVII => "VII",
            BugId::BugVIII => "VIII",
            BugId::BugIX => "IX",
            BugId::BugX => "X",
            BugId::BugXI => "XI",
            BugId::BugXII => "XII",
        }
    }

    /// The application the bug belongs to.
    pub fn application(&self) -> &'static str {
        match self {
            BugId::BugI | BugId::BugII | BugId::BugIII | BugId::BugXII => "pyswitch",
            BugId::BugIV | BugId::BugV | BugId::BugVI | BugId::BugVII => "load-balancer",
            _ => "energy-te",
        }
    }

    /// The correctness property whose violation reveals the bug.
    pub fn property_name(&self) -> &'static str {
        match self {
            BugId::BugI => "NoBlackHoles",
            BugId::BugII => "StrictDirectPaths",
            BugId::BugIII => "NoForwardingLoops",
            BugId::BugIV | BugId::BugV | BugId::BugVI => "NoForgottenPackets",
            BugId::BugVII => "FlowAffinity",
            BugId::BugVIII | BugId::BugIX | BugId::BugXI => "NoForgottenPackets",
            BugId::BugX => "UseCorrectRoutingTable",
            BugId::BugXII => "NoAbandonedPackets",
        }
    }

    /// True if the bug's violation only exists under fault injection: its
    /// scenarios carry an enabled [`FaultPlan`], and checking them without
    /// `CheckerConfig::with_fault_injection(true)` is expected to pass.
    pub fn requires_faults(&self) -> bool {
        matches!(self, BugId::BugXII)
    }

    /// The registry name of the scenario exhibiting this bug (what
    /// [`bug_scenario`] builds and `nice run` takes).
    pub fn scenario_name(&self) -> &'static str {
        match self {
            BugId::BugI => "bug-i-host-unreachable-after-moving",
            BugId::BugII => "bug-ii-delayed-direct-path",
            BugId::BugIII => "bug-iii-excess-flooding",
            BugId::BugIV => "bug-iv-next-packet-dropped",
            BugId::BugV => "bug-v-packets-dropped-in-transition",
            BugId::BugVI => "bug-vi-arp-packets-forgotten",
            BugId::BugVII => "bug-vii-duplicate-syn",
            BugId::BugVIII => "bug-viii-first-packet-dropped",
            BugId::BugIX => "bug-ix-intermediate-switch-packets-dropped",
            BugId::BugX => "bug-x-only-on-demand-routes",
            BugId::BugXI => "bug-xi-packets-dropped-on-scale-down",
            BugId::BugXII => "bug-xii-packet-lost-on-switch-crash",
        }
    }

    /// The registry name of the fixed counterpart, where one exists.
    pub fn fixed_scenario_name(&self) -> Option<&'static str> {
        match self {
            BugId::BugII => Some("bug-ii-fixed"),
            BugId::BugIV => Some("bug-iv-fixed"),
            BugId::BugVI => Some("bug-vi-fixed"),
            BugId::BugVIII => Some("bug-viii-fixed"),
            BugId::BugX => Some("bug-x-fixed"),
            BugId::BugXII => Some("bug-xii-fixed"),
            _ => None,
        }
    }

    /// A one-line description (from Section 8).
    pub fn description(&self) -> &'static str {
        match self {
            BugId::BugI => "host unreachable after moving",
            BugId::BugII => "delayed direct path",
            BugId::BugIII => "excess flooding",
            BugId::BugIV => "next TCP packet always dropped after reconfiguration",
            BugId::BugV => "some TCP packets dropped after reconfiguration",
            BugId::BugVI => "ARP packets forgotten during address resolution",
            BugId::BugVII => "duplicate SYN packets during transitions",
            BugId::BugVIII => "first packet of a new flow is dropped",
            BugId::BugIX => "first few packets of a new flow can be dropped",
            BugId::BugX => "only on-demand routes used under high load",
            BugId::BugXI => "packets can be dropped when the load reduces",
            BugId::BugXII => "controller-acknowledged packets lost when a switch crashes",
        }
    }
}

/// The virtual IP used by the load-balancer scenarios.
pub fn load_balancer_vip() -> NwAddr {
    NwAddr::from_octets(10, 0, 0, 100)
}

fn l2_domains(topology: &Topology) -> PacketDomains {
    PacketDomains::from_topology(topology)
        .with_eth_types(vec![EthType::L2Ping.value() as u64])
        .with_ports(vec![0])
        .with_payloads(vec![0])
}

fn lb_domains(topology: &Topology) -> PacketDomains {
    let vip = load_balancer_vip();
    let mut domains = PacketDomains::from_topology(topology)
        .with_eth_types(vec![
            EthType::Ipv4.value() as u64,
            EthType::Arp.value() as u64,
        ])
        .with_ports(vec![1000, 80])
        .with_payloads(vec![0]);
    domains.ips.push(vip.value() as u64);
    domains
}

fn pyswitch_scenario(
    name: &str,
    variant: PySwitchVariant,
    topology: Topology,
    mobile_b: bool,
    sends: u32,
    property: Box<dyn Property>,
) -> Scenario {
    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();
    let domains = l2_domains(&topology);

    let b: Box<dyn HostModel> = if mobile_b {
        // The mobile host can move to the spare port of its own switch.
        let targets = vec![Location {
            switch: host_b.location.switch,
            port: PortId(3),
        }];
        Box::new(MobileHost::new(host_b, SendBudget::SILENT, targets).with_echo())
    } else {
        Box::new(ClientHost::new(host_b, SendBudget::SILENT).with_echo())
    };
    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(
            host_a,
            SendBudget::sends_with_burst(sends, 1),
        )),
        b,
    ];

    Scenario::builder(name)
        .topology(topology)
        .app(Box::new(PySwitchApp::new(variant)))
        .hosts(hosts)
        .send_policy(SendPolicy::Discover)
        .packet_domains(domains)
        .property(property)
        .build()
}

fn load_balancer_scenario(
    name: &str,
    config: LoadBalancerConfig,
    sends: u32,
    property: Box<dyn Property>,
) -> Scenario {
    let topology = Topology::single_switch(3);
    let client = *topology.host(HostId(1)).unwrap();
    let replica1 = *topology.host(HostId(2)).unwrap();
    let replica2 = *topology.host(HostId(3)).unwrap();
    let vip = load_balancer_vip();
    let domains = lb_domains(&topology);

    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(
            client,
            SendBudget::sends_with_burst(sends, 2),
        )),
        Box::new(ServerHost::new(replica1).with_virtual_ip(vip)),
        Box::new(ServerHost::new(replica2).with_virtual_ip(vip)),
    ];

    Scenario::builder(name)
        .topology(topology)
        .app(Box::new(LoadBalancerApp::new(config)))
        .hosts(hosts)
        .send_policy(SendPolicy::Discover)
        .packet_domains(domains)
        .property(property)
        // Inert unless the checker enables fault injection: `--faults` runs
        // additionally explore duplicated control-plane messages (the load
        // balancer must be idempotent against them).
        .fault_plan(FaultPlan::duplicates(2))
        .build()
}

fn energy_te_scenario(
    name: &str,
    config: EnergyTeConfig,
    flows: &[(u32, u32)],
    property: Box<dyn Property>,
) -> Scenario {
    let topology = Topology::triangle();
    let sender = *topology.host(HostId(1)).unwrap();
    let recv1 = *topology.host(HostId(2)).unwrap();
    let recv2 = *topology.host(HostId(3)).unwrap();

    let script: Vec<Packet> = flows
        .iter()
        .enumerate()
        .map(|(i, (src, dst))| {
            Packet::l2_ping(
                i as u64 + 1,
                MacAddr::for_host(*src),
                MacAddr::for_host(*dst),
                i as u32,
            )
        })
        .collect();
    let sends = script.len() as u32;

    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(sender, SendBudget::sends(sends))),
        Box::new(ClientHost::new(recv1, SendBudget::SILENT)),
        Box::new(ClientHost::new(recv2, SendBudget::SILENT)),
    ];

    let threshold = config.utilization_threshold;
    Scenario::builder(name)
        .topology(topology)
        .app(Box::new(EnergyTeApp::new(config)))
        .hosts(hosts)
        .scripted_sends([(HostId(1), script)])
        .stats_domains(StatsDomains::around_threshold(threshold))
        .property(property)
        .build()
}

/// A minimal single-switch ping workload checked under a one-crash
/// [`FaultPlan`]: the only way to lose the packet after the controller
/// acknowledged it is a switch crash wiping the in-flight `packet_out`, so
/// the violation (and the fix) only show up with fault injection enabled.
fn crash_pyswitch_scenario(name: &str, variant: PySwitchVariant) -> Scenario {
    let topology = Topology::single_switch(2);
    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();
    let script = vec![Packet::l2_ping(
        1,
        MacAddr::for_host(1),
        MacAddr::for_host(2),
        0,
    )];

    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(host_a, SendBudget::sends(1))),
        Box::new(ClientHost::new(host_b, SendBudget::SILENT)),
    ];

    Scenario::builder(name)
        .topology(topology)
        .app(Box::new(PySwitchApp::new(variant)))
        .hosts(hosts)
        .scripted_sends([(HostId(1), script)])
        .property(Box::new(NoAbandonedPackets::new()))
        .fault_plan(FaultPlan::crashes(1))
        .build()
}

/// Builds the scenario that exhibits `bug` (Table 2 row).
pub fn bug_scenario(bug: BugId) -> Scenario {
    let name = bug.scenario_name();
    match bug {
        BugId::BugI => pyswitch_scenario(
            name,
            PySwitchVariant::Original,
            Topology::linear_two_switches(),
            true,
            3,
            Box::new(NoBlackHoles::new()),
        ),
        BugId::BugII => pyswitch_scenario(
            name,
            PySwitchVariant::Original,
            Topology::linear_two_switches(),
            false,
            2,
            Box::new(StrictDirectPaths::new()),
        ),
        BugId::BugIII => pyswitch_scenario(
            name,
            PySwitchVariant::Original,
            Topology::triangle(),
            false,
            1,
            Box::new(NoForwardingLoops::new()),
        ),
        BugId::BugIV => {
            let mut config = LoadBalancerConfig::correct(load_balancer_vip());
            config.bug_forget_packet_out = true;
            load_balancer_scenario(name, config, 1, Box::new(NoForgottenPackets::new()))
        }
        BugId::BugV => {
            let mut config =
                LoadBalancerConfig::correct(load_balancer_vip()).with_reconfiguration_after(1);
            config.bug_ignore_unexpected_reason = true;
            load_balancer_scenario(name, config, 2, Box::new(NoForgottenPackets::new()))
        }
        BugId::BugVI => {
            let mut config = LoadBalancerConfig::correct(load_balancer_vip());
            config.bug_forget_arp_buffer = true;
            load_balancer_scenario(name, config, 1, Box::new(NoForgottenPackets::new()))
        }
        BugId::BugVII => {
            let config =
                LoadBalancerConfig::correct(load_balancer_vip()).with_reconfiguration_after(1);
            load_balancer_scenario(
                name,
                config,
                3,
                Box::new(FlowAffinity::new([HostId(2), HostId(3)])),
            )
        }
        BugId::BugVIII => {
            let mut config = EnergyTeConfig::triangle_default();
            config.bug_forget_packet_out = true;
            energy_te_scenario(name, config, &[(1, 2)], Box::new(NoForgottenPackets::new()))
        }
        BugId::BugIX => {
            let mut config = EnergyTeConfig::triangle_default();
            config.bug_ignore_intermediate = true;
            energy_te_scenario(name, config, &[(1, 2)], Box::new(NoForgottenPackets::new()))
        }
        BugId::BugX => {
            let mut config = EnergyTeConfig::triangle_default();
            config.bug_single_table_pointer = true;
            energy_te_scenario(
                name,
                config,
                &[(1, 2), (1, 3)],
                Box::new(UseCorrectRoutingTable::new()),
            )
        }
        BugId::BugXI => {
            let mut config = EnergyTeConfig::triangle_default();
            config.bug_ignore_after_scale_down = true;
            config.stats_polls = 2;
            energy_te_scenario(
                name,
                config,
                &[(1, 2), (1, 3)],
                Box::new(NoForgottenPackets::new()),
            )
        }
        BugId::BugXII => crash_pyswitch_scenario(name, PySwitchVariant::Original),
    }
}

/// Builds the *fixed* counterpart of a bug scenario, where one exists: same
/// topology and workload, but with the fix applied. Used to demonstrate that
/// the fixes eliminate the violations.
pub fn fixed_scenario(bug: BugId) -> Option<Scenario> {
    match bug {
        BugId::BugII => Some(pyswitch_scenario(
            bug.fixed_scenario_name().unwrap(),
            PySwitchVariant::FixedTwoWayInstall,
            Topology::linear_two_switches(),
            false,
            2,
            Box::new(StrictDirectPaths::new()),
        )),
        BugId::BugIV => Some(load_balancer_scenario(
            bug.fixed_scenario_name().unwrap(),
            LoadBalancerConfig::correct(load_balancer_vip()),
            1,
            Box::new(NoForgottenPackets::new()),
        )),
        BugId::BugVI => Some(load_balancer_scenario(
            bug.fixed_scenario_name().unwrap(),
            LoadBalancerConfig::correct(load_balancer_vip()),
            1,
            Box::new(NoForgottenPackets::new()),
        )),
        BugId::BugVIII => Some(energy_te_scenario(
            bug.fixed_scenario_name().unwrap(),
            EnergyTeConfig::triangle_default(),
            &[(1, 2)],
            Box::new(NoForgottenPackets::new()),
        )),
        BugId::BugX => Some(energy_te_scenario(
            bug.fixed_scenario_name().unwrap(),
            EnergyTeConfig::triangle_default(),
            &[(1, 2), (1, 3)],
            Box::new(UseCorrectRoutingTable::new()),
        )),
        BugId::BugXII => Some(crash_pyswitch_scenario(
            bug.fixed_scenario_name().unwrap(),
            PySwitchVariant::CrashResilient,
        )),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The scenario registry
// ---------------------------------------------------------------------------

/// Whether a registry entry carries the published bug or its fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The application variant containing the bug: the check is expected to
    /// find the violation named by [`ScenarioEntry::expected_violation`].
    Buggy,
    /// The fixed counterpart: the same workload is expected to pass.
    Fixed,
}

/// One enumerable, ready-to-build scenario of the registry.
#[derive(Debug, Clone)]
pub struct ScenarioEntry {
    /// The scenario's unique name (identical to the built
    /// [`Scenario::name`]) — what `nice run <name>` takes.
    pub name: String,
    /// Which application the scenario exercises ("pyswitch",
    /// "load-balancer" or "energy-te").
    pub app: &'static str,
    /// The Section 8 bug the scenario reproduces (or whose fix it verifies).
    pub bug: BugId,
    /// Bug or fixed variant.
    pub kind: ScenarioKind,
    /// The property the check is expected to report violated, or `None`
    /// when the scenario is expected to pass (the fixed variants).
    pub expected_violation: Option<&'static str>,
    /// True if the scenario carries an enabled [`FaultPlan`] and
    /// [`ScenarioEntry::expected_violation`] only applies when the checker
    /// runs with fault injection enabled; without it the scenario is
    /// expected to pass.
    pub requires_faults: bool,
}

impl ScenarioEntry {
    /// Builds a fresh copy of the scenario.
    pub fn build(&self) -> Scenario {
        match self.kind {
            ScenarioKind::Buggy => bug_scenario(self.bug),
            ScenarioKind::Fixed => fixed_scenario(self.bug)
                .expect("registry only lists fixed entries for bugs with a fix"),
        }
    }

    /// The property this scenario checks (violated by the buggy variant,
    /// satisfied by the fixed one).
    pub fn property(&self) -> &'static str {
        self.bug.property_name()
    }
}

/// Every scenario NICE ships: a bug entry per [`BugId`] (Table 2 order)
/// followed by the fixed counterpart where one exists. Names are unique, so
/// [`find_scenario`] can resolve them.
pub fn registry() -> Vec<ScenarioEntry> {
    // Names come from the static tables on `BugId`, so enumerating (or
    // resolving) the registry never constructs a scenario; the registry
    // test pins `entry.build().name == entry.name` for every entry.
    let mut entries = Vec::new();
    for bug in BugId::ALL {
        entries.push(ScenarioEntry {
            name: bug.scenario_name().to_string(),
            app: bug.application(),
            bug,
            kind: ScenarioKind::Buggy,
            expected_violation: Some(bug.property_name()),
            requires_faults: bug.requires_faults(),
        });
        if let Some(fixed_name) = bug.fixed_scenario_name() {
            entries.push(ScenarioEntry {
                name: fixed_name.to_string(),
                app: bug.application(),
                bug,
                kind: ScenarioKind::Fixed,
                expected_violation: None,
                requires_faults: bug.requires_faults(),
            });
        }
    }
    entries
}

/// Looks a scenario up by its registry name.
pub fn find_scenario(name: &str) -> Option<ScenarioEntry> {
    registry().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_mc::{CheckerConfig, ModelChecker};

    #[test]
    fn registry_is_complete_and_names_are_unique() {
        let entries = registry();
        // Every bug has exactly one Buggy entry with the right expectation.
        for bug in BugId::ALL {
            let buggy: Vec<_> = entries
                .iter()
                .filter(|e| e.bug == bug && e.kind == ScenarioKind::Buggy)
                .collect();
            assert_eq!(buggy.len(), 1, "{bug:?}");
            assert_eq!(buggy[0].expected_violation, Some(bug.property_name()));
            assert_eq!(buggy[0].app, bug.application());
            // Fixed entries exist exactly where a fixed scenario does.
            let has_fixed = entries
                .iter()
                .any(|e| e.bug == bug && e.kind == ScenarioKind::Fixed);
            assert_eq!(has_fixed, fixed_scenario(bug).is_some(), "{bug:?}");
        }
        // Names are unique and resolvable, and building an entry yields a
        // scenario of the same name with exactly one property.
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "registry names must be unique");
        for entry in &entries {
            let scenario = entry.build();
            assert_eq!(scenario.name, entry.name);
            assert_eq!(scenario.properties.len(), 1, "{}", entry.name);
            assert_eq!(scenario.properties[0].name(), entry.property());
            assert_eq!(
                find_scenario(&entry.name).map(|e| e.kind),
                Some(entry.kind),
                "{}",
                entry.name
            );
        }
        assert!(find_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn every_bug_has_a_scenario_with_one_property() {
        for bug in BugId::ALL {
            let scenario = bug_scenario(bug);
            assert_eq!(scenario.properties.len(), 1, "{bug:?}");
            assert!(!scenario.name.is_empty());
            assert!(!bug.label().is_empty());
            assert!(!bug.description().is_empty());
            assert!(!bug.application().is_empty());
            assert!(!bug.property_name().is_empty());
        }
    }

    #[test]
    fn bug_iv_is_detected_quickly() {
        let report = ModelChecker::new(
            bug_scenario(BugId::BugIV),
            CheckerConfig::default().with_max_transitions(50_000),
        )
        .run();
        assert!(!report.passed(), "BUG-IV must be detected: {report}");
        assert_eq!(
            report.first_violation().unwrap().property,
            "NoForgottenPackets"
        );
    }

    #[test]
    fn bug_viii_is_detected_and_its_fix_passes() {
        let report = ModelChecker::new(
            bug_scenario(BugId::BugVIII),
            CheckerConfig::default().with_max_transitions(50_000),
        )
        .run();
        assert!(!report.passed(), "BUG-VIII must be detected: {report}");

        let fixed = ModelChecker::new(
            fixed_scenario(BugId::BugVIII).unwrap(),
            CheckerConfig::default().with_max_transitions(50_000),
        )
        .run();
        assert!(
            fixed.passed(),
            "the fixed TE app must not violate NoForgottenPackets: {fixed}"
        );
    }

    #[test]
    fn bug_xii_is_found_only_under_fault_injection_and_its_fix_survives() {
        // Without fault injection the crash bug is invisible: the FaultPlan
        // is carried by the scenario but no fault transition is scheduled.
        let quiet = ModelChecker::new(bug_scenario(BugId::BugXII), CheckerConfig::default()).run();
        assert!(quiet.passed(), "no violation without faults: {quiet}");
        assert!(!quiet.stats.faults.any());

        let config = CheckerConfig::default().with_fault_injection(true);
        let report = ModelChecker::new(bug_scenario(BugId::BugXII), config.clone()).run();
        assert!(!report.passed(), "BUG-XII must be detected: {report}");
        assert_eq!(
            report.first_violation().unwrap().property,
            "NoAbandonedPackets"
        );
        assert!(report.stats.faults.crashes > 0, "{report}");

        // The resilient variant explores the same crashes exhaustively and
        // re-delivers every acknowledged packet.
        let fixed = ModelChecker::new(fixed_scenario(BugId::BugXII).unwrap(), config).run();
        assert!(fixed.passed(), "the resilient fix must survive: {fixed}");
        assert!(fixed.stats.faults.crashes > 0, "{fixed}");
        assert!(!fixed.stats.truncated);
    }

    #[test]
    fn bug_iii_forwarding_loop_is_detected() {
        let report = ModelChecker::new(
            bug_scenario(BugId::BugIII),
            CheckerConfig::default().with_max_transitions(100_000),
        )
        .run();
        assert!(!report.passed(), "BUG-III must be detected: {report}");
        assert_eq!(
            report.first_violation().unwrap().property,
            "NoForwardingLoops"
        );
    }
}
