//! # nice-core
//!
//! The NICE facade: given an OpenFlow controller program, a network topology
//! and correctness properties, perform a state-space search combining model
//! checking with symbolic execution and report property violations together
//! with the traces that reproduce them (Figure 2 of the paper).
//!
//! ```
//! use nice_core::prelude::*;
//!
//! // The system under test: the MAC-learning switch on the two-switch
//! // topology of Figure 1, checked against StrictDirectPaths.
//! let scenario = nice_core::scenarios::bug_scenario(nice_core::scenarios::BugId::BugII);
//! let report = Nice::new(scenario)
//!     .with_strategy(StrategyKind::FullDfs)
//!     .with_max_transitions(200_000)
//!     .check();
//! assert!(!report.passed(), "pyswitch violates StrictDirectPaths (BUG-II)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nice_apps as apps;
pub use nice_apps::scenarios;
pub use nice_controller as controller;
pub use nice_hosts as hosts;
pub use nice_mc as mc;
pub use nice_openflow as openflow;
pub use nice_sym as sym;

use nice_mc::{
    CheckObserver, CheckReport, CheckerConfig, ModelChecker, ReductionKind, Scenario, StateStorage,
    StrategyKind,
};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::Nice;
    pub use nice_controller::{ControllerApp, ControllerOps, PacketInContext, RuleSpec};
    pub use nice_hosts::{ClientHost, HostModel, MobileHost, SendBudget, ServerHost};
    pub use nice_mc::properties::{
        DirectPaths, FlowAffinity, NoAbandonedPackets, NoBlackHoles, NoForgottenPackets,
        NoForwardingLoops, Property, StrictDirectPaths,
    };
    pub use nice_mc::{
        render_timeline, BisectReport, CancelToken, CheckEvent, CheckObserver, CheckReport,
        CheckSession, CheckerConfig, ExploredConfig, ExploredMode, ExploredStats,
        FailoverStaleness, FaultPlan, FaultStats, InterruptReason, MinimizeReport, ModelChecker,
        NoopObserver, Outcome, ReductionKind, ReplayOutcome, ReplayReport, ReplayViolation,
        Scenario, ScenarioBuilder, SchedulerKind, SendPolicy, StateStorage, StrategyKind, Timeline,
        Trace, TraceEngine, TraceStep, Violation, TRACE_SCHEMA,
    };
    pub use nice_openflow::{
        Action, HostId, MacAddr, MatchPattern, NwAddr, Packet, PortId, SwitchId, Topology,
    };
    pub use nice_sym::{Env, PacketDomains, StatsDomains, SymMap, SymPacket, SymValue};
}

/// The top-level entry point: a scenario plus a checker configuration.
///
/// `Nice` is a thin, ergonomic wrapper around [`nice_mc::ModelChecker`]; the
/// individual crates remain fully usable on their own.
#[derive(Debug, Clone)]
pub struct Nice {
    scenario: Scenario,
    config: CheckerConfig,
}

impl Nice {
    /// Creates a checker for `scenario` with the default configuration
    /// (exhaustive PKT-SEQ search, stop at the first violation).
    pub fn new(scenario: Scenario) -> Self {
        Nice {
            scenario,
            config: CheckerConfig::default(),
        }
    }

    /// Replaces the whole checker configuration (builder style).
    pub fn with_config(mut self, config: CheckerConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the search strategy (builder style).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Bounds the number of explored transitions (builder style).
    pub fn with_max_transitions(mut self, max: u64) -> Self {
        self.config.max_transitions = max;
        self
    }

    /// Selects how frontier states are stored (builder style).
    pub fn with_state_storage(mut self, storage: StateStorage) -> Self {
        self.config.state_storage = storage;
        self
    }

    /// Selects the partial-order reduction layered on top of the strategy
    /// (builder style).
    pub fn with_reduction(mut self, reduction: ReductionKind) -> Self {
        self.config.reduction = reduction;
        self
    }

    /// Sets the number of search worker threads (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Enables injection of the scenario's [`FaultPlan`] — switch crashes,
    /// channel drops/duplicates/reorders, controller failover, Byzantine
    /// message mutations — during the search (builder style). With fault
    /// injection off (the default) the fault plan is inert and the explored
    /// state space is bit-identical to a plan-free scenario.
    ///
    /// [`FaultPlan`]: nice_mc::FaultPlan
    pub fn with_faults(mut self) -> Self {
        self.config.inject_faults = true;
        self
    }

    /// Keeps searching after the first violation (builder style).
    pub fn collect_all_violations(mut self) -> Self {
        self.config.stop_at_first_violation = false;
        self
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The checker configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Builds the underlying [`ModelChecker`] (cloning the scenario and
    /// configuration). Open a session on it for streaming events,
    /// cancellation or deadlines:
    ///
    /// ```no_run
    /// # use nice_core::prelude::*;
    /// # let scenario = nice_core::scenarios::bug_scenario(nice_core::scenarios::BugId::BugII);
    /// let checker = Nice::new(scenario).checker();
    /// let report = checker
    ///     .session()
    ///     .with_time_budget(std::time::Duration::from_secs(30))
    ///     .run_with(&mut |event: &CheckEvent| {
    ///         if let CheckEvent::Progress { states, rate, .. } = event {
    ///             eprintln!("{states} states ({rate:.0}/s)");
    ///         }
    ///     });
    /// ```
    pub fn checker(&self) -> ModelChecker {
        ModelChecker::new(self.scenario.clone(), self.config.clone())
    }

    /// Runs the systematic state-space search.
    pub fn check(&self) -> CheckReport {
        self.checker().run()
    }

    /// Runs the systematic search as a session, streaming [`CheckEvent`]s
    /// (`Started`, `Progress`, `ViolationFound`, `Finished`) to `observer`.
    /// For cancellation or deadlines, use
    /// [`Nice::checker`]`.session()` directly.
    ///
    /// [`CheckEvent`]: nice_mc::CheckEvent
    pub fn check_with(&self, observer: &mut dyn CheckObserver) -> CheckReport {
        self.checker().session().run_with(observer)
    }

    /// Runs random walks instead of the systematic search (the simulator mode
    /// of Section 1.3).
    pub fn random_walk(&self, seed: u64, walks: u32, max_steps: usize) -> CheckReport {
        ModelChecker::new(self.scenario.clone(), self.config.clone())
            .run_random_walk(seed, walks, max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_apps::scenarios::{bug_scenario, BugId};
    use nice_mc::testutil;

    #[test]
    fn facade_runs_a_passing_scenario() {
        let report = Nice::new(testutil::hub_ping_scenario(1)).check();
        assert!(report.passed());
        assert!(report.stats.transitions > 0);
    }

    #[test]
    fn facade_finds_a_bug_and_reports_a_trace() {
        let report = Nice::new(bug_scenario(BugId::BugVIII))
            .with_max_transitions(100_000)
            .check();
        assert!(!report.passed());
        let violation = report.first_violation().unwrap();
        assert_eq!(violation.property, "NoForgottenPackets");
        assert!(!violation.trace.is_empty());
    }

    #[test]
    fn builders_compose() {
        let nice = Nice::new(testutil::hub_ping_scenario(1))
            .with_strategy(StrategyKind::NoDelay)
            .with_max_transitions(123)
            .with_state_storage(StateStorage::Replay)
            .with_faults()
            .collect_all_violations();
        assert!(nice.config().inject_faults);
        assert_eq!(nice.config().strategy, StrategyKind::NoDelay);
        assert_eq!(nice.config().max_transitions, 123);
        assert_eq!(nice.config().state_storage, StateStorage::Replay);
        assert!(!nice.config().stop_at_first_violation);
        assert_eq!(nice.scenario().name, "hub-ping");
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let nice = Nice::new(testutil::hub_ping_scenario(2));
        let a = nice.random_walk(3, 2, 40);
        let b = nice.random_walk(3, 2, 40);
        assert_eq!(a.stats.transitions, b.stats.transitions);
    }
}
