//! # nice-hosts
//!
//! End-host models (Section 2.2.3 of the paper).
//!
//! Hosts in the real world run arbitrary software; NICE instead provides
//! "simple programs that act as clients or servers" with explicit transitions
//! and little state. The models here are:
//!
//! * [`ClientHost`] — the default client: a `send` transition that can
//!   execute a configurable number of times (the packets themselves come from
//!   the `discover_packets` machinery), a `receive` transition, and an
//!   optional echo behaviour that replies to received packets (the "layer-2
//!   ping" responder of the Section 7 workload). The PKT-SEQ burst counter
//!   (`c` in Section 4) lives here: when it reaches zero the host cannot send
//!   until it receives a packet.
//! * [`ServerHost`] — a TCP-aware responder used by the load-balancer
//!   scenario: replies to SYNs with SYN-ACKs and to data with ACKs.
//! * [`MobileHost`] — a refinement with a `move` transition that relocates
//!   the host to a new `<switch, port>` attachment (the trigger for BUG-I).
//!
//! All models implement [`HostModel`], so applications and test harnesses can
//! add custom host behaviour without touching the model checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nice_openflow::{EthType, Fingerprint, Fnv64, HostId, HostSpec, Location, Packet, TcpFlags};

/// The interface between the model checker and an end host.
///
/// A host has up to three kinds of transitions: `send` (emit one of the
/// currently-relevant packets, gated by [`HostModel::can_send`]), `receive`
/// (consume a delivered packet, possibly generating replies) and `move`
/// (relocate, for mobile hosts). The packets a host *sends* are chosen by the
/// model checker from the relevant packets discovered through symbolic
/// execution; the host model only accounts for budgets and produces replies.
///
/// `Send + Sync` is required because system states (which own the host
/// models) migrate between the worker threads of the parallel search.
pub trait HostModel: Send + Sync {
    /// A short name used in traces.
    fn name(&self) -> &str;

    /// The host's identity.
    fn id(&self) -> HostId;

    /// The MAC/IP/location description of this host.
    fn spec(&self) -> HostSpec;

    /// Where the host is currently attached (mobile hosts move).
    fn location(&self) -> Location;

    /// True if the host's `send` transition is currently enabled.
    fn can_send(&self) -> bool;

    /// True if delivering a packet to this host could ever make it inject
    /// reply packets into the network. Hosts that merely absorb traffic
    /// (e.g. a client without echo enabled) return `false`, which lets the
    /// model checker's partial-order reduction treat their `receive`
    /// transition as a purely host-local step. The default is `true` — the
    /// conservative answer — so custom host models stay sound without
    /// opting in.
    fn may_reply(&self) -> bool {
        true
    }

    /// True if receiving a packet can change whether (or what) this host can
    /// send — e.g. the burst-credit replenishment of [`SendBudget`], where a
    /// delivery re-enables a previously exhausted sender. Paired with
    /// [`HostModel::may_reply`] by the partial-order reduction: a receive
    /// that neither replies nor replenishes sending is invisible to every
    /// other transition. Defaults to `true` (conservative).
    fn receive_replenishes_sends(&self) -> bool {
        true
    }

    /// Accounts for one sent packet (called when the model checker executes a
    /// `send` transition for this host).
    fn note_sent(&mut self, packet: &Packet);

    /// Delivers a packet to the host. Replies (if any) are returned; the
    /// caller assigns their provenance ids via `alloc_id`.
    fn receive(&mut self, packet: &Packet, alloc_id: &mut dyn FnMut() -> u64) -> Vec<Packet>;

    /// Locations this host could move to (empty for stationary hosts).
    fn move_targets(&self) -> Vec<Location>;

    /// Relocates the host (only meaningful if [`HostModel::move_targets`] is
    /// non-empty).
    fn apply_move(&mut self, to: Location);

    /// Number of packets sent so far.
    fn sent_count(&self) -> u32;

    /// Number of packets received so far.
    fn received_count(&self) -> u32;

    /// Clones the host model (hosts are part of the explored system state).
    fn clone_host(&self) -> Box<dyn HostModel>;

    /// Absorbs the host state into the system fingerprint.
    fn fingerprint(&self, hasher: &mut Fnv64);
}

impl Clone for Box<dyn HostModel> {
    fn clone(&self) -> Self {
        self.clone_host()
    }
}

/// Budget configuration shared by the provided host models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendBudget {
    /// Maximum number of packets this host may send in total (`C` in the
    /// paper's default client model). `0` means the host never initiates.
    pub max_sends: u32,
    /// Maximum number of outstanding packets (the PKT-SEQ burst bound).
    /// `None` disables the burst limit (full search).
    pub max_burst: Option<u32>,
}

impl SendBudget {
    /// A host that never sends.
    pub const SILENT: SendBudget = SendBudget {
        max_sends: 0,
        max_burst: None,
    };

    /// A host that may send `n` packets with no burst limit.
    pub fn sends(n: u32) -> Self {
        SendBudget {
            max_sends: n,
            max_burst: None,
        }
    }

    /// A host that may send `n` packets with at most `burst` outstanding.
    pub fn sends_with_burst(n: u32, burst: u32) -> Self {
        SendBudget {
            max_sends: n,
            max_burst: Some(burst),
        }
    }
}

/// The default client model.
#[derive(Debug, Clone)]
pub struct ClientHost {
    spec: HostSpec,
    location: Location,
    budget: SendBudget,
    sent: u32,
    received: u32,
    /// Remaining burst credit (only meaningful when a burst limit is set).
    burst_credit: u32,
    /// If true, the host answers received layer-2 pings with a reply packet
    /// (the behaviour of host B in the Section 7 workload).
    echo_l2_pings: bool,
}

impl ClientHost {
    /// Creates a client at its topology-declared location.
    pub fn new(spec: HostSpec, budget: SendBudget) -> Self {
        let burst_credit = budget.max_burst.unwrap_or(u32::MAX);
        ClientHost {
            spec,
            location: spec.location,
            budget,
            sent: 0,
            received: 0,
            burst_credit,
            echo_l2_pings: false,
        }
    }

    /// Enables replying to received layer-2 pings (builder style).
    pub fn with_echo(mut self) -> Self {
        self.echo_l2_pings = true;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> SendBudget {
        self.budget
    }
}

impl HostModel for ClientHost {
    fn name(&self) -> &str {
        if self.echo_l2_pings {
            "echo-client"
        } else {
            "client"
        }
    }

    fn id(&self) -> HostId {
        self.spec.id
    }

    fn spec(&self) -> HostSpec {
        self.spec
    }

    fn location(&self) -> Location {
        self.location
    }

    fn can_send(&self) -> bool {
        if self.sent >= self.budget.max_sends {
            return false;
        }
        if self.budget.max_burst.is_some() && self.burst_credit == 0 {
            return false;
        }
        true
    }

    fn note_sent(&mut self, _packet: &Packet) {
        self.sent += 1;
        if self.budget.max_burst.is_some() {
            self.burst_credit = self.burst_credit.saturating_sub(1);
        }
    }

    fn may_reply(&self) -> bool {
        self.echo_l2_pings
    }

    fn receive_replenishes_sends(&self) -> bool {
        self.budget.max_burst.is_some()
    }

    fn receive(&mut self, packet: &Packet, alloc_id: &mut dyn FnMut() -> u64) -> Vec<Packet> {
        self.received += 1;
        // Default behaviour from Section 4: every received packet replenishes
        // one unit of burst credit.
        if let Some(limit) = self.budget.max_burst {
            self.burst_credit = (self.burst_credit + 1).min(limit);
        }
        if self.echo_l2_pings
            && packet.eth_type == EthType::L2Ping
            && packet.dst_mac == self.spec.mac
        {
            let mut reply = packet.reply_template(alloc_id());
            reply.src_mac = self.spec.mac;
            return vec![reply];
        }
        Vec::new()
    }

    fn move_targets(&self) -> Vec<Location> {
        Vec::new()
    }

    fn apply_move(&mut self, _to: Location) {
        panic!("ClientHost cannot move; use MobileHost");
    }

    fn sent_count(&self) -> u32 {
        self.sent
    }

    fn received_count(&self) -> u32 {
        self.received
    }

    fn clone_host(&self) -> Box<dyn HostModel> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str("client");
        self.spec.id.fingerprint(hasher);
        self.location.fingerprint(hasher);
        hasher.write_u32(self.sent);
        hasher.write_u32(self.received);
        hasher.write_u32(self.burst_credit);
        hasher.write_bool(self.echo_l2_pings);
    }
}

/// A TCP-aware server replica (the load-balancer backend).
#[derive(Debug, Clone)]
pub struct ServerHost {
    spec: HostSpec,
    received: u32,
    replies_sent: u32,
    /// The virtual IP this server also answers for (load-balanced services
    /// receive traffic addressed to the VIP).
    virtual_ip: Option<nice_openflow::NwAddr>,
}

impl ServerHost {
    /// Creates a server.
    pub fn new(spec: HostSpec) -> Self {
        ServerHost {
            spec,
            received: 0,
            replies_sent: 0,
            virtual_ip: None,
        }
    }

    /// Makes the server answer traffic addressed to `vip` as well as its own
    /// address (builder style).
    pub fn with_virtual_ip(mut self, vip: nice_openflow::NwAddr) -> Self {
        self.virtual_ip = Some(vip);
        self
    }

    /// Number of replies generated.
    pub fn replies_sent(&self) -> u32 {
        self.replies_sent
    }

    fn addressed_to_me(&self, packet: &Packet) -> bool {
        packet.dst_ip == self.spec.ip || Some(packet.dst_ip) == self.virtual_ip
    }
}

impl HostModel for ServerHost {
    fn name(&self) -> &str {
        "server"
    }

    fn id(&self) -> HostId {
        self.spec.id
    }

    fn spec(&self) -> HostSpec {
        self.spec
    }

    fn location(&self) -> Location {
        self.spec.location
    }

    fn can_send(&self) -> bool {
        false // Servers only react.
    }

    fn note_sent(&mut self, _packet: &Packet) {}

    fn receive(&mut self, packet: &Packet, alloc_id: &mut dyn FnMut() -> u64) -> Vec<Packet> {
        self.received += 1;
        if !packet.is_tcp() || !self.addressed_to_me(packet) {
            return Vec::new();
        }
        let mut reply = packet.reply_template(alloc_id());
        reply.src_mac = self.spec.mac;
        // Answer from the address the client talked to (VIP-preserving).
        reply.src_ip = packet.dst_ip;
        reply.tcp_flags = if packet.tcp_flags.is_syn() {
            TcpFlags::SYN_ACK
        } else {
            TcpFlags::ACK
        };
        self.replies_sent += 1;
        vec![reply]
    }

    fn move_targets(&self) -> Vec<Location> {
        Vec::new()
    }

    fn apply_move(&mut self, _to: Location) {
        panic!("ServerHost cannot move");
    }

    fn sent_count(&self) -> u32 {
        self.replies_sent
    }

    fn received_count(&self) -> u32 {
        self.received
    }

    fn clone_host(&self) -> Box<dyn HostModel> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str("server");
        self.spec.id.fingerprint(hasher);
        hasher.write_u32(self.received);
        hasher.write_u32(self.replies_sent);
    }
}

/// A host that can move between attachment points (Section 2.2.3's "mobile
/// host" refinement); the trigger for BUG-I.
#[derive(Debug, Clone)]
pub struct MobileHost {
    inner: ClientHost,
    /// Locations the host may move to (typically the free ports of other
    /// switches).
    targets: Vec<Location>,
    /// Maximum number of moves to explore (keeps the state space finite).
    max_moves: u32,
    moves_done: u32,
}

impl MobileHost {
    /// Creates a mobile host wrapping the default client behaviour.
    pub fn new(spec: HostSpec, budget: SendBudget, targets: Vec<Location>) -> Self {
        MobileHost {
            inner: ClientHost::new(spec, budget),
            targets,
            max_moves: 1,
            moves_done: 0,
        }
    }

    /// Enables echoing of layer-2 pings (builder style).
    pub fn with_echo(mut self) -> Self {
        self.inner = self.inner.with_echo();
        self
    }

    /// Sets the maximum number of moves (builder style).
    pub fn with_max_moves(mut self, max_moves: u32) -> Self {
        self.max_moves = max_moves;
        self
    }

    /// Number of moves performed so far.
    pub fn moves_done(&self) -> u32 {
        self.moves_done
    }
}

impl HostModel for MobileHost {
    fn name(&self) -> &str {
        "mobile-host"
    }

    fn id(&self) -> HostId {
        self.inner.id()
    }

    fn spec(&self) -> HostSpec {
        self.inner.spec()
    }

    fn location(&self) -> Location {
        self.inner.location
    }

    fn can_send(&self) -> bool {
        self.inner.can_send()
    }

    fn note_sent(&mut self, packet: &Packet) {
        self.inner.note_sent(packet);
    }

    fn may_reply(&self) -> bool {
        self.inner.may_reply()
    }

    fn receive_replenishes_sends(&self) -> bool {
        self.inner.receive_replenishes_sends()
    }

    fn receive(&mut self, packet: &Packet, alloc_id: &mut dyn FnMut() -> u64) -> Vec<Packet> {
        self.inner.receive(packet, alloc_id)
    }

    fn move_targets(&self) -> Vec<Location> {
        if self.moves_done >= self.max_moves {
            return Vec::new();
        }
        self.targets
            .iter()
            .copied()
            .filter(|&t| t != self.inner.location)
            .collect()
    }

    fn apply_move(&mut self, to: Location) {
        assert!(
            self.move_targets().contains(&to),
            "move target {to} is not currently allowed"
        );
        self.inner.location = to;
        self.moves_done += 1;
    }

    fn sent_count(&self) -> u32 {
        self.inner.sent_count()
    }

    fn received_count(&self) -> u32 {
        self.inner.received_count()
    }

    fn clone_host(&self) -> Box<dyn HostModel> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str("mobile");
        self.inner.fingerprint(hasher);
        hasher.write_u32(self.moves_done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_openflow::{MacAddr, NwAddr, PortId, SwitchId, Topology};

    fn fp(h: &dyn HostModel) -> u64 {
        let mut hasher = Fnv64::new();
        h.fingerprint(&mut hasher);
        hasher.finish()
    }

    fn spec(id: u32) -> HostSpec {
        let topo = Topology::linear_two_switches();
        *topo.host(HostId(id)).unwrap()
    }

    #[test]
    fn send_budget_constructors() {
        assert_eq!(SendBudget::SILENT.max_sends, 0);
        assert_eq!(SendBudget::sends(3).max_burst, None);
        assert_eq!(SendBudget::sends_with_burst(3, 1).max_burst, Some(1));
    }

    #[test]
    fn client_send_budget_is_enforced() {
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let mut client = ClientHost::new(spec(1), SendBudget::sends(2));
        assert!(client.can_send());
        client.note_sent(&pkt);
        assert!(client.can_send());
        client.note_sent(&pkt);
        assert!(!client.can_send());
        assert_eq!(client.sent_count(), 2);
        assert_eq!(client.budget().max_sends, 2);
    }

    #[test]
    fn burst_counter_replenishes_on_receive() {
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let mut client = ClientHost::new(spec(1), SendBudget::sends_with_burst(5, 1));
        assert!(client.can_send());
        client.note_sent(&pkt);
        assert!(!client.can_send(), "burst credit exhausted");
        let mut next_id = 100u64;
        let mut alloc = || {
            next_id += 1;
            next_id
        };
        let reply = Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        client.receive(&reply, &mut alloc);
        assert!(client.can_send(), "receive replenished one credit");
        assert_eq!(client.received_count(), 1);
    }

    #[test]
    fn echo_client_replies_to_pings_addressed_to_it() {
        let mut echo = ClientHost::new(spec(2), SendBudget::SILENT).with_echo();
        assert_eq!(echo.name(), "echo-client");
        assert!(!echo.can_send());
        let mut next_id = 10u64;
        let mut alloc = || {
            next_id += 1;
            next_id
        };
        let ping = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 3);
        let replies = echo.receive(&ping, &mut alloc);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].dst_mac, MacAddr::for_host(1));
        assert_eq!(replies[0].src_mac, MacAddr::for_host(2));
        assert_eq!(replies[0].payload, 3);
        assert_eq!(replies[0].id.0, 11);
        // A ping addressed elsewhere is absorbed silently.
        let other = Packet::l2_ping(2, MacAddr::for_host(1), MacAddr::for_host(9), 0);
        assert!(echo.receive(&other, &mut alloc).is_empty());
    }

    #[test]
    fn plain_client_does_not_echo() {
        let mut client = ClientHost::new(spec(2), SendBudget::SILENT);
        let mut alloc = || 1;
        let ping = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        assert!(client.receive(&ping, &mut alloc).is_empty());
        assert_eq!(client.name(), "client");
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn client_cannot_move() {
        let mut client = ClientHost::new(spec(1), SendBudget::SILENT);
        client.apply_move(Location {
            switch: SwitchId(2),
            port: PortId(3),
        });
    }

    #[test]
    fn server_answers_tcp_to_its_address_or_vip() {
        let vip = NwAddr::from_octets(10, 0, 0, 100);
        let mut server = ServerHost::new(spec(2)).with_virtual_ip(vip);
        let mut next_id = 0u64;
        let mut alloc = || {
            next_id += 1;
            next_id
        };
        let syn = Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            vip,
            1000,
            80,
            TcpFlags::SYN,
            0,
        );
        let replies = server.receive(&syn, &mut alloc);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].tcp_flags.is_syn() && replies[0].tcp_flags.is_ack());
        assert_eq!(replies[0].src_ip, vip, "reply keeps the VIP as source");
        // Data packet gets a plain ACK.
        let data = Packet::tcp(
            2,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            1000,
            80,
            TcpFlags::ACK,
            1,
        );
        let replies = server.receive(&data, &mut alloc);
        assert_eq!(replies.len(), 1);
        assert!(!replies[0].tcp_flags.is_syn());
        assert_eq!(server.replies_sent(), 2);
        // Traffic to an unrelated address is ignored.
        let misdirected = Packet::tcp(
            3,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::from_octets(9, 9, 9, 9),
            1000,
            80,
            TcpFlags::SYN,
            0,
        );
        assert!(server.receive(&misdirected, &mut alloc).is_empty());
        // Non-TCP traffic is ignored too.
        let ping = Packet::l2_ping(4, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        assert!(server.receive(&ping, &mut alloc).is_empty());
        assert!(!server.can_send());
        assert!(server.move_targets().is_empty());
    }

    #[test]
    fn mobile_host_moves_once_by_default() {
        let targets = vec![Location {
            switch: SwitchId(2),
            port: PortId(3),
        }];
        let mut host = MobileHost::new(spec(2), SendBudget::SILENT, targets.clone()).with_echo();
        assert_eq!(host.name(), "mobile-host");
        assert_eq!(host.move_targets(), targets);
        let before = host.location();
        host.apply_move(targets[0]);
        assert_ne!(host.location(), before);
        assert_eq!(host.location(), targets[0]);
        assert_eq!(host.moves_done(), 1);
        // Default max_moves = 1: no further moves offered.
        assert!(host.move_targets().is_empty());
    }

    #[test]
    fn mobile_host_can_allow_more_moves() {
        let targets = vec![
            Location {
                switch: SwitchId(2),
                port: PortId(3),
            },
            Location {
                switch: SwitchId(1),
                port: PortId(3),
            },
        ];
        let mut host = MobileHost::new(spec(1), SendBudget::SILENT, targets).with_max_moves(2);
        host.apply_move(Location {
            switch: SwitchId(2),
            port: PortId(3),
        });
        assert_eq!(host.move_targets().len(), 1, "current location excluded");
        host.apply_move(Location {
            switch: SwitchId(1),
            port: PortId(3),
        });
        assert!(host.move_targets().is_empty());
    }

    #[test]
    #[should_panic(expected = "not currently allowed")]
    fn illegal_move_rejected() {
        let mut host = MobileHost::new(spec(1), SendBudget::SILENT, vec![]);
        host.apply_move(Location {
            switch: SwitchId(9),
            port: PortId(9),
        });
    }

    #[test]
    fn mobile_echo_still_replies() {
        let targets = vec![Location {
            switch: SwitchId(2),
            port: PortId(3),
        }];
        let mut host = MobileHost::new(spec(2), SendBudget::SILENT, targets).with_echo();
        let mut alloc = || 50;
        let ping = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let replies = host.receive(&ping, &mut alloc);
        assert_eq!(replies.len(), 1);
        assert_eq!(host.received_count(), 1);
        assert_eq!(host.sent_count(), 0);
        assert!(!host.can_send());
    }

    #[test]
    fn fingerprints_track_dynamic_state() {
        let mut client = ClientHost::new(spec(1), SendBudget::sends(1));
        let baseline = fp(&client);
        let cloned = client.clone_host();
        assert_eq!(fp(cloned.as_ref()), baseline);
        client.note_sent(&Packet::l2_ping(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            0,
        ));
        assert_ne!(fp(&client), baseline);

        let targets = vec![Location {
            switch: SwitchId(2),
            port: PortId(3),
        }];
        let mut mobile = MobileHost::new(spec(2), SendBudget::SILENT, targets.clone());
        let before = fp(&mobile);
        mobile.apply_move(targets[0]);
        assert_ne!(fp(&mobile), before);
        assert_eq!(mobile.spec().id, HostId(2));
    }
}
