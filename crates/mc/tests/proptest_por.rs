//! Property-based test pinning the partial-order reduction's independence
//! relation: whenever two enabled transitions have disjoint footprints
//! (`independent` says they commute), executing them in either order from
//! the same state must (a) leave the other transition enabled and (b) reach
//! states with identical fingerprints.
//!
//! States are sampled by driving a deterministic random walk from the
//! initial state of a bundled scenario, so the pairs checked include
//! mid-search configurations with packets in flight, controller backlogs and
//! partially learned flow tables.

use nice_mc::scenario::CheckerConfig;
use nice_mc::testutil;
use nice_mc::transition::{enabled_transitions, execute, DiscoveryMemo};
use nice_mc::{independent, FailoverStaleness, FaultPlan, Scenario, SystemState, Transition};
use proptest::prelude::*;

/// The hub workload with every fault class armed: lossy channels, switch
/// crashes, warm controller failover and Byzantine message mutations, under
/// a shared budget of 2. Used to sample states whose enabled sets mix fault
/// and non-fault transitions.
fn faulty_hub_scenario(pings: u32) -> Scenario {
    testutil::hub_ping_scenario(pings).with_fault_plan(
        FaultPlan::lossy(2)
            .with_switch_crash()
            .with_failover(FailoverStaleness::Warm)
            .with_of_mutations(),
    )
}

/// Walks `steps` pseudo-random transitions from the initial state and
/// returns the reached state (deterministic in `seed`).
fn random_state(
    scenario: &Scenario,
    config: &CheckerConfig,
    seed: u64,
    steps: usize,
) -> SystemState {
    let mut state = SystemState::initial(scenario);
    let mut memo = DiscoveryMemo::default();
    let mut events = Vec::new();
    let mut rng = seed | 1;
    for _ in 0..steps {
        let enabled = enabled_transitions(&state, scenario, config);
        if enabled.is_empty() {
            break;
        }
        // SplitMix-ish step, deterministic and cheap.
        rng = rng
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0xbf58_476d_1ce4_e5b9);
        let pick = (rng >> 33) as usize % enabled.len();
        let transition = enabled[pick].clone();
        execute(
            &mut state,
            &transition,
            scenario,
            config,
            &mut memo,
            &mut events,
        );
        events.clear();
    }
    state
}

/// Checks every independent enabled pair of `state` for commutation.
/// Returns the number of independent pairs exercised.
fn check_commutation(
    state: &SystemState,
    scenario: &Scenario,
    config: &CheckerConfig,
) -> Result<usize, String> {
    let enabled = enabled_transitions(state, scenario, config);
    let mut checked = 0;
    for i in 0..enabled.len() {
        for j in (i + 1)..enabled.len() {
            let (a, b) = (&enabled[i], &enabled[j]);
            if !independent(a, b, state, scenario) {
                continue;
            }
            checked += 1;
            let run = |first: &Transition, second: &Transition| -> Result<u64, String> {
                let mut s = state.clone();
                let mut memo = DiscoveryMemo::default();
                let mut events = Vec::new();
                execute(&mut s, first, scenario, config, &mut memo, &mut events);
                let still_enabled = enabled_transitions(&s, scenario, config)
                    .iter()
                    .any(|t| t == second);
                if !still_enabled {
                    return Err(format!(
                        "{first} disabled the supposedly independent {second}"
                    ));
                }
                execute(&mut s, second, scenario, config, &mut memo, &mut events);
                Ok(s.fingerprint())
            };
            let ab = run(a, b)?;
            let ba = run(b, a)?;
            if ab != ba {
                return Err(format!(
                    "independent pair does not commute: [{a}] vs [{b}] ({ab:#x} != {ba:#x})"
                ));
            }
        }
    }
    Ok(checked)
}

proptest! {
    /// Footprint-disjoint pairs commute on the scripted hub workload.
    #[test]
    fn independent_pairs_commute_on_hub(seed in 0u64..1_000_000, steps in 0usize..14) {
        let scenario = testutil::hub_ping_scenario(2);
        let config = CheckerConfig::default();
        let state = random_state(&scenario, &config, seed, steps);
        let outcome = check_commutation(&state, &scenario, &config);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Footprint-disjoint pairs commute under symbolic packet discovery,
    /// where send enabledness depends on the controller state.
    #[test]
    fn independent_pairs_commute_under_discovery(seed in 0u64..1_000_000, steps in 0usize..10) {
        let scenario = testutil::discovery_scenario(
            Box::new(testutil::DstOnlyLearningApp::default()),
            1,
        );
        let config = CheckerConfig::default();
        let state = random_state(&scenario, &config, seed, steps);
        let outcome = check_commutation(&state, &scenario, &config);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Fault-injection transitions (channel faults, crashes, reconnects,
    /// failover, message mutations) obey the same independence relation:
    /// any footprint-disjoint pair — fault/fault or fault/non-fault —
    /// commutes both ways to the same fingerprint.
    #[test]
    fn independent_pairs_commute_under_fault_injection(
        seed in 0u64..1_000_000,
        steps in 0usize..14,
    ) {
        let scenario = faulty_hub_scenario(2);
        let config = CheckerConfig::default().with_fault_injection(true);
        let state = random_state(&scenario, &config, seed, steps);
        let outcome = check_commutation(&state, &scenario, &config);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Fine-grained (per-port) packet processing obeys the same relation.
    #[test]
    fn independent_pairs_commute_with_fine_grained_processing(
        seed in 0u64..1_000_000,
        steps in 0usize..12,
    ) {
        let scenario = testutil::hub_ping_scenario(2);
        let config = CheckerConfig::generic_baseline();
        let state = random_state(&scenario, &config, seed, steps);
        let outcome = check_commutation(&state, &scenario, &config);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}

/// Deterministic smoke check that the property is not vacuous: the walk
/// actually produces states with independent pairs to exercise.
#[test]
fn commutation_property_is_not_vacuous() {
    let scenario = testutil::hub_ping_scenario(2);
    let config = CheckerConfig::default();
    let mut total = 0;
    for seed in 0..40 {
        for steps in [4, 8, 12] {
            let state = random_state(&scenario, &config, seed, steps);
            total += check_commutation(&state, &scenario, &config).expect("commutation");
        }
    }
    assert!(
        total > 0,
        "no independent pairs were ever generated; the property is vacuous"
    );
}

/// The fault leg is not vacuous either: the walk reaches states with
/// independent (fault, non-fault) pairs, and they commute.
#[test]
fn fault_commutation_covers_mixed_pairs() {
    let scenario = faulty_hub_scenario(2);
    let config = CheckerConfig::default().with_fault_injection(true);
    let mut mixed = 0;
    for seed in 0..60 {
        for steps in [2, 5, 8, 11] {
            let state = random_state(&scenario, &config, seed, steps);
            check_commutation(&state, &scenario, &config).expect("commutation under faults");
            let enabled = enabled_transitions(&state, &scenario, &config);
            for i in 0..enabled.len() {
                for j in (i + 1)..enabled.len() {
                    let (a, b) = (&enabled[i], &enabled[j]);
                    if independent(a, b, &state, &scenario)
                        && (a.fault_counter_index().is_some() != b.fault_counter_index().is_some())
                    {
                        mixed += 1;
                    }
                }
            }
        }
    }
    assert!(
        mixed > 0,
        "no independent (fault, non-fault) pairs were ever generated; the fault leg is vacuous"
    );
}
