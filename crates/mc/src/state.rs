//! The global system state explored by the model checker.
//!
//! Following Section 2.1, the system state is the composition of the
//! component states — the controller program, every switch, every end host —
//! plus the contents of the FIFO channels between them. The state also
//! carries the per-client caches of *relevant packets* (`client.packets` in
//! Figure 5) and of discovered statistics replies, because those determine
//! which transitions are enabled and are therefore part of the client
//! component state.
//!
//! ## Copy-on-write representation
//!
//! Every large component — the controller runtime, each switch (and its flow
//! table), each host model, every FIFO channel, and the discovery memo
//! tables — sits behind an [`Arc`]. Cloning a `SystemState` therefore costs
//! O(number of components), not O(total state size): it bumps reference
//! counts. A component is deep-copied only at the first mutation after a
//! clone, via [`Arc::make_mut`] inside the `*_mut` accessors, so executing a
//! transition pays only for the components that transition actually touches.
//! This is what makes storing full frontier states affordable and what lets
//! checkpoint snapshots (see [`crate::checker`]) be taken essentially for
//! free. `Arc` (not `Rc`) is used throughout so states can move between the
//! worker threads of the parallel search.

use crate::scenario::Scenario;
use nice_controller::ControllerRuntime;
use nice_hosts::HostModel;
use nice_openflow::{
    FifoChannel, Fingerprint, Fnv64, HostId, Location, OfMessage, Packet, PacketId, PortId,
    PortStatsEntry, Switch, SwitchId, Topology,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

/// A component paired with a lazily computed fingerprint digest.
///
/// Because components are copy-on-write, a component that was not written
/// since its digest was computed still has that digest — so the state
/// fingerprint absorbs the cached 64-bit digest instead of re-hashing the
/// component's whole contents. The `*_mut` accessors reset the cache after
/// un-sharing (cloning an un-mutated component keeps the digest, which is
/// exactly right).
#[derive(Clone)]
struct Cached<T> {
    value: T,
    digest: OnceLock<u64>,
}

/// Relevant packets per controller-state fingerprint, per host.
type RelevantPacketsTable = BTreeMap<HostId, BTreeMap<u64, Vec<Packet>>>;
/// Discovered statistics replies per controller-state fingerprint, per
/// switch.
type DiscoveredStatsTable = BTreeMap<SwitchId, BTreeMap<u64, Vec<Vec<PortStatsEntry>>>>;

impl<T: Default> Default for Cached<T> {
    fn default() -> Self {
        Cached::new(T::default())
    }
}

impl<T> Cached<T> {
    fn new(value: T) -> Self {
        Cached {
            value,
            digest: OnceLock::new(),
        }
    }

    /// The component's digest, computing (and caching) it on first use.
    /// `seed` provides domain separation between component types.
    fn digest_with(&self, seed: u64, write: impl FnOnce(&T, &mut Fnv64)) -> u64 {
        *self.digest.get_or_init(|| {
            let mut h = Fnv64::with_seed(seed);
            write(&self.value, &mut h);
            h.finish()
        })
    }

    /// Mutable access to the component, invalidating the cached digest.
    fn value_mut(&mut self) -> &mut T {
        self.digest = OnceLock::new();
        &mut self.value
    }
}

/// The complete state of the modelled system.
///
/// Cloning is cheap (copy-on-write, see the module docs); mutation goes
/// through the `*_mut` accessors which un-share only the touched component.
#[derive(Clone)]
pub struct SystemState {
    controller: Arc<Cached<ControllerRuntime>>,
    switches: BTreeMap<SwitchId, Arc<Cached<Switch>>>,
    hosts: BTreeMap<HostId, Arc<Cached<Box<dyn HostModel>>>>,
    /// Switch → controller OpenFlow channels (reliable, in order).
    sw_to_ctrl: BTreeMap<SwitchId, Arc<Cached<FifoChannel<OfMessage>>>>,
    /// Controller → switch OpenFlow channels (reliable, in order).
    ctrl_to_sw: BTreeMap<SwitchId, Arc<Cached<FifoChannel<OfMessage>>>>,
    /// Data-plane ingress channels: packets waiting to be processed by a
    /// switch, keyed by the port they will arrive on.
    ingress: BTreeMap<(SwitchId, PortId), Arc<Cached<FifoChannel<Packet>>>>,
    /// Packets in flight towards a host (delivered when the host's `receive`
    /// transition runs).
    host_inbox: BTreeMap<HostId, Arc<Cached<FifoChannel<Packet>>>>,
    /// Switches with an outstanding statistics request from the controller.
    pending_stats: BTreeSet<SwitchId>,
    /// Per-host relevant packets, keyed by controller-state fingerprint
    /// (`client.packets` in Figure 5). Written only by `discover_packets`,
    /// so the whole table shares one copy-on-write allocation.
    relevant_packets: Arc<RelevantPacketsTable>,
    /// Per-switch discovered replies, keyed by controller-state fingerprint.
    discovered_stats: Arc<DiscoveredStatsTable>,
    /// Provenance-id allocator for injected packets.
    next_packet_id: u64,
    /// Monotonic sequence used to remember when each controller→switch
    /// channel last received a message (consumed by the UNUSUAL strategy).
    of_enqueue_seq: u64,
    last_of_enqueue: BTreeMap<SwitchId, u64>,
    /// Remaining fault-injection budget (starts at the scenario's
    /// [`FaultPlan`](crate::faults::FaultPlan) budget; each injected fault
    /// consumes one unit).
    fault_budget: u32,
    /// Switches currently crashed (flow table wiped, channels down) and
    /// awaiting a reconnect.
    crashed: BTreeSet<SwitchId>,
    /// The static topology (shared, not part of the mutable state).
    topology: Arc<Topology>,
}

/// Domain-separation seed of the controller digest (`state(ctrl)` in
/// Figure 5 — also the key of the relevant-packet caches).
const CTRL_FP_SEED: u64 = 0xc0_11;
/// Domain-separation seed of per-switch digests.
const SWITCH_FP_SEED: u64 = 0x5_317c;
/// Domain-separation seed of per-host digests.
const HOST_FP_SEED: u64 = 0x40_57;
/// Domain-separation seed of per-channel digests (the channel's *slot* in
/// the combined fingerprint provides the per-kind separation).
const CHANNEL_FP_SEED: u64 = 0xc4a_221;
/// Domain-separation seed of the fault-state digest (remaining budget plus
/// the crashed-switch set).
const FAULTS_FP_SEED: u64 = 0xfa_017;

/// Slot tags distinguishing component kinds in the combined fingerprint.
mod slot {
    pub const CONTROLLER: u64 = 1;
    pub const SWITCH: u64 = 2;
    pub const HOST: u64 = 3;
    pub const SW_TO_CTRL: u64 = 4;
    pub const CTRL_TO_SW: u64 = 5;
    pub const INGRESS: u64 = 6;
    pub const HOST_INBOX: u64 = 7;
    pub const PENDING_STATS: u64 = 8;
    pub const RELEVANT_PACKETS: u64 = 9;
    pub const DISCOVERED_STATS: u64 = 10;
    pub const FAULTS: u64 = 11;
}

/// Mixes a component digest with its slot (kind + key) so the combined
/// XOR cannot confuse equal digests sitting in different places.
fn mix(tag: u64, key: u64, digest: u64) -> u64 {
    let mut h = Fnv64::with_seed(tag);
    h.write_u64(key);
    h.write_u64(digest);
    h.finish()
}

/// The cached digest of one channel, recomputed only if the channel was
/// mutated since it was last fingerprinted.
fn channel_digest<T: Fingerprint>(ch: &Cached<FifoChannel<T>>) -> u64 {
    ch.digest_with(CHANNEL_FP_SEED, |c, h| c.fingerprint(h))
}

impl std::fmt::Debug for SystemState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemState")
            .field("controller", &self.controller.value)
            .field("switches", &self.switches.keys().collect::<Vec<_>>())
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .field("pending_stats", &self.pending_stats)
            .finish()
    }
}

impl SystemState {
    /// Builds the initial state of a scenario: switches and hosts at their
    /// topology-declared attachments, empty channels, and the controller
    /// having already processed every switch's `switch_join` (switches are
    /// connected before testing starts, as in the paper's experiments).
    pub fn initial(scenario: &Scenario) -> SystemState {
        let topology = Arc::new(scenario.topology.clone());
        let mut controller = ControllerRuntime::new(scenario.app.clone_app());

        let mut switches = BTreeMap::new();
        let mut sw_to_ctrl = BTreeMap::new();
        let mut ctrl_to_sw = BTreeMap::new();
        let mut ingress = BTreeMap::new();
        for spec in topology.switches() {
            let switch = Switch::with_config(spec.id, spec.ports.clone(), scenario.switch_config);
            for &port in &spec.ports {
                ingress.insert(
                    (spec.id, port),
                    Arc::new(Cached::new(FifoChannel::with_faults(
                        scenario.fault_plan.channel_model_for(spec.id),
                    ))),
                );
            }
            sw_to_ctrl.insert(spec.id, Arc::new(Cached::new(FifoChannel::reliable())));
            ctrl_to_sw.insert(spec.id, Arc::new(Cached::new(FifoChannel::reliable())));
            switches.insert(spec.id, Arc::new(Cached::new(switch)));
        }

        let mut state = SystemState {
            controller: Arc::new(Cached::new(ControllerRuntime::new(
                scenario.app.clone_app(),
            ))),
            switches,
            hosts: BTreeMap::new(),
            sw_to_ctrl,
            ctrl_to_sw,
            ingress,
            host_inbox: BTreeMap::new(),
            pending_stats: BTreeSet::new(),
            relevant_packets: Arc::new(BTreeMap::new()),
            discovered_stats: Arc::new(BTreeMap::new()),
            next_packet_id: 1,
            of_enqueue_seq: 0,
            last_of_enqueue: BTreeMap::new(),
            fault_budget: scenario.fault_plan.budget,
            crashed: BTreeSet::new(),
            topology,
        };

        // Deliver switch_join events synchronously during initialisation so
        // the controller starts with its per-switch state set up.
        let join_messages: Vec<OfMessage> = state
            .switches
            .values()
            .map(|sw| sw.value.join_message())
            .collect();
        for msg in join_messages {
            let produced = controller.handle_message(&msg);
            for (target, m) in produced {
                state.enqueue_to_switch(target, m);
            }
        }
        state.controller = Arc::new(Cached::new(controller));

        for host in &scenario.hosts {
            let id = host.id();
            state
                .host_inbox
                .insert(id, Arc::new(Cached::new(FifoChannel::reliable())));
            state
                .hosts
                .insert(id, Arc::new(Cached::new(host.clone_host())));
        }

        state
    }

    /// Clones this state with **no** structural sharing: every component is
    /// copied eagerly, reproducing the cost profile the checker had before
    /// the copy-on-write representation. Exists so benchmarks can compare
    /// the two; the search itself always uses the cheap [`Clone`].
    pub fn deep_clone(&self) -> SystemState {
        // `Cached::new` (rather than cloning the `Cached`) deliberately drops
        // the digest caches too: the pre-COW engine re-hashed the whole state
        // on every fingerprint, and this mode exists to reproduce that cost.
        SystemState {
            controller: Arc::new(Cached::new(self.controller.value.clone())),
            switches: self
                .switches
                .iter()
                .map(|(&id, sw)| (id, Arc::new(Cached::new(sw.value.clone()))))
                .collect(),
            hosts: self
                .hosts
                .iter()
                .map(|(&id, h)| (id, Arc::new(Cached::new(h.value.clone()))))
                .collect(),
            sw_to_ctrl: self
                .sw_to_ctrl
                .iter()
                .map(|(&id, ch)| (id, Arc::new(Cached::new(ch.value.clone()))))
                .collect(),
            ctrl_to_sw: self
                .ctrl_to_sw
                .iter()
                .map(|(&id, ch)| (id, Arc::new(Cached::new(ch.value.clone()))))
                .collect(),
            ingress: self
                .ingress
                .iter()
                .map(|(&key, ch)| (key, Arc::new(Cached::new(ch.value.clone()))))
                .collect(),
            host_inbox: self
                .host_inbox
                .iter()
                .map(|(&id, ch)| (id, Arc::new(Cached::new(ch.value.clone()))))
                .collect(),
            pending_stats: self.pending_stats.clone(),
            relevant_packets: Arc::new(self.relevant_packets.as_ref().clone()),
            discovered_stats: Arc::new(self.discovered_stats.as_ref().clone()),
            next_packet_id: self.next_packet_id,
            of_enqueue_seq: self.of_enqueue_seq,
            last_of_enqueue: self.last_of_enqueue.clone(),
            fault_budget: self.fault_budget,
            crashed: self.crashed.clone(),
            // The topology is immutable for the lifetime of a search; the
            // pre-COW representation shared it too.
            topology: Arc::clone(&self.topology),
        }
    }

    // ----- Component access -----

    /// The controller runtime.
    pub fn controller(&self) -> &ControllerRuntime {
        &self.controller.value
    }

    /// Mutable access to the controller runtime (un-shares it if the
    /// allocation is shared with other states).
    pub fn controller_mut(&mut self) -> &mut ControllerRuntime {
        Arc::make_mut(&mut self.controller).value_mut()
    }

    /// The switches, in id order.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchId, &Switch)> {
        self.switches.iter().map(|(&id, sw)| (id, &sw.value))
    }

    /// One switch.
    pub fn switch(&self, id: SwitchId) -> Option<&Switch> {
        self.switches.get(&id).map(|sw| &sw.value)
    }

    /// Mutable access to one switch (un-shares only that switch).
    pub fn switch_mut(&mut self, id: SwitchId) -> Option<&mut Switch> {
        self.switches
            .get_mut(&id)
            .map(|sw| Arc::make_mut(sw).value_mut())
    }

    /// The hosts, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = (HostId, &dyn HostModel)> {
        self.hosts.iter().map(|(&id, h)| (id, h.value.as_ref()))
    }

    /// One host.
    pub fn host(&self, id: HostId) -> Option<&dyn HostModel> {
        self.hosts.get(&id).map(|h| h.value.as_ref())
    }

    /// Mutable access to one host (un-shares only that host).
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut Box<dyn HostModel>> {
        self.hosts
            .get_mut(&id)
            .map(|h| Arc::make_mut(h).value_mut())
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The host currently attached at `(switch, port)`, taking mobility into
    /// account.
    pub fn host_at(&self, switch: SwitchId, port: PortId) -> Option<HostId> {
        self.hosts
            .iter()
            .find(|(_, h)| h.value.location() == Location { switch, port })
            .map(|(&id, _)| id)
    }

    // ----- Channels -----

    /// Enqueues an OpenFlow message from the controller towards a switch.
    pub fn enqueue_to_switch(&mut self, switch: SwitchId, msg: OfMessage) {
        if let OfMessage::StatsRequest { .. } = &msg {
            self.pending_stats.insert(switch);
        }
        self.of_enqueue_seq += 1;
        self.last_of_enqueue.insert(switch, self.of_enqueue_seq);
        Arc::make_mut(self.ctrl_to_sw.entry(switch).or_default())
            .value_mut()
            .push(msg);
    }

    /// Enqueues an OpenFlow message from a switch towards the controller.
    pub fn enqueue_to_controller(&mut self, switch: SwitchId, msg: OfMessage) {
        Arc::make_mut(self.sw_to_ctrl.entry(switch).or_default())
            .value_mut()
            .push(msg);
    }

    /// Enqueues a data packet on a switch ingress port. Packets towards a
    /// crashed switch are silently discarded — its links are down.
    pub fn enqueue_ingress(&mut self, switch: SwitchId, port: PortId, packet: Packet) {
        if self.crashed.contains(&switch) {
            return;
        }
        Arc::make_mut(self.ingress.entry((switch, port)).or_default())
            .value_mut()
            .push(packet);
    }

    /// Enqueues a packet for delivery to a host.
    pub fn enqueue_host(&mut self, host: HostId, packet: Packet) {
        Arc::make_mut(self.host_inbox.entry(host).or_default())
            .value_mut()
            .push(packet);
    }

    /// The controller→switch channel of a switch.
    pub fn ctrl_to_sw(&self, switch: SwitchId) -> Option<&FifoChannel<OfMessage>> {
        self.ctrl_to_sw.get(&switch).map(|ch| &ch.value)
    }

    /// Mutable controller→switch channel (un-shares only that channel).
    pub fn ctrl_to_sw_mut(&mut self, switch: SwitchId) -> Option<&mut FifoChannel<OfMessage>> {
        self.ctrl_to_sw
            .get_mut(&switch)
            .map(|ch| Arc::make_mut(ch).value_mut())
    }

    /// The switch→controller channel of a switch.
    pub fn sw_to_ctrl(&self, switch: SwitchId) -> Option<&FifoChannel<OfMessage>> {
        self.sw_to_ctrl.get(&switch).map(|ch| &ch.value)
    }

    /// Mutable switch→controller channel (un-shares only that channel).
    pub fn sw_to_ctrl_mut(&mut self, switch: SwitchId) -> Option<&mut FifoChannel<OfMessage>> {
        self.sw_to_ctrl
            .get_mut(&switch)
            .map(|ch| Arc::make_mut(ch).value_mut())
    }

    /// The ingress channel of `(switch, port)`.
    pub fn ingress(&self, switch: SwitchId, port: PortId) -> Option<&FifoChannel<Packet>> {
        self.ingress.get(&(switch, port)).map(|ch| &ch.value)
    }

    /// Mutable ingress channel (un-shares only that channel).
    pub fn ingress_mut(
        &mut self,
        switch: SwitchId,
        port: PortId,
    ) -> Option<&mut FifoChannel<Packet>> {
        self.ingress
            .get_mut(&(switch, port))
            .map(|ch| Arc::make_mut(ch).value_mut())
    }

    /// Ports of `switch` whose ingress channel currently holds packets.
    pub fn busy_ingress_ports(&self, switch: SwitchId) -> Vec<PortId> {
        self.ingress
            .iter()
            .filter(|((s, _), ch)| *s == switch && !ch.value.is_empty())
            .map(|((_, p), _)| *p)
            .collect()
    }

    /// The inbox channel of a host.
    pub fn host_inbox(&self, host: HostId) -> Option<&FifoChannel<Packet>> {
        self.host_inbox.get(&host).map(|ch| &ch.value)
    }

    /// Mutable inbox channel of a host (un-shares only that channel).
    pub fn host_inbox_mut(&mut self, host: HostId) -> Option<&mut FifoChannel<Packet>> {
        self.host_inbox
            .get_mut(&host)
            .map(|ch| Arc::make_mut(ch).value_mut())
    }

    /// True if any switch↔controller channel holds messages (used to drain
    /// the control plane under NO-DELAY).
    pub fn control_plane_busy(&self) -> bool {
        self.sw_to_ctrl.values().any(|c| !c.value.is_empty())
            || self.ctrl_to_sw.values().any(|c| !c.value.is_empty())
    }

    /// Switches whose controller→switch channel is non-empty, with the
    /// sequence number of the most recent enqueue (used by UNUSUAL).
    pub fn of_backlog(&self) -> Vec<(SwitchId, u64)> {
        self.ctrl_to_sw
            .iter()
            .filter(|(_, ch)| !ch.value.is_empty())
            .map(|(&sw, _)| (sw, self.last_of_enqueue.get(&sw).copied().unwrap_or(0)))
            .collect()
    }

    // ----- Discovery caches and statistics bookkeeping -----

    /// Allocates a fresh provenance id for an injected packet.
    pub fn alloc_packet_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Fingerprint of the controller state alone — the key of the
    /// relevant-packet cache (`state(ctrl)` in Figure 5). Cached until the
    /// controller is next mutated.
    pub fn controller_fingerprint(&self) -> u64 {
        self.controller
            .digest_with(CTRL_FP_SEED, |c, h| c.fingerprint(h))
    }

    /// The relevant packets cached for `host` in the current controller
    /// state, if discovery has run.
    pub fn relevant_packets(&self, host: HostId, ctrl_fp: u64) -> Option<&Vec<Packet>> {
        self.relevant_packets
            .get(&host)
            .and_then(|m| m.get(&ctrl_fp))
    }

    /// Stores the relevant packets for `host` under the given controller
    /// state.
    pub fn set_relevant_packets(&mut self, host: HostId, ctrl_fp: u64, packets: Vec<Packet>) {
        Arc::make_mut(&mut self.relevant_packets)
            .entry(host)
            .or_default()
            .insert(ctrl_fp, packets);
    }

    /// Discovered statistics replies for `switch` in the current controller
    /// state.
    pub fn discovered_stats(
        &self,
        switch: SwitchId,
        ctrl_fp: u64,
    ) -> Option<&Vec<Vec<PortStatsEntry>>> {
        self.discovered_stats
            .get(&switch)
            .and_then(|m| m.get(&ctrl_fp))
    }

    /// Stores discovered statistics replies.
    pub fn set_discovered_stats(
        &mut self,
        switch: SwitchId,
        ctrl_fp: u64,
        stats: Vec<Vec<PortStatsEntry>>,
    ) {
        Arc::make_mut(&mut self.discovered_stats)
            .entry(switch)
            .or_default()
            .insert(ctrl_fp, stats);
    }

    /// True if `switch` has an outstanding statistics request.
    pub fn stats_pending(&self, switch: SwitchId) -> bool {
        self.pending_stats.contains(&switch)
    }

    /// Clears the outstanding-statistics flag (a reply reached the
    /// controller).
    pub fn clear_stats_pending(&mut self, switch: SwitchId) {
        self.pending_stats.remove(&switch);
    }

    /// Switches with outstanding statistics requests.
    pub fn switches_awaiting_stats(&self) -> Vec<SwitchId> {
        self.pending_stats.iter().copied().collect()
    }

    // ----- Fault injection -----

    /// Remaining fault-injection budget.
    pub fn fault_budget(&self) -> u32 {
        self.fault_budget
    }

    /// Consumes one unit of the fault budget. Panics if the budget is
    /// exhausted — the checker only schedules fault transitions while the
    /// budget is positive.
    pub fn consume_fault_budget(&mut self) {
        assert!(self.fault_budget > 0, "fault budget exhausted");
        self.fault_budget -= 1;
    }

    /// True if `switch` is currently crashed.
    pub fn is_crashed(&self, switch: SwitchId) -> bool {
        self.crashed.contains(&switch)
    }

    /// Switches currently crashed, in id order.
    pub fn crashed_switches(&self) -> Vec<SwitchId> {
        self.crashed.iter().copied().collect()
    }

    /// Crashes a switch: the flow table and packet buffers are wiped (the
    /// switch restarts from factory state), every queued ingress packet is
    /// lost, the control channels go down (queued OpenFlow messages in both
    /// directions are lost), and a `switch_leave` is queued so the
    /// controller eventually observes the disconnect. The switch stays
    /// inert until [`SystemState::reconnect_switch`].
    pub fn crash_switch(&mut self, switch: SwitchId) {
        self.crashed.insert(switch);
        if let Some(sw) = self.switches.get_mut(&switch) {
            let fresh = Switch::with_config(switch, sw.value.ports.clone(), sw.value.config());
            *Arc::make_mut(sw).value_mut() = fresh;
        }
        let busy: Vec<PortId> = self.busy_ingress_ports(switch);
        for port in busy {
            if let Some(ch) = self.ingress_mut(switch, port) {
                while ch.pop().is_some() {}
            }
        }
        if let Some(ch) = self.sw_to_ctrl_mut(switch) {
            while ch.pop().is_some() {}
        }
        // An in-flight statistics request died with the channels.
        self.pending_stats.remove(&switch);
        if let Some(ch) = self.ctrl_to_sw_mut(switch) {
            ch.fail();
        }
        let leave = OfMessage::SwitchLeave { switch };
        self.enqueue_to_controller(switch, leave);
    }

    /// Reconnects a crashed switch: the control channel comes back up and
    /// the switch re-handshakes by queueing its `switch_join` — delivered
    /// asynchronously, so the checker explores every interleaving of the
    /// re-handshake with ordinary traffic.
    pub fn reconnect_switch(&mut self, switch: SwitchId) {
        self.crashed.remove(&switch);
        if let Some(ch) = self.ctrl_to_sw_mut(switch) {
            ch.restore();
        }
        if let Some(join) = self.switch(switch).map(|sw| sw.join_message()) {
            self.enqueue_to_controller(switch, join);
        }
    }

    /// Replaces the controller runtime (failover to a standby).
    pub fn replace_controller(&mut self, runtime: ControllerRuntime) {
        self.controller = Arc::new(Cached::new(runtime));
    }

    // ----- Fingerprinting -----

    /// The canonical 64-bit fingerprint of this state, used for the explored
    /// set (Section 6: hashes instead of full states).
    ///
    /// Computed *incrementally* as an order-independent XOR over the cached
    /// per-component digests: every copy-on-write component — the
    /// controller, each switch, each host, and since the incremental
    /// fingerprinting rework **each FIFO channel** — carries a lazily
    /// recomputed digest ([`Cached`]) that survives as long as the component
    /// is not mutated. Each digest is mixed with its slot (component kind +
    /// key, Zobrist style) before being XORed into the accumulator, so equal
    /// digests in different positions cannot cancel. A transition therefore
    /// pays only for re-hashing the handful of components it actually
    /// touched plus an O(#components) walk over cached 64-bit values —
    /// instead of re-walking every packet in every channel map as the
    /// pre-incremental implementation did. The small bookkeeping sets
    /// (pending statistics, the discovery-cache rows of the *current*
    /// controller state) are folded the same way; they are tiny.
    ///
    /// Golden-value tests in this module pin the per-channel digests to the
    /// exact FNV-1a hash of the channel contents and the combined value to
    /// an independent reference implementation, so the incremental path
    /// cannot silently drift.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        acc ^= mix(slot::CONTROLLER, 0, self.controller_fingerprint());
        for (id, sw) in &self.switches {
            acc ^= mix(
                slot::SWITCH,
                id.0 as u64,
                sw.digest_with(SWITCH_FP_SEED, |s, h| s.fingerprint(h)),
            );
        }
        for (id, host) in &self.hosts {
            acc ^= mix(
                slot::HOST,
                id.0 as u64,
                host.digest_with(HOST_FP_SEED, |x, h| x.fingerprint(h)),
            );
        }
        for (id, ch) in &self.sw_to_ctrl {
            acc ^= mix(slot::SW_TO_CTRL, id.0 as u64, channel_digest(ch));
        }
        for (id, ch) in &self.ctrl_to_sw {
            acc ^= mix(slot::CTRL_TO_SW, id.0 as u64, channel_digest(ch));
        }
        for ((sw, port), ch) in &self.ingress {
            let key = ((sw.0 as u64) << 16) | port.0 as u64;
            acc ^= mix(slot::INGRESS, key, channel_digest(ch));
        }
        for (id, ch) in &self.host_inbox {
            acc ^= mix(slot::HOST_INBOX, id.0 as u64, channel_digest(ch));
        }
        for sw in &self.pending_stats {
            acc ^= mix(slot::PENDING_STATS, sw.0 as u64, 1);
        }
        // The fault slot is folded only when fault state exists, so a
        // faults-off search (and a fault search that has spent its whole
        // budget with every switch recovered) fingerprints bit-identically
        // to a fault-unaware checker.
        if self.fault_budget != 0 || !self.crashed.is_empty() {
            let mut h = Fnv64::with_seed(FAULTS_FP_SEED);
            h.write_u64(self.fault_budget as u64);
            h.write_usize(self.crashed.len());
            for sw in &self.crashed {
                sw.fingerprint(&mut h);
            }
            acc ^= mix(slot::FAULTS, 0, h.finish());
        }
        // Only the discovery-cache entries for the *current* controller state
        // matter for enabledness; including the full history would make
        // states that differ only in stale cache entries look distinct.
        let ctrl_fp = self.controller_fingerprint();
        for (host, cache) in self.relevant_packets.iter() {
            if let Some(packets) = cache.get(&ctrl_fp) {
                let mut h = Fnv64::with_seed(ctrl_fp);
                packets.fingerprint(&mut h);
                acc ^= mix(slot::RELEVANT_PACKETS, host.0 as u64, h.finish());
            }
        }
        for (switch, cache) in self.discovered_stats.iter() {
            if let Some(entries) = cache.get(&ctrl_fp) {
                let mut h = Fnv64::with_seed(ctrl_fp);
                h.write_usize(entries.len());
                for reply in entries {
                    reply.fingerprint(&mut h);
                }
                acc ^= mix(slot::DISCOVERED_STATS, switch.0 as u64, h.finish());
            }
        }
        acc
    }

    /// Total number of packets currently buffered at switches awaiting a
    /// controller decision (used in reports).
    pub fn total_buffered_packets(&self) -> usize {
        self.switches
            .values()
            .map(|s| s.value.buffered_count())
            .sum()
    }

    /// True if a packet with the given provenance id is still traceable
    /// somewhere in the system: queued on an ingress channel or a host inbox,
    /// riding inside an OpenFlow message (a `PacketIn` copy or an inline
    /// `PacketOut`), buffered at a switch, or held by the controller
    /// application for re-delivery ([`ControllerApp::held_packets`]).
    ///
    /// Liveness-style properties (e.g.
    /// [`NoAbandonedPackets`](crate::properties::NoAbandonedPackets)) use this
    /// to detect the exact transition that *loses* a packet — once a packet is
    /// untraceable, no later transition can deliver it.
    ///
    /// [`ControllerApp::held_packets`]: nice_controller::ControllerApp::held_packets
    pub fn is_packet_in_flight(&self, id: PacketId) -> bool {
        let of_carries = |msg: &OfMessage| match msg {
            OfMessage::PacketIn { packet, .. } => packet.id == id,
            OfMessage::PacketOut {
                packet: Some(packet),
                ..
            } => packet.id == id,
            _ => false,
        };
        self.ingress
            .values()
            .chain(self.host_inbox.values())
            .any(|ch| ch.value.iter().any(|p| p.id == id))
            || self
                .sw_to_ctrl
                .values()
                .chain(self.ctrl_to_sw.values())
                .any(|ch| ch.value.iter().any(of_carries))
            || self
                .switches
                .values()
                .any(|s| s.value.buffered_packets().any(|(_, bp)| bp.packet.id == id))
            || self.controller.value.app().held_packets().contains(&id)
    }

    /// Total number of messages currently queued on any channel.
    pub fn total_queued_messages(&self) -> usize {
        self.sw_to_ctrl
            .values()
            .map(|c| c.value.len())
            .sum::<usize>()
            + self
                .ctrl_to_sw
                .values()
                .map(|c| c.value.len())
                .sum::<usize>()
            + self.ingress.values().map(|c| c.value.len()).sum::<usize>()
            + self
                .host_inbox
                .values()
                .map(|c| c.value.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use nice_openflow::MacAddr;

    #[test]
    fn initial_state_has_components_and_empty_channels() {
        let scenario = testutil::hub_ping_scenario(1);
        let state = SystemState::initial(&scenario);
        assert_eq!(state.switches().count(), 2);
        assert_eq!(state.hosts().count(), 2);
        assert_eq!(state.total_queued_messages(), 0);
        assert_eq!(state.total_buffered_packets(), 0);
        assert!(!state.control_plane_busy());
        assert!(state.host_at(SwitchId(1), PortId(1)).is_some());
        assert!(state.host_at(SwitchId(1), PortId(3)).is_none());
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let scenario = testutil::hub_ping_scenario(1);
        let a = SystemState::initial(&scenario);
        let b = SystemState::initial(&scenario);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = a.clone();
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        c.enqueue_ingress(SwitchId(1), PortId(1), pkt);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn clone_is_deep_for_switches_and_hosts() {
        let scenario = testutil::hub_ping_scenario(1);
        let a = SystemState::initial(&scenario);
        let mut b = a.clone();
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        b.switch_mut(SwitchId(1))
            .unwrap()
            .process_packet(pkt, PortId(1));
        assert_eq!(a.switch(SwitchId(1)).unwrap().buffered_count(), 0);
        assert_eq!(b.switch(SwitchId(1)).unwrap().buffered_count(), 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn enqueue_to_switch_tracks_stats_requests_and_order() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        assert!(!state.stats_pending(SwitchId(1)));
        state.enqueue_to_switch(
            SwitchId(1),
            OfMessage::StatsRequest {
                kind: nice_openflow::StatsKind::Port,
                request_id: 1,
            },
        );
        assert!(state.stats_pending(SwitchId(1)));
        assert_eq!(state.switches_awaiting_stats(), vec![SwitchId(1)]);
        state.clear_stats_pending(SwitchId(1));
        assert!(!state.stats_pending(SwitchId(1)));

        state.enqueue_to_switch(SwitchId(1), OfMessage::BarrierRequest { request_id: 1 });
        state.enqueue_to_switch(SwitchId(2), OfMessage::BarrierRequest { request_id: 2 });
        let backlog = state.of_backlog();
        assert_eq!(backlog.len(), 2);
        // Switch 2 received the most recent message.
        let newest = backlog.iter().max_by_key(|(_, seq)| *seq).unwrap().0;
        assert_eq!(newest, SwitchId(2));
        assert!(state.control_plane_busy());
    }

    #[test]
    fn relevant_packet_cache_is_keyed_by_controller_state() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let fp = state.controller_fingerprint();
        assert!(state.relevant_packets(HostId(1), fp).is_none());
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let before = state.fingerprint();
        state.set_relevant_packets(HostId(1), fp, vec![pkt]);
        assert_eq!(state.relevant_packets(HostId(1), fp).unwrap().len(), 1);
        // Discovering packets changes the state fingerprint (it enables new
        // transitions), so the checker will explore the post-discovery state.
        assert_ne!(before, state.fingerprint());
        // An entry for a different controller state is invisible.
        assert!(state.relevant_packets(HostId(1), fp ^ 1).is_none());
    }

    #[test]
    fn clone_shares_components_until_written() {
        let scenario = testutil::hub_ping_scenario(1);
        let a = SystemState::initial(&scenario);
        let mut b = a.clone();
        // A fresh clone shares every component allocation.
        assert!(Arc::ptr_eq(&a.controller, &b.controller));
        assert!(Arc::ptr_eq(
            &a.switches[&SwitchId(1)],
            &b.switches[&SwitchId(1)]
        ));
        assert!(Arc::ptr_eq(&a.relevant_packets, &b.relevant_packets));

        // Writing one switch un-shares only that switch.
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        b.switch_mut(SwitchId(1))
            .unwrap()
            .process_packet(pkt, PortId(1));
        assert!(!Arc::ptr_eq(
            &a.switches[&SwitchId(1)],
            &b.switches[&SwitchId(1)]
        ));
        assert!(Arc::ptr_eq(
            &a.switches[&SwitchId(2)],
            &b.switches[&SwitchId(2)]
        ));
        assert!(Arc::ptr_eq(&a.controller, &b.controller));
    }

    #[test]
    fn deep_clone_shares_nothing_but_topology() {
        let scenario = testutil::hub_ping_scenario(1);
        let a = SystemState::initial(&scenario);
        let b = a.deep_clone();
        assert!(!Arc::ptr_eq(&a.controller, &b.controller));
        assert!(!Arc::ptr_eq(
            &a.switches[&SwitchId(1)],
            &b.switches[&SwitchId(1)]
        ));
        assert!(!Arc::ptr_eq(&a.relevant_packets, &b.relevant_packets));
        assert!(Arc::ptr_eq(&a.topology, &b.topology));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Recomputes the combined fingerprint from scratch, bypassing every
    /// digest cache: the independent reference the incremental path is
    /// pinned against.
    fn reference_fingerprint(state: &SystemState) -> u64 {
        let fresh = |write: &dyn Fn(&mut Fnv64), seed: u64| -> u64 {
            let mut h = Fnv64::with_seed(seed);
            write(&mut h);
            h.finish()
        };
        let mut acc = 0u64;
        acc ^= mix(
            slot::CONTROLLER,
            0,
            fresh(&|h| state.controller.value.fingerprint(h), CTRL_FP_SEED),
        );
        for (id, sw) in &state.switches {
            acc ^= mix(
                slot::SWITCH,
                id.0 as u64,
                fresh(&|h| sw.value.fingerprint(h), SWITCH_FP_SEED),
            );
        }
        for (id, host) in &state.hosts {
            acc ^= mix(
                slot::HOST,
                id.0 as u64,
                fresh(&|h| host.value.fingerprint(h), HOST_FP_SEED),
            );
        }
        for (id, ch) in &state.sw_to_ctrl {
            acc ^= mix(
                slot::SW_TO_CTRL,
                id.0 as u64,
                fresh(&|h| ch.value.fingerprint(h), CHANNEL_FP_SEED),
            );
        }
        for (id, ch) in &state.ctrl_to_sw {
            acc ^= mix(
                slot::CTRL_TO_SW,
                id.0 as u64,
                fresh(&|h| ch.value.fingerprint(h), CHANNEL_FP_SEED),
            );
        }
        for ((sw, port), ch) in &state.ingress {
            let key = ((sw.0 as u64) << 16) | port.0 as u64;
            acc ^= mix(
                slot::INGRESS,
                key,
                fresh(&|h| ch.value.fingerprint(h), CHANNEL_FP_SEED),
            );
        }
        for (id, ch) in &state.host_inbox {
            acc ^= mix(
                slot::HOST_INBOX,
                id.0 as u64,
                fresh(&|h| ch.value.fingerprint(h), CHANNEL_FP_SEED),
            );
        }
        for sw in &state.pending_stats {
            acc ^= mix(slot::PENDING_STATS, sw.0 as u64, 1);
        }
        if state.fault_budget != 0 || !state.crashed.is_empty() {
            let mut h = Fnv64::with_seed(FAULTS_FP_SEED);
            h.write_u64(state.fault_budget as u64);
            h.write_usize(state.crashed.len());
            for sw in &state.crashed {
                sw.fingerprint(&mut h);
            }
            acc ^= mix(slot::FAULTS, 0, h.finish());
        }
        let ctrl_fp = state.controller_fingerprint();
        for (host, cache) in state.relevant_packets.iter() {
            if let Some(packets) = cache.get(&ctrl_fp) {
                let mut h = Fnv64::with_seed(ctrl_fp);
                packets.fingerprint(&mut h);
                acc ^= mix(slot::RELEVANT_PACKETS, host.0 as u64, h.finish());
            }
        }
        for (switch, cache) in state.discovered_stats.iter() {
            if let Some(entries) = cache.get(&ctrl_fp) {
                let mut h = Fnv64::with_seed(ctrl_fp);
                h.write_usize(entries.len());
                for reply in entries {
                    reply.fingerprint(&mut h);
                }
                acc ^= mix(slot::DISCOVERED_STATS, switch.0 as u64, h.finish());
            }
        }
        acc
    }

    #[test]
    fn incremental_fingerprint_matches_uncached_reference() {
        let scenario = testutil::hub_ping_scenario(2);
        let mut state = SystemState::initial(&scenario);
        assert_eq!(state.fingerprint(), reference_fingerprint(&state));

        // Drive a few mutations through the cached accessors and re-check
        // after every step: the caches must never go stale.
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        state.enqueue_ingress(SwitchId(1), PortId(1), pkt);
        assert_eq!(state.fingerprint(), reference_fingerprint(&state));

        state.enqueue_to_switch(SwitchId(2), OfMessage::BarrierRequest { request_id: 7 });
        assert_eq!(state.fingerprint(), reference_fingerprint(&state));

        // Fingerprint once (filling every cache), mutate a single channel,
        // and verify only correct values come back out.
        let _ = state.fingerprint();
        state.ctrl_to_sw_mut(SwitchId(2)).unwrap().pop();
        assert_eq!(state.fingerprint(), reference_fingerprint(&state));

        state.enqueue_host(HostId(2), pkt);
        let cloned = state.clone();
        assert_eq!(cloned.fingerprint(), reference_fingerprint(&state));
    }

    #[test]
    fn channel_digest_is_cached_and_invalidated() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        state.enqueue_ingress(SwitchId(1), PortId(1), pkt);

        let ch = &state.ingress[&(SwitchId(1), PortId(1))];
        let direct = {
            let mut h = Fnv64::with_seed(CHANNEL_FP_SEED);
            ch.value.fingerprint(&mut h);
            h.finish()
        };
        assert_eq!(channel_digest(ch), direct);
        // Cached on the OnceLock now.
        assert_eq!(ch.digest.get().copied(), Some(direct));

        // Mutation through the accessor drops the cache...
        state.ingress_mut(SwitchId(1), PortId(1)).unwrap().pop();
        let ch = &state.ingress[&(SwitchId(1), PortId(1))];
        assert_eq!(ch.digest.get(), None);
        // ...and the recomputed digest reflects the new contents.
        let direct_after = {
            let mut h = Fnv64::with_seed(CHANNEL_FP_SEED);
            ch.value.fingerprint(&mut h);
            h.finish()
        };
        assert_ne!(direct, direct_after);
        assert_eq!(channel_digest(ch), direct_after);
    }

    #[test]
    fn golden_mix_values_are_stable() {
        // Pins the slot-mix function (and thereby the whole combined
        // fingerprint scheme) so refactors cannot silently change explored-
        // set semantics or replay files.
        assert_eq!(mix(slot::CONTROLLER, 0, 0), 0x5b2a969b42d238a4);
        assert_eq!(mix(slot::SWITCH, 1, 0xdead_beef), 0xe06616201829fc28);
        assert_eq!(mix(slot::PENDING_STATS, 3, 1), 0x25086686098fd86f);
    }

    #[test]
    fn packet_id_allocation_is_monotonic() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let a = state.alloc_packet_id();
        let b = state.alloc_packet_id();
        assert!(b > a);
    }

    #[test]
    fn crash_wipes_and_reconnect_rehandshakes() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        state.enqueue_ingress(SwitchId(1), PortId(1), pkt);
        state.enqueue_to_switch(SwitchId(1), OfMessage::BarrierRequest { request_id: 1 });
        state.enqueue_to_controller(
            SwitchId(1),
            OfMessage::BarrierReply {
                switch: SwitchId(1),
                request_id: 1,
            },
        );

        state.crash_switch(SwitchId(1));
        assert!(state.is_crashed(SwitchId(1)));
        assert_eq!(state.crashed_switches(), vec![SwitchId(1)]);
        assert!(state.ingress(SwitchId(1), PortId(1)).unwrap().is_empty());
        assert!(state.ctrl_to_sw(SwitchId(1)).unwrap().is_failed());
        // Everything queued died; only the switch_leave notification is left.
        let sw2c = state.sw_to_ctrl(SwitchId(1)).unwrap();
        assert_eq!(sw2c.len(), 1);
        assert!(matches!(
            sw2c.peek(),
            Some(OfMessage::SwitchLeave { switch }) if *switch == SwitchId(1)
        ));
        // Messages towards the crashed switch are discarded.
        state.enqueue_to_switch(SwitchId(1), OfMessage::BarrierRequest { request_id: 2 });
        assert!(state.ctrl_to_sw(SwitchId(1)).unwrap().is_empty());

        state.reconnect_switch(SwitchId(1));
        assert!(!state.is_crashed(SwitchId(1)));
        assert!(!state.ctrl_to_sw(SwitchId(1)).unwrap().is_failed());
        let kinds: Vec<&str> = state
            .sw_to_ctrl(SwitchId(1))
            .unwrap()
            .iter()
            .map(|m| m.kind_name())
            .collect();
        assert_eq!(kinds, vec!["switch_leave", "switch_join"]);
        assert_eq!(state.fingerprint(), reference_fingerprint(&state));
    }

    #[test]
    fn fault_state_folds_into_the_fingerprint_only_when_present() {
        let scenario = testutil::hub_ping_scenario(1);
        let plain = SystemState::initial(&scenario);
        let mut budgeted = SystemState::initial(&scenario);
        assert_eq!(budgeted.fault_budget(), 0);
        budgeted.fault_budget = 2;
        assert_ne!(plain.fingerprint(), budgeted.fingerprint());
        assert_eq!(budgeted.fingerprint(), reference_fingerprint(&budgeted));
        budgeted.consume_fault_budget();
        let one_left = budgeted.fingerprint();
        budgeted.consume_fault_budget();
        // Budget spent, nothing crashed: the slot disappears and the state
        // merges with the fault-free space.
        assert_ne!(one_left, budgeted.fingerprint());
        assert_eq!(plain.fingerprint(), budgeted.fingerprint());
    }

    #[test]
    #[should_panic(expected = "fault budget exhausted")]
    fn consuming_an_empty_budget_panics() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        state.consume_fault_budget();
    }

    #[test]
    fn busy_ingress_ports_reports_queued_packets() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        assert!(state.busy_ingress_ports(SwitchId(1)).is_empty());
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        state.enqueue_ingress(SwitchId(1), PortId(2), pkt);
        assert_eq!(state.busy_ingress_ports(SwitchId(1)), vec![PortId(2)]);
        assert!(state.busy_ingress_ports(SwitchId(2)).is_empty());
    }
}
