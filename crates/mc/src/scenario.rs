//! What to check and how to search: the [`Scenario`] (system under test) and
//! the [`CheckerConfig`] (search configuration).

use crate::faults::FaultPlan;
use crate::properties::Property;
use nice_controller::ControllerApp;
use nice_hosts::HostModel;
use nice_openflow::{HostId, Packet, SwitchConfig, Topology};
use nice_sym::{ExploreConfig, PacketDomains, StatsDomains};
use std::collections::BTreeMap;

/// How clients choose the packets they send.
#[derive(Debug, Clone)]
pub enum SendPolicy {
    /// Each host sends a fixed sequence of packets, in order. This is how the
    /// Section 7 performance workload drives the system (symbolic execution
    /// turned off): host A sends layer-2 pings, host B echoes.
    Scripted(BTreeMap<HostId, Vec<Packet>>),
    /// The packets each host can send are discovered by symbolically
    /// executing the controller's `packet_in` handler in the current
    /// controller state (the `discover_packets` transition of Figure 5).
    Discover,
}

impl SendPolicy {
    /// Convenience constructor for a scripted policy.
    pub fn scripted(entries: impl IntoIterator<Item = (HostId, Vec<Packet>)>) -> Self {
        SendPolicy::Scripted(entries.into_iter().collect())
    }

    /// True if this policy uses symbolic discovery.
    pub fn is_discover(&self) -> bool {
        matches!(self, SendPolicy::Discover)
    }
}

/// The system under test: topology, controller application, host models,
/// send policy and the correctness properties to check.
pub struct Scenario {
    /// A short name used in reports.
    pub name: String,
    /// The network topology.
    pub topology: Topology,
    /// The controller application (cloned into the initial state).
    pub app: Box<dyn ControllerApp>,
    /// The end-host models.
    pub hosts: Vec<Box<dyn HostModel>>,
    /// How clients pick the packets they send.
    pub send_policy: SendPolicy,
    /// Switch-model options (canonical flow table, buffer capacity).
    pub switch_config: SwitchConfig,
    /// Which faults the checker may inject (channel faults on data-plane
    /// packet channels, switch crashes, controller failover, OpenFlow
    /// mutations) and the per-execution fault budget. Defaults to
    /// [`FaultPlan::none`]; fault transitions are only generated when the
    /// checker additionally enables them
    /// ([`CheckerConfig::inject_faults`]).
    pub fault_plan: FaultPlan,
    /// Domains for symbolic packet fields; defaults to
    /// [`PacketDomains::from_topology`] when `None`.
    pub packet_domains: Option<PacketDomains>,
    /// Domains for symbolic statistics counters.
    pub stats_domains: StatsDomains,
    /// The correctness properties to check.
    pub properties: Vec<Box<dyn Property>>,
}

impl Clone for Scenario {
    fn clone(&self) -> Self {
        Scenario {
            name: self.name.clone(),
            topology: self.topology.clone(),
            app: self.app.clone_app(),
            hosts: self.hosts.iter().map(|h| h.clone_host()).collect(),
            send_policy: self.send_policy.clone(),
            switch_config: self.switch_config,
            fault_plan: self.fault_plan.clone(),
            packet_domains: self.packet_domains.clone(),
            stats_domains: self.stats_domains.clone(),
            properties: self.properties.clone(),
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("app", &self.app.name())
            .field("hosts", &self.hosts.len())
            .field("send_policy", &self.send_policy.is_discover())
            .finish()
    }
}

impl Scenario {
    /// Starts a fluent [`ScenarioBuilder`] — the preferred way to assemble a
    /// scenario. Topology and app are required; everything else has the
    /// same defaults as [`Scenario::new`].
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// Creates a scenario with default switch configuration, reliable
    /// channels, and no properties.
    ///
    /// A positional-argument shim kept for source compatibility; new code
    /// should prefer [`Scenario::builder`].
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        app: Box<dyn ControllerApp>,
        hosts: Vec<Box<dyn HostModel>>,
        send_policy: SendPolicy,
    ) -> Self {
        Scenario::builder(name)
            .topology(topology)
            .app(app)
            .hosts(hosts)
            .send_policy(send_policy)
            .build()
    }

    /// Adds a correctness property (builder style).
    pub fn with_property(mut self, property: Box<dyn Property>) -> Self {
        self.properties.push(property);
        self
    }

    /// Adds several correctness properties (builder style).
    pub fn with_properties(mut self, properties: Vec<Box<dyn Property>>) -> Self {
        self.properties.extend(properties);
        self
    }

    /// Overrides the switch configuration (builder style). Passing
    /// `canonical_flow_table: false` reproduces the NO-SWITCH-REDUCTION
    /// baseline of Table 1.
    pub fn with_switch_config(mut self, config: SwitchConfig) -> Self {
        self.switch_config = config;
        self
    }

    /// Overrides the symbolic packet domains (builder style).
    pub fn with_packet_domains(mut self, domains: PacketDomains) -> Self {
        self.packet_domains = Some(domains);
        self
    }

    /// Overrides the symbolic statistics domains (builder style).
    pub fn with_stats_domains(mut self, domains: StatsDomains) -> Self {
        self.stats_domains = domains;
        self
    }

    /// Replaces the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The effective symbolic packet domains.
    pub fn effective_packet_domains(&self) -> PacketDomains {
        self.packet_domains
            .clone()
            .unwrap_or_else(|| PacketDomains::from_topology(&self.topology))
    }
}

/// Fluent construction of a [`Scenario`]: name the system under test, then
/// chain setters for the topology, controller application, hosts, send
/// policy, properties and model options, and [`ScenarioBuilder::build`] it.
///
/// ```
/// use nice_mc::{Scenario, SendPolicy};
/// # use nice_mc::testutil::HubApp;
/// use nice_openflow::{HostId, PortId, SwitchId, Topology};
///
/// let scenario = Scenario::builder("hub-demo")
///     .topology(Topology::single_switch(1))
///     .app(Box::new(HubApp::default()))
///     .send_policy(SendPolicy::Discover)
///     .build();
/// assert_eq!(scenario.name, "hub-demo");
/// ```
///
/// Topology and app are required: `build` panics with a descriptive message
/// if either is missing, because a scenario without them is meaningless.
pub struct ScenarioBuilder {
    name: String,
    topology: Option<Topology>,
    app: Option<Box<dyn ControllerApp>>,
    hosts: Vec<Box<dyn HostModel>>,
    send_policy: SendPolicy,
    switch_config: SwitchConfig,
    fault_plan: FaultPlan,
    packet_domains: Option<PacketDomains>,
    stats_domains: StatsDomains,
    properties: Vec<Box<dyn Property>>,
}

impl ScenarioBuilder {
    fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            topology: None,
            app: None,
            hosts: Vec::new(),
            send_policy: SendPolicy::Discover,
            switch_config: SwitchConfig::default(),
            fault_plan: FaultPlan::none(),
            packet_domains: None,
            stats_domains: StatsDomains::default(),
            properties: Vec::new(),
        }
    }

    /// Sets the network topology (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the controller application under test (required).
    pub fn app(mut self, app: Box<dyn ControllerApp>) -> Self {
        self.app = Some(app);
        self
    }

    /// Adds one end-host model.
    pub fn host(mut self, host: Box<dyn HostModel>) -> Self {
        self.hosts.push(host);
        self
    }

    /// Adds several end-host models.
    pub fn hosts(mut self, hosts: impl IntoIterator<Item = Box<dyn HostModel>>) -> Self {
        self.hosts.extend(hosts);
        self
    }

    /// Sets how clients choose the packets they send. Defaults to
    /// [`SendPolicy::Discover`] (symbolic discovery).
    pub fn send_policy(mut self, policy: SendPolicy) -> Self {
        self.send_policy = policy;
        self
    }

    /// Convenience for a scripted send policy.
    pub fn scripted_sends(
        mut self,
        entries: impl IntoIterator<Item = (HostId, Vec<Packet>)>,
    ) -> Self {
        self.send_policy = SendPolicy::scripted(entries);
        self
    }

    /// Adds one correctness property.
    pub fn property(mut self, property: Box<dyn Property>) -> Self {
        self.properties.push(property);
        self
    }

    /// Adds several correctness properties.
    pub fn properties(mut self, properties: impl IntoIterator<Item = Box<dyn Property>>) -> Self {
        self.properties.extend(properties);
        self
    }

    /// Overrides the switch-model options. Passing
    /// `canonical_flow_table: false` reproduces the NO-SWITCH-REDUCTION
    /// baseline of Table 1.
    pub fn switch_config(mut self, config: SwitchConfig) -> Self {
        self.switch_config = config;
        self
    }

    /// Sets the fault plan: which faults the checker may inject and the
    /// per-execution budget. Faults are only scheduled when the checker is
    /// additionally run with [`CheckerConfig::inject_faults`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the symbolic packet domains (defaults to
    /// [`PacketDomains::from_topology`]).
    pub fn packet_domains(mut self, domains: PacketDomains) -> Self {
        self.packet_domains = Some(domains);
        self
    }

    /// Overrides the symbolic statistics domains.
    pub fn stats_domains(mut self, domains: StatsDomains) -> Self {
        self.stats_domains = domains;
        self
    }

    /// Builds the scenario.
    ///
    /// # Panics
    ///
    /// If the topology or the controller application was never set.
    pub fn build(self) -> Scenario {
        Scenario {
            topology: self
                .topology
                .unwrap_or_else(|| panic!("scenario '{}' has no topology", self.name)),
            app: self
                .app
                .unwrap_or_else(|| panic!("scenario '{}' has no controller app", self.name)),
            name: self.name,
            hosts: self.hosts,
            send_policy: self.send_policy,
            switch_config: self.switch_config,
            fault_plan: self.fault_plan,
            packet_domains: self.packet_domains,
            stats_domains: self.stats_domains,
            properties: self.properties,
        }
    }
}

/// Which search strategy drives the exploration (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// NICE-MC: exhaustive depth-first search over all enabled transitions.
    FullDfs,
    /// NO-DELAY: controller↔switch communication is treated as atomic.
    NoDelay,
    /// FLOW-IR: only one relative ordering is explored between packets of
    /// independent flows (requires the application's `is_same_flow`).
    FlowIr,
    /// UNUSUAL: control messages are delivered in unusual (reverse) order to
    /// expose race conditions.
    Unusual,
}

impl StrategyKind {
    /// All strategies, in the order Table 2 reports them.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::FullDfs,
        StrategyKind::NoDelay,
        StrategyKind::FlowIr,
        StrategyKind::Unusual,
    ];

    /// The name used in reports (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::FullDfs => "PKT-SEQ",
            StrategyKind::NoDelay => "NO-DELAY",
            StrategyKind::FlowIr => "FLOW-IR",
            StrategyKind::Unusual => "UNUSUAL",
        }
    }

    /// Parses a strategy from its CLI spelling (case-insensitive): the
    /// paper name (`pkt-seq`, `no-delay`, `flow-ir`, `unusual`) or the
    /// aliases `full` / `dfs` for the exhaustive search.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "pkt-seq" | "full" | "dfs" | "full-dfs" => Some(StrategyKind::FullDfs),
            "no-delay" | "nodelay" => Some(StrategyKind::NoDelay),
            "flow-ir" | "flowir" => Some(StrategyKind::FlowIr),
            "unusual" => Some(StrategyKind::Unusual),
            _ => None,
        }
    }
}

/// Which partial-order reduction runs on top of the search strategy (see
/// [`crate::strategy::Reduction`]).
///
/// Orthogonal to [`StrategyKind`]: the strategy first filters the enabled
/// transitions (a heuristic, possibly unsound restriction of event
/// orderings), then the reduction prunes interleavings of *independent*
/// transitions that provably reach the same states (a sound reduction with
/// respect to the strategy-restricted space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionKind {
    /// No reduction: explore every strategy-selected transition (the
    /// canonical NICE-MC behaviour).
    #[default]
    None,
    /// Sleep-set partial-order reduction over the static independence
    /// relation of [`Transition::footprint`](crate::transition::Transition),
    /// plus a persistent-set-style selector for provably local transitions.
    /// (The implementation's display name lives on
    /// [`Reduction::name`](crate::strategy::Reduction::name).)
    Por,
}

impl ReductionKind {
    /// Both reductions, `None` first.
    pub const ALL: [ReductionKind; 2] = [ReductionKind::None, ReductionKind::Por];

    /// A short, stable label ("none" / "por") used by reports and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            ReductionKind::None => "none",
            ReductionKind::Por => "por",
        }
    }

    /// Parses a reduction from its CLI spelling (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" | "off" => Some(ReductionKind::None),
            "por" | "sleep-sets" => Some(ReductionKind::Por),
            _ => None,
        }
    }
}

/// How states on the search frontier are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateStorage {
    /// Keep a full clone of each frontier state (fast, more memory — though
    /// with copy-on-write states "full" costs only the components that
    /// differ from the parent).
    Full,
    /// Keep only the transition sequence and rebuild states by replaying it
    /// from the initial state — the approach the paper's prototype takes to
    /// trade computation for memory (Section 6).
    Replay,
    /// Hybrid: snapshot the state every `interval` transitions of depth and
    /// rebuild frontier states by replaying only the suffix since the
    /// nearest snapshot. `interval = 1` behaves like [`StateStorage::Full`];
    /// a large `interval` approaches [`StateStorage::Replay`]. Snapshots are
    /// copy-on-write, so the memory cost of a checkpoint is only the part of
    /// the state that changed since the previous one.
    Checkpoint {
        /// Snapshot cadence in transitions; `0` is treated as `1` (the
        /// builder [`CheckerConfig::with_checkpoint_interval`] clamps, and
        /// the checker guards direct construction).
        interval: usize,
    },
}

/// Which scheduler distributes frontier nodes across parallel workers
/// (`workers > 1`; the sequential engine has no scheduler).
///
/// Both schedulers explore the same state space — they only differ in how
/// idle workers obtain work, which changes throughput and the (already
/// scheduling-dependent) exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// One lock-free Chase-Lev deque per worker: children are pushed and
    /// popped locally with no synchronisation, and an idle worker steals
    /// half of a victim's oldest subtree. The default — scales past the
    /// point where a shared frontier lock saturates.
    #[default]
    WorkStealing,
    /// The legacy shared mutex-protected frontier: busy workers donate
    /// half their private stack only when a sibling is starving. Kept as
    /// the baseline the work-stealing scheduler is benchmarked against.
    Donation,
}

impl SchedulerKind {
    /// Both schedulers, the default first.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::WorkStealing, SchedulerKind::Donation];

    /// A short, stable label ("work-stealing" / "donation") used by reports
    /// and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::WorkStealing => "work-stealing",
            SchedulerKind::Donation => "donation",
        }
    }

    /// Parses a scheduler from its CLI spelling (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "work-stealing" | "steal" => Some(SchedulerKind::WorkStealing),
            "donation" | "donate" => Some(SchedulerKind::Donation),
            _ => None,
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// The search strategy.
    pub strategy: StrategyKind,
    /// Stop after exploring this many transitions (0 = unlimited).
    pub max_transitions: u64,
    /// Do not explore beyond this depth (transitions from the initial state).
    pub max_depth: usize,
    /// Stop at the first property violation (the paper's default workflow) or
    /// keep searching to collect every violation.
    pub stop_at_first_violation: bool,
    /// Process all of a switch's busy ingress ports in one `process_pkt`
    /// transition (the paper's simplification). Disabling it yields the
    /// fine-grained interleaving granularity of generic model checkers, used
    /// for the Section 7 comparison.
    pub coarse_packet_processing: bool,
    /// Explore rule-expiry (timeout) transitions.
    pub explore_rule_expiry: bool,
    /// How frontier states are stored.
    pub state_storage: StateStorage,
    /// Number of worker threads for the state-space search. `1` (the
    /// default) runs the fully deterministic sequential engine; larger
    /// values explore the same state space concurrently with a shared
    /// deduplication set. With no truncating budget the searches agree on
    /// `unique_states`/`transitions` and on the set of violations, but the
    /// order violations are found in — and therefore the trace attached to
    /// each — may differ run to run.
    pub workers: usize,
    /// Partial-order reduction layered on top of the strategy (see
    /// [`ReductionKind`]).
    pub reduction: ReductionKind,
    /// Benchmark-only switch: clone frontier states eagerly (pre-COW cost
    /// profile) instead of copy-on-write. Exists so `nice-bench` can measure
    /// the win of structural sharing; leave `false` for real searches.
    pub force_deep_clone: bool,
    /// Schedule the fault transitions described by the scenario's
    /// [`FaultPlan`](crate::faults::FaultPlan). Off by default so that a
    /// scenario carrying a plan can still be checked fault-free (the CLI's
    /// `--faults` flag flips this on).
    pub inject_faults: bool,
    /// Limits on symbolic path exploration.
    pub explore: ExploreConfig,
    /// How parallel workers exchange frontier nodes (see [`SchedulerKind`]).
    /// Ignored by the sequential engine (`workers == 1`).
    pub scheduler: SchedulerKind,
    /// How the explored fingerprint set is stored (see
    /// [`ExploredConfig`](crate::explored::ExploredConfig)): exact in-memory
    /// (the default), exact with cold-shard spill to disk, or lossy bitstate
    /// hashing.
    pub explored: crate::explored::ExploredConfig,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            strategy: StrategyKind::FullDfs,
            max_transitions: 2_000_000,
            max_depth: 400,
            stop_at_first_violation: true,
            coarse_packet_processing: true,
            explore_rule_expiry: false,
            state_storage: StateStorage::Full,
            workers: 1,
            reduction: ReductionKind::None,
            force_deep_clone: false,
            inject_faults: false,
            explore: ExploreConfig::default(),
            scheduler: SchedulerKind::default(),
            explored: crate::explored::ExploredConfig::default(),
        }
    }
}

impl CheckerConfig {
    /// The configuration used for the generic-model-checker baseline of the
    /// Section 7 comparison: no coarse packet processing (finest interleaving
    /// granularity). Combine with a scenario whose switches disable the
    /// canonical flow table to remove all domain-specific reductions.
    pub fn generic_baseline() -> Self {
        CheckerConfig {
            coarse_packet_processing: false,
            ..Default::default()
        }
    }

    /// Sets the strategy (builder style).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the transition budget (builder style).
    pub fn with_max_transitions(mut self, max: u64) -> Self {
        self.max_transitions = max;
        self
    }

    /// Sets the depth bound (builder style).
    pub fn with_max_depth(mut self, max: usize) -> Self {
        self.max_depth = max;
        self
    }

    /// Sets whether to stop at the first violation (builder style).
    pub fn with_stop_at_first(mut self, stop: bool) -> Self {
        self.stop_at_first_violation = stop;
        self
    }

    /// Sets the state-storage mode (builder style).
    pub fn with_state_storage(mut self, storage: StateStorage) -> Self {
        self.state_storage = storage;
        self
    }

    /// Sets checkpointed-replay storage with the given snapshot cadence
    /// (builder style). `0` is clamped to `1` (which behaves like
    /// [`StateStorage::Full`]).
    pub fn with_checkpoint_interval(mut self, interval: usize) -> Self {
        self.state_storage = StateStorage::Checkpoint {
            interval: interval.max(1),
        };
        self
    }

    /// Sets the number of search worker threads (builder style). `0` is
    /// clamped to `1`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Selects the partial-order reduction layered on top of the strategy
    /// (builder style).
    pub fn with_reduction(mut self, reduction: ReductionKind) -> Self {
        self.reduction = reduction;
        self
    }

    /// Enables or disables scheduling of the scenario's fault plan
    /// (builder style).
    pub fn with_fault_injection(mut self, inject: bool) -> Self {
        self.inject_faults = inject;
        self
    }

    /// Selects the parallel scheduler (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the explored-set storage mode (builder style). The memory
    /// limit keeps its current value; see
    /// [`with_mem_limit`](CheckerConfig::with_mem_limit).
    pub fn with_explored(mut self, mode: crate::explored::ExploredMode) -> Self {
        self.explored.mode = mode;
        self
    }

    /// Sets the explored-set memory budget in bytes (builder style). `0`
    /// selects the mode's default budget; the exact in-memory mode ignores
    /// it entirely.
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.explored.mem_limit = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use nice_openflow::MacAddr;

    #[test]
    fn send_policy_constructors() {
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let policy = SendPolicy::scripted([(HostId(1), vec![pkt])]);
        assert!(!policy.is_discover());
        assert!(SendPolicy::Discover.is_discover());
    }

    #[test]
    fn scenario_builders_compose() {
        let scenario = testutil::hub_ping_scenario(2)
            .with_switch_config(SwitchConfig {
                canonical_flow_table: false,
                buffer_capacity: 8,
            })
            .with_fault_plan(FaultPlan::lossy(2))
            .with_stats_domains(StatsDomains::around_threshold(100));
        assert!(!scenario.switch_config.canonical_flow_table);
        assert_eq!(scenario.switch_config.buffer_capacity, 8);
        let cloned = scenario.clone();
        assert_eq!(cloned.name, scenario.name);
        assert_eq!(cloned.hosts.len(), scenario.hosts.len());
        assert_eq!(cloned.fault_plan, scenario.fault_plan);
        assert!(scenario.fault_plan.any_enabled());
        assert!(format!("{scenario:?}").contains("hub"));
    }

    #[test]
    fn effective_packet_domains_derive_from_topology_by_default() {
        let scenario = testutil::hub_ping_scenario(1);
        let domains = scenario.effective_packet_domains();
        assert!(domains.macs.contains(&MacAddr::for_host(1).value()));
        let overridden = scenario.with_packet_domains(
            nice_sym::PacketDomains::from_topology(&Topology::single_switch(1)).with_ports(vec![9]),
        );
        assert_eq!(overridden.effective_packet_domains().ports, vec![9]);
    }

    #[test]
    fn strategy_names_match_the_paper() {
        assert_eq!(StrategyKind::FullDfs.name(), "PKT-SEQ");
        assert_eq!(StrategyKind::NoDelay.name(), "NO-DELAY");
        assert_eq!(StrategyKind::FlowIr.name(), "FLOW-IR");
        assert_eq!(StrategyKind::Unusual.name(), "UNUSUAL");
        assert_eq!(StrategyKind::ALL.len(), 4);
    }

    #[test]
    fn checker_config_defaults_and_builders() {
        let config = CheckerConfig::default();
        assert!(config.coarse_packet_processing);
        assert!(config.stop_at_first_violation);
        assert_eq!(config.strategy, StrategyKind::FullDfs);
        let tuned = CheckerConfig::default()
            .with_strategy(StrategyKind::Unusual)
            .with_max_transitions(10)
            .with_stop_at_first(false)
            .with_state_storage(StateStorage::Replay);
        assert_eq!(tuned.strategy, StrategyKind::Unusual);
        assert_eq!(tuned.max_transitions, 10);
        assert!(!tuned.stop_at_first_violation);
        assert_eq!(tuned.state_storage, StateStorage::Replay);
        assert!(!CheckerConfig::generic_baseline().coarse_packet_processing);
    }
}
