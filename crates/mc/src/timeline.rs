//! ASCII timeline rendering of a trace: one lane per component.
//!
//! Each column is one trace step; each row is the controller, a switch, or
//! a host. Symbols mark what the step did on each lane:
//!
//! | symbol | meaning |
//! |--------|---------|
//! | `M`    | a packet send (host injection) |
//! | `R`    | a packet delivered to a host |
//! | `W`    | a flow-mod (rule installed or deleted) |
//! | `B`    | a barrier message processed |
//! | `⚡`   | an injected fault (crash, channel fault, failover, mutation) |
//! | `!`    | a property violation fired here |
//! | `*`    | other activity on the step's component |
//! | `.`    | idle |
//!
//! The renderer replays the trace (deterministic 1-worker engine) to see
//! the events each step emits, so the lanes reflect what actually happened
//! — not just the transition labels.

use crate::checker::ModelChecker;
use crate::properties::Event;
use crate::replay::{Replayer, StepResult};
use crate::trace::Trace;
use crate::transition::Transition;
use nice_openflow::{HostId, OfMessage, SwitchId};
use std::collections::HashMap;
use std::fmt;

/// One row of the timeline.
#[derive(Debug, Clone)]
pub struct Lane {
    /// The component label (`ctrl`, `sw1`, `h2`, ...).
    pub label: String,
    /// One symbol per trace step.
    pub cells: Vec<char>,
}

/// A rendered timeline: lanes, the step labels, and the violation the
/// trace ends in (if replay reproduced one).
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The scenario the trace belongs to.
    pub scenario: String,
    /// One lane per component: controller first, then switches, then hosts.
    pub lanes: Vec<Lane>,
    /// The human-readable transition labels, one per column.
    pub steps: Vec<String>,
    /// The first violation replay observed, as `(property, message)`.
    pub violation: Option<(String, String)>,
}

impl Timeline {
    /// True if any lane shows any activity (used by CI smoke checks).
    pub fn has_activity(&self) -> bool {
        self.lanes
            .iter()
            .any(|lane| lane.cells.iter().any(|&c| c != IDLE))
    }

    /// Renders the timeline as text (also available through `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timeline: {} — {} steps",
            self.scenario,
            self.steps.len()
        )?;
        if let Some((property, message)) = &self.violation {
            write!(f, ", violation of {property}: {message}")?;
        }
        writeln!(f)?;
        let width = self.lanes.iter().map(|l| l.label.len()).max().unwrap_or(0);
        for lane in &self.lanes {
            write!(f, "  {:<width$} |", lane.label)?;
            for &cell in &lane.cells {
                write!(f, " {cell}")?;
            }
            writeln!(f, " |")?;
        }
        writeln!(
            f,
            "  legend: M send, R receive, W flow-mod, B barrier, \u{26a1} fault, ! violation"
        )?;
        writeln!(f, "  steps:")?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "    {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

const IDLE: char = '.';
const FAULT: char = '\u{26a1}'; // ⚡

/// Which lane a symbol lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LaneKey {
    Ctrl,
    Switch(SwitchId),
    Host(HostId),
}

/// The component a transition acts on.
fn anchor(transition: &Transition) -> LaneKey {
    match transition {
        Transition::HostSend { host, .. }
        | Transition::HostReceive { host }
        | Transition::HostMove { host, .. }
        | Transition::DiscoverPackets { host } => LaneKey::Host(*host),
        Transition::ControllerHandle { .. } | Transition::ControllerFailover => LaneKey::Ctrl,
        Transition::ProcessPacket { switch }
        | Transition::ProcessPacketOn { switch, .. }
        | Transition::ProcessOf { switch }
        | Transition::DiscoverStats { switch }
        | Transition::InjectStats { switch, .. }
        | Transition::ExpireRule { switch, .. }
        | Transition::ChannelFault { switch, .. }
        | Transition::SwitchCrash { switch }
        | Transition::SwitchReconnect { switch }
        | Transition::MutateOfHead { switch, .. } => LaneKey::Switch(*switch),
    }
}

/// Higher-priority symbols overwrite lower ones in the same cell.
fn priority(symbol: char) -> u8 {
    match symbol {
        '!' => 6,
        FAULT => 5,
        'B' => 4,
        'W' => 3,
        'M' | 'R' => 2,
        '*' => 1,
        _ => 0,
    }
}

/// Replays a trace and renders it as a per-component timeline. Errors if
/// the trace diverges (is not a real execution of the checker's scenario).
pub fn render_timeline(checker: &ModelChecker, trace: &Trace) -> Result<Timeline, String> {
    let transitions = trace.transitions();
    let columns = transitions.len();

    // Lanes: controller, then switches and hosts in id order.
    let topology = &checker.scenario().topology;
    let mut keys: Vec<(LaneKey, String)> = vec![(LaneKey::Ctrl, "ctrl".to_string())];
    let mut switches: Vec<SwitchId> = topology.switches().map(|s| s.id).collect();
    switches.sort_by_key(|s| s.0);
    keys.extend(
        switches
            .iter()
            .map(|&s| (LaneKey::Switch(s), format!("sw{}", s.0))),
    );
    let mut hosts: Vec<HostId> = topology.hosts().map(|h| h.id).collect();
    hosts.sort_by_key(|h| h.0);
    keys.extend(
        hosts
            .iter()
            .map(|&h| (LaneKey::Host(h), format!("h{}", h.0))),
    );

    let index: HashMap<LaneKey, usize> = keys
        .iter()
        .enumerate()
        .map(|(i, (key, _))| (*key, i))
        .collect();
    let mut grid: Vec<Vec<char>> = vec![vec![IDLE; columns]; keys.len()];
    let mark = |grid: &mut Vec<Vec<char>>, key: LaneKey, col: usize, symbol: char| {
        if let Some(&lane) = index.get(&key) {
            if priority(symbol) > priority(grid[lane][col]) {
                grid[lane][col] = symbol;
            }
        }
    };

    let mut replayer = Replayer::new(checker, &trace.engine);
    let mut violation: Option<(String, String)> = None;
    for (col, transition) in transitions.iter().enumerate() {
        // Peek the control channels before executing: a ProcessOf that is
        // about to consume a BarrierRequest (or a ControllerHandle about to
        // consume a BarrierReply) is a barrier step.
        match transition {
            Transition::ProcessOf { switch } => {
                if let Some(channel) = replayer.state().ctrl_to_sw(*switch) {
                    if matches!(channel.peek(), Some(OfMessage::BarrierRequest { .. })) {
                        mark(&mut grid, LaneKey::Switch(*switch), col, 'B');
                    }
                }
            }
            Transition::ControllerHandle { switch } => {
                if let Some(channel) = replayer.state().sw_to_ctrl(*switch) {
                    if matches!(channel.peek(), Some(OfMessage::BarrierReply { .. })) {
                        mark(&mut grid, LaneKey::Ctrl, col, 'B');
                    }
                }
            }
            _ => {}
        }

        let lane = anchor(transition);
        let base = if transition.fault_counter_index().is_some() {
            FAULT
        } else {
            match transition {
                Transition::HostSend { .. } => 'M',
                Transition::HostReceive { .. } => 'R',
                _ => '*',
            }
        };
        mark(&mut grid, lane, col, base);

        match replayer.step(transition) {
            StepResult::Diverged => {
                return Err(format!(
                    "trace diverges at step {}: '{transition}' is not enabled",
                    col + 1
                ));
            }
            StepResult::Executed(violations) => {
                let events: Vec<Event> = replayer.last_events().to_vec();
                for event in &events {
                    match event {
                        Event::PacketInjected { host, .. } => {
                            mark(&mut grid, LaneKey::Host(*host), col, 'M');
                        }
                        Event::PacketDeliveredToHost { host, .. } => {
                            mark(&mut grid, LaneKey::Host(*host), col, 'R');
                        }
                        Event::RuleInstalled { switch, .. } | Event::RuleDeleted { switch, .. } => {
                            mark(&mut grid, LaneKey::Switch(*switch), col, 'W');
                        }
                        _ => {}
                    }
                }
                if let Some((property, message)) = violations.into_iter().next() {
                    mark(&mut grid, lane, col, '!');
                    violation.get_or_insert((property, message));
                }
            }
        }
    }

    // Final-state violations fire in the terminal state the last step
    // produced; mark them on the last step's lane.
    if violation.is_none() && columns > 0 && replayer.terminal() {
        if let Some((property, message)) = replayer.check_final().into_iter().next() {
            mark(
                &mut grid,
                anchor(transitions[columns - 1]),
                columns - 1,
                '!',
            );
            violation = Some((property, message));
        }
    }

    let lanes = keys
        .into_iter()
        .zip(grid)
        .map(|((_, label), cells)| Lane { label, cells })
        .collect();
    Ok(Timeline {
        scenario: trace.scenario.clone(),
        lanes,
        steps: transitions.iter().map(|t| t.to_string()).collect(),
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CheckerConfig;
    use crate::testutil;

    #[test]
    fn timeline_renders_lanes_and_marks_the_violation() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        let violation = report.first_violation().expect("violation");
        let timeline = render_timeline(&checker, &violation.trace).expect("timeline");
        assert!(timeline.has_activity());
        assert_eq!(timeline.steps.len(), violation.trace.len());
        assert!(timeline.lanes.iter().any(|l| l.label == "ctrl"));
        assert!(timeline.lanes.iter().any(|l| l.label.starts_with("sw")));
        assert!(timeline.lanes.iter().any(|l| l.label.starts_with('h')));
        let (property, _) = timeline.violation.as_ref().expect("violation marked");
        assert_eq!(property, &violation.property);
        assert!(
            timeline.lanes.iter().any(|l| l.cells.contains(&'!')),
            "{}",
            timeline.render()
        );
        let text = timeline.render();
        assert!(text.contains("legend"));
        assert!(text.contains("steps:"));
    }

    #[test]
    fn timeline_marks_host_sends() {
        let scenario = testutil::hub_ping_scenario(1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        // Drive a deterministic execution to completion and render it.
        let mut replayer =
            crate::replay::Replayer::new(&checker, &crate::trace::TraceEngine::default());
        let mut steps = Vec::new();
        while let Some(t) = replayer.selected().first().cloned() {
            replayer.step_unchecked(&t);
            steps.push(t);
            if steps.len() > 200 {
                break;
            }
        }
        let trace = crate::trace::Trace::from_transitions(
            &checker.scenario().name,
            crate::trace::TraceEngine::default(),
            steps,
        );
        let timeline = render_timeline(&checker, &trace).expect("timeline");
        assert!(timeline.has_activity());
        assert!(
            timeline.lanes.iter().any(|l| l.cells.contains(&'M')),
            "a ping workload must show a packet send:\n{}",
            timeline.render()
        );
        assert!(timeline.violation.is_none());
    }
}
