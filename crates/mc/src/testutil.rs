//! Tiny controller applications and canned scenarios used by unit tests,
//! examples and benchmarks of the model checker itself.
//!
//! The real applications evaluated in the paper (pyswitch, the load balancer,
//! the traffic-engineering application) live in the `nice-apps` crate; the
//! ones here exist so this crate's own tests do not depend on it.

use crate::properties::default_properties;
use crate::scenario::{Scenario, SendPolicy};
use nice_controller::{ControllerApp, ControllerOps, PacketInContext, RuleSpec};
use nice_hosts::{ClientHost, HostModel, SendBudget};
use nice_openflow::{
    Action, Fingerprint, Fnv64, HostId, MacAddr, MatchPattern, Packet, PortId, Topology,
};
use nice_sym::{Env, SymMap, SymPacket};

/// A controller application that floods every packet (a "hub"). It never
/// installs rules, so every packet goes to the controller — useful for
/// exercising the checker plumbing with predictable behaviour.
#[derive(Debug, Clone, Default)]
pub struct HubApp {
    /// Number of packets handled.
    pub packets_handled: u64,
}

impl ControllerApp for HubApp {
    fn name(&self) -> &str {
        "hub"
    }

    fn packet_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        _env: &mut dyn Env,
        ctx: PacketInContext,
        _packet: &SymPacket,
    ) {
        self.packets_handled += 1;
        ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
    }

    fn clone_app(&self) -> Box<dyn ControllerApp> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_u64(self.packets_handled);
    }
}

/// A deliberately broken application that accepts the `packet_in` but never
/// tells the switch what to do with the buffered packet — the canonical
/// NoForgottenPackets violation.
#[derive(Debug, Clone, Default)]
pub struct ForgetfulApp;

impl ControllerApp for ForgetfulApp {
    fn name(&self) -> &str {
        "forgetful"
    }

    fn packet_in(
        &mut self,
        _ops: &mut dyn ControllerOps,
        _env: &mut dyn Env,
        _ctx: PacketInContext,
        _packet: &SymPacket,
    ) {
        // Deliberately does nothing: the buffered packet is forgotten.
    }

    fn clone_app(&self) -> Box<dyn ControllerApp> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fingerprint(&self, _hasher: &mut Fnv64) {}
}

/// A minimal destination-MAC learning application that installs forwarding
/// rules matching only the destination address — the example Section 4 uses
/// to motivate NO-DELAY (installing such a rule hides new sources from the
/// controller). Used by strategy tests. Its MAC table is a [`SymMap`], so
/// symbolic execution discovers the "destination known" / "destination
/// unknown" / "destination aliases the just-learned source" packet classes.
#[derive(Debug, Clone, Default)]
pub struct DstOnlyLearningApp {
    table: SymMap<u16>,
}

impl ControllerApp for DstOnlyLearningApp {
    fn name(&self) -> &str {
        "dst-only-learning"
    }

    fn packet_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) {
        self.table
            .insert(packet.src_mac.clone(), ctx.in_port.value());
        match self.table.get(&packet.dst_mac, env) {
            Some(port) => {
                let dst = env.concretize(&packet.dst_mac);
                ops.install_rule(
                    ctx.switch,
                    RuleSpec::new(
                        MatchPattern::l2_dst_only(MacAddr(dst)),
                        vec![Action::Output(PortId(port))],
                    ),
                );
                ops.send_packet_out(
                    ctx.switch,
                    ctx.buffer_id,
                    ctx.in_port,
                    vec![Action::Output(PortId(port))],
                );
            }
            None => {
                ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
            }
        }
    }

    fn clone_app(&self) -> Box<dyn ControllerApp> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fingerprint(&self, hasher: &mut Fnv64) {
        self.table.fingerprint(hasher);
    }
}

/// The layer-2 ping workload of Section 7 on the Figure 1 topology (host A —
/// switch 1 — switch 2 — host B) with the [`HubApp`] controller: host 1 sends
/// `pings` ping packets, host 2 echoes each of them.
pub fn hub_ping_scenario(pings: u32) -> Scenario {
    ping_scenario_with_app(Box::new(HubApp::default()), pings)
}

/// Same workload as [`hub_ping_scenario`] but with an arbitrary application.
pub fn ping_scenario_with_app(app: Box<dyn ControllerApp>, pings: u32) -> Scenario {
    let topology = Topology::linear_two_switches();
    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();

    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(host_a, SendBudget::sends(pings))),
        Box::new(ClientHost::new(host_b, SendBudget::SILENT).with_echo()),
    ];

    let pings_script: Vec<Packet> = (0..pings)
        .map(|i| Packet::l2_ping(i as u64 + 1, host_a.mac, host_b.mac, i))
        .collect();

    Scenario::new(
        "hub-ping",
        topology,
        app,
        hosts,
        SendPolicy::scripted([(HostId(1), pings_script)]),
    )
    .with_properties(default_properties())
}

/// A single-switch scenario driven by symbolic packet discovery instead of a
/// script, used to exercise the `discover_packets` machinery end to end.
pub fn discovery_scenario(app: Box<dyn ControllerApp>, sends: u32) -> Scenario {
    let topology = Topology::single_switch(2);
    let host_a = *topology.host(HostId(1)).unwrap();
    let host_b = *topology.host(HostId(2)).unwrap();
    let hosts: Vec<Box<dyn HostModel>> = vec![
        Box::new(ClientHost::new(host_a, SendBudget::sends(sends))),
        Box::new(ClientHost::new(host_b, SendBudget::SILENT).with_echo()),
    ];
    Scenario::new("discovery", topology, app, hosts, SendPolicy::Discover)
        .with_properties(default_properties())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_controller::ControllerRuntime;
    use nice_openflow::{BufferId, OfMessage, PacketInReason, SwitchId};

    #[test]
    fn hub_scenario_shape() {
        let s = hub_ping_scenario(3);
        assert_eq!(s.hosts.len(), 2);
        assert_eq!(s.topology.switch_count(), 2);
        match &s.send_policy {
            SendPolicy::Scripted(map) => assert_eq!(map.get(&HostId(1)).unwrap().len(), 3),
            SendPolicy::Discover => panic!("expected scripted policy"),
        }
        assert_eq!(s.properties.len(), 3);
    }

    #[test]
    fn hub_app_floods() {
        let mut rt = ControllerRuntime::new(Box::new(HubApp::default()));
        let out = rt.handle_message(&OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
            buffer_id: BufferId(1),
            reason: PacketInReason::NoMatch,
        });
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, OfMessage::PacketOut { .. }));
    }

    #[test]
    fn forgetful_app_produces_no_messages() {
        let mut rt = ControllerRuntime::new(Box::new(ForgetfulApp));
        let out = rt.handle_message(&OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
            buffer_id: BufferId(1),
            reason: PacketInReason::NoMatch,
        });
        assert!(out.is_empty());
    }

    #[test]
    fn dst_only_learning_installs_rule_once_destination_known() {
        let mut rt = ControllerRuntime::new(Box::new(DstOnlyLearningApp::default()));
        let a_to_b = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let b_to_a = Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        // First packet: destination unknown → flood only.
        let out = rt.handle_message(&OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: a_to_b,
            buffer_id: BufferId(1),
            reason: PacketInReason::NoMatch,
        });
        assert_eq!(out.len(), 1);
        // Reply: destination (host 1) now known → install + packet_out.
        let out = rt.handle_message(&OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(2),
            packet: b_to_a,
            buffer_id: BufferId(2),
            reason: PacketInReason::NoMatch,
        });
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].1, OfMessage::FlowMod { .. }));
    }

    #[test]
    fn discovery_scenario_uses_discover_policy() {
        let s = discovery_scenario(Box::new(HubApp::default()), 1);
        assert!(s.send_policy.is_discover());
        assert_eq!(s.topology.switch_count(), 1);
    }
}
