//! Deterministic step-by-step re-execution of a recorded [`Trace`].
//!
//! Replay always runs on the sequential 1-worker semantics, regardless of
//! how many workers the producing search used: a trace is a single
//! interleaving, so re-executing it needs no parallelism and must not
//! inherit any scheduling dependence. The trace's own
//! [`TraceEngine`](crate::trace::TraceEngine) supplies the semantics-
//! relevant knobs (strategy, fault injection, coarse packet processing), so
//! a BUG-XII witness recorded under `--faults` replays its fault
//! transitions exactly.
//!
//! Each step is validated against the engine's own enabled-transition
//! computation before executing — a corrupted or hand-edited trace reports
//! [`ReplayOutcome::Diverged`] at the first impossible step instead of
//! silently executing nonsense. Properties are fed every event and checked
//! after every step (plus the final-state checks at a terminal end), so the
//! report pinpoints the exact step each violation fires at.

use crate::checker::ModelChecker;
use crate::properties::{Event, Property};
use crate::scenario::{CheckerConfig, ReductionKind, Scenario};
use crate::state::SystemState;
use crate::strategy::{build_strategy, SearchStrategy};
use crate::trace::{Trace, TraceEngine};
use crate::transition::Transition;
use crate::transition::{drain_control_plane, enabled_transitions, execute, DiscoveryMemo};
use std::fmt;

/// How a replay ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Every step executed.
    Completed,
    /// Step `step` (0-based) was not enabled in the state the preceding
    /// steps produced — the trace does not describe a real execution of
    /// this scenario under its recorded engine configuration.
    Diverged {
        /// 0-based index of the impossible step.
        step: usize,
    },
}

/// One property violation observed during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayViolation {
    /// 0-based index of the step after which the violation fired; equal to
    /// the trace length for final-state (`check_final`) violations.
    pub step: usize,
    /// The violated property.
    pub property: String,
    /// The violation message.
    pub message: String,
}

/// The result of replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// How the replay ended.
    pub outcome: ReplayOutcome,
    /// Every violation observed, in step order.
    pub violations: Vec<ReplayViolation>,
    /// Steps actually executed (equals the trace length iff `outcome` is
    /// [`ReplayOutcome::Completed`]).
    pub steps_executed: usize,
    /// Fingerprint of the state after the last executed step — the
    /// bit-determinism witness: two replays of the same trace always agree
    /// on it.
    pub final_fingerprint: u64,
    /// True if the state after the last executed step is terminal (no
    /// enabled transitions), i.e. final-state properties were checked.
    pub terminal: bool,
}

impl ReplayReport {
    /// True if the whole trace executed.
    pub fn completed(&self) -> bool {
        self.outcome == ReplayOutcome::Completed
    }

    /// True if any violation was observed.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// True if a violation of `property` was observed.
    pub fn reproduced(&self, property: &str) -> bool {
        self.violations.iter().any(|v| v.property == property)
    }

    /// True if the replay reproduces the violation the trace claims to
    /// witness (any violation, when the trace names no property).
    pub fn reproduces(&self, trace: &Trace) -> bool {
        match &trace.property {
            Some(p) => self.reproduced(p),
            None => self.violated(),
        }
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            ReplayOutcome::Completed => writeln!(
                f,
                "replayed {} steps | terminal: {} | final fingerprint: {:#018x}",
                self.steps_executed, self.terminal, self.final_fingerprint
            )?,
            ReplayOutcome::Diverged { step } => writeln!(
                f,
                "DIVERGED at step {} (after {} executed steps): transition not enabled",
                step + 1,
                self.steps_executed
            )?,
        }
        if self.violations.is_empty() {
            writeln!(f, "  no violations observed")?;
        }
        for v in &self.violations {
            writeln!(
                f,
                "  violation after step {}: {} — {}",
                v.step + 1,
                v.property,
                v.message
            )?;
        }
        Ok(())
    }
}

/// The result of executing one step through a [`Replayer`].
pub(crate) enum StepResult {
    /// The step executed; any property violations it triggered are listed
    /// as `(property, message)` pairs.
    Executed(Vec<(String, String)>),
    /// The transition was not enabled (per the trace engine's strategy) in
    /// the current state.
    Diverged,
}

/// An incremental trace executor over the deterministic sequential engine —
/// the shared substrate of [`ModelChecker::replay`],
/// [`ModelChecker::minimize`](crate::minimize),
/// [`ModelChecker::bisect`](crate::minimize) and the timeline renderer.
pub(crate) struct Replayer<'a> {
    scenario: &'a Scenario,
    config: CheckerConfig,
    strategy: Box<dyn SearchStrategy>,
    memo: DiscoveryMemo,
    state: SystemState,
    properties: Vec<Box<dyn Property>>,
    events: Vec<Event>,
    steps_executed: usize,
}

impl<'a> Replayer<'a> {
    /// Starts a replayer at the scenario's initial state, with the
    /// semantics-relevant knobs taken from the trace's engine metadata and
    /// everything normalized to the deterministic 1-worker engine.
    pub(crate) fn new(checker: &'a ModelChecker, engine: &TraceEngine) -> Self {
        let mut config = checker.config().clone();
        config.strategy = engine.strategy;
        config.coarse_packet_processing = engine.coarse_packet_processing;
        config.inject_faults = engine.faults;
        config.workers = 1;
        // Replay follows the recorded sequence; it never prunes.
        config.reduction = ReductionKind::None;
        let scenario = checker.scenario();
        let strategy = build_strategy(config.strategy);
        let state = SystemState::initial(scenario);
        let properties = scenario.properties.clone();
        Replayer {
            scenario,
            config,
            strategy,
            memo: DiscoveryMemo::default(),
            state,
            properties,
            events: Vec::new(),
            steps_executed: 0,
        }
    }

    /// The transitions the engine would offer in the current state (after
    /// strategy selection) — the membership oracle for divergence checks
    /// and the deterministic continuation choice for minimization.
    pub(crate) fn selected(&mut self) -> Vec<Transition> {
        let enabled = enabled_transitions(&self.state, self.scenario, &self.config);
        self.strategy.select(&self.state, enabled)
    }

    /// Executes one transition if it is currently enabled, feeding property
    /// observers and collecting violations — the same semantics as one
    /// search step of the checker.
    pub(crate) fn step(&mut self, transition: &Transition) -> StepResult {
        if !self.selected().iter().any(|t| t == transition) {
            return StepResult::Diverged;
        }
        self.step_unchecked(transition)
    }

    /// Executes a transition the caller already knows is enabled (e.g. one
    /// just returned by [`Replayer::selected`]).
    pub(crate) fn step_unchecked(&mut self, transition: &Transition) -> StepResult {
        self.events.clear();
        execute(
            &mut self.state,
            transition,
            self.scenario,
            &self.config,
            &mut self.memo,
            &mut self.events,
        );
        if self.strategy.lock_step_control_plane() {
            drain_control_plane(
                &mut self.state,
                self.scenario,
                &self.config,
                &mut self.memo,
                &mut self.events,
            );
        }
        for event in self.events.iter() {
            for property in self.properties.iter_mut() {
                property.on_event(event, &self.state);
            }
        }
        self.steps_executed += 1;
        let violations = self
            .properties
            .iter()
            .filter_map(|p| p.check(&self.state).map(|m| (p.name().to_string(), m)))
            .collect();
        StepResult::Executed(violations)
    }

    /// True if the current state has no enabled transitions.
    pub(crate) fn terminal(&mut self) -> bool {
        self.selected().is_empty()
    }

    /// Final-state property checks on the current state.
    pub(crate) fn check_final(&self) -> Vec<(String, String)> {
        self.properties
            .iter()
            .filter_map(|p| {
                p.check_final(&self.state)
                    .map(|m| (p.name().to_string(), m))
            })
            .collect()
    }

    /// Fingerprint of the current state.
    pub(crate) fn fingerprint(&self) -> u64 {
        self.state.fingerprint()
    }

    /// Steps executed so far.
    pub(crate) fn steps_executed(&self) -> usize {
        self.steps_executed
    }

    /// The events emitted by the most recent step (for the timeline
    /// renderer).
    pub(crate) fn last_events(&self) -> &[Event] {
        &self.events
    }

    /// The current state (for the timeline renderer's barrier peeking).
    pub(crate) fn state(&self) -> &SystemState {
        &self.state
    }

    /// An independent copy of this replayer at its current state, for
    /// bounded exploration from a replayed prefix (bisection probes).
    pub(crate) fn branch(&self) -> Replayer<'a> {
        Replayer {
            scenario: self.scenario,
            config: self.config.clone(),
            strategy: build_strategy(self.config.strategy),
            memo: DiscoveryMemo::default(),
            state: self.state.clone(),
            properties: self.properties.clone(),
            events: Vec::new(),
            steps_executed: self.steps_executed,
        }
    }
}

impl ModelChecker {
    /// Re-executes a recorded trace step by step on the deterministic
    /// 1-worker engine, checking every property at every step (and the
    /// final-state properties if the trace ends in a terminal state).
    ///
    /// The trace's [`TraceEngine`](crate::trace::TraceEngine) governs the
    /// execution semantics — strategy, fault injection, coarse packet
    /// processing — so traces recorded under `--faults` (BUG-XII) replay
    /// their fault transitions. The checker's own configuration supplies
    /// everything else (e.g. rule-expiry exploration).
    ///
    /// Replay is bit-deterministic: the same trace on the same scenario
    /// always produces the same [`ReplayReport`], including
    /// [`ReplayReport::final_fingerprint`].
    pub fn replay(&self, trace: &Trace) -> ReplayReport {
        let mut replayer = Replayer::new(self, &trace.engine);
        let mut violations = Vec::new();
        for (index, step) in trace.steps.iter().enumerate() {
            let transition = step.transition();
            match replayer.step(transition) {
                StepResult::Diverged => {
                    return ReplayReport {
                        outcome: ReplayOutcome::Diverged { step: index },
                        violations,
                        steps_executed: replayer.steps_executed(),
                        final_fingerprint: replayer.fingerprint(),
                        terminal: false,
                    };
                }
                StepResult::Executed(found) => {
                    violations.extend(found.into_iter().map(|(property, message)| {
                        ReplayViolation {
                            step: index,
                            property,
                            message,
                        }
                    }));
                }
            }
        }
        let terminal = replayer.terminal();
        if terminal {
            violations.extend(
                replayer
                    .check_final()
                    .into_iter()
                    .map(|(property, message)| ReplayViolation {
                        step: trace.steps.len(),
                        property,
                        message,
                    }),
            );
        }
        ReplayReport {
            outcome: ReplayOutcome::Completed,
            violations,
            steps_executed: replayer.steps_executed(),
            final_fingerprint: replayer.fingerprint(),
            terminal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CheckerConfig;
    use crate::testutil;
    use crate::trace::TraceStep;

    fn violating_checker() -> ModelChecker {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        ModelChecker::new(scenario, CheckerConfig::default())
    }

    #[test]
    fn replay_reproduces_a_recorded_violation() {
        let checker = violating_checker();
        let report = checker.run();
        let violation = report.first_violation().expect("violation");
        let replay = checker.replay(&violation.trace);
        assert!(replay.completed(), "{replay}");
        assert!(
            replay.reproduced(&violation.property),
            "replay must reproduce {}: {replay}",
            violation.property
        );
        assert_eq!(replay.steps_executed, violation.trace.len());
    }

    #[test]
    fn replay_is_bit_deterministic() {
        let checker = violating_checker();
        let report = checker.run();
        let trace = &report.first_violation().expect("violation").trace;
        let a = checker.replay(trace);
        let b = checker.replay(trace);
        assert_eq!(a, b);
        assert_eq!(a.final_fingerprint, b.final_fingerprint);
    }

    #[test]
    fn replay_survives_a_json_round_trip() {
        let checker = violating_checker();
        let report = checker.run();
        let trace = &report.first_violation().expect("violation").trace;
        let parsed = Trace::from_json(&trace.to_json()).expect("round trip");
        assert_eq!(checker.replay(trace), checker.replay(&parsed));
    }

    #[test]
    fn replay_detects_divergence() {
        let checker = violating_checker();
        let report = checker.run();
        let mut trace = report.first_violation().expect("violation").trace.clone();
        // A transition for a switch that does not exist can never be enabled.
        trace.steps.insert(
            0,
            TraceStep::Transition(Transition::ProcessOf {
                switch: nice_openflow::SwitchId(999),
            }),
        );
        let replay = checker.replay(&trace);
        assert_eq!(replay.outcome, ReplayOutcome::Diverged { step: 0 });
        assert_eq!(replay.steps_executed, 0);
    }

    #[test]
    fn clean_scenario_replays_with_no_violations() {
        let scenario = testutil::hub_ping_scenario(1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        // Record a full run of some passing path via random walk.
        let report = checker.run();
        assert!(report.passed());
        // Build a trace by walking the engine deterministically.
        let mut replayer = Replayer::new(&checker, &crate::trace::TraceEngine::default());
        let mut steps = Vec::new();
        while let Some(t) = replayer.selected().first().cloned() {
            replayer.step_unchecked(&t);
            steps.push(t);
            if steps.len() > 200 {
                break;
            }
        }
        let trace = Trace::from_transitions(
            &checker.scenario().name,
            crate::trace::TraceEngine::default(),
            steps,
        );
        let replay = checker.replay(&trace);
        assert!(replay.completed());
        assert!(replay.terminal);
        assert!(!replay.violated(), "{replay}");
    }
}
