//! Typed, replayable violation traces and the stable `nice-trace-v1` JSON
//! schema.
//!
//! The paper's value proposition is the *witness*: a concrete transition
//! sequence reproducing a bug. A [`Trace`] carries that sequence as typed
//! [`Transition`]s — not rendered strings — together with the scenario name
//! and the engine configuration that produced it, so a trace saved to disk
//! is self-contained: `ModelChecker::replay` re-executes it step by step,
//! `minimize`/`bisect` shrink and localise it, and `nice timeline` renders
//! it, all without re-running the search that found it.
//!
//! Serialization is the hand-rolled, dependency-free `nice-trace-v1` JSON
//! schema (documented in `bench/README.md`): [`Trace::to_json`] emits one
//! canonical compact line (byte-deterministic for a given trace, so CI can
//! diff archived artifacts), [`Trace::from_json`] parses it back.

use crate::scenario::{CheckerConfig, ReductionKind, StrategyKind};
use crate::transition::Transition;
use nice_openflow::{
    ChannelFault, EthType, HostId, IpProto, Location, MacAddr, NwAddr, OfMutation, Packet,
    PacketId, PortId, PortStatsEntry, SwitchId, TcpFlags,
};
use std::fmt;

/// The current trace schema identifier.
pub const TRACE_SCHEMA: &str = "nice-trace-v1";

// ---------------------------------------------------------------------------
// Engine metadata
// ---------------------------------------------------------------------------

/// The engine configuration a trace was produced (or should be replayed)
/// under — everything that affects which transitions are enabled and how a
/// step executes, but not search-only knobs like budgets or state storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEngine {
    /// The search strategy (affects lock-step control-plane draining and
    /// which transitions the engine would have offered).
    pub strategy: StrategyKind,
    /// The partial-order reduction the search ran with. Informational:
    /// replay follows the recorded sequence and never prunes.
    pub reduction: ReductionKind,
    /// Worker threads of the producing search. `1` means the trace came
    /// from the fully deterministic sequential engine; larger values mean
    /// the witness choice was scheduling-dependent (replay itself is always
    /// deterministic either way).
    pub workers: usize,
    /// Whether fault transitions were schedulable.
    pub faults: bool,
    /// Whether `process_pkt` serviced all busy ports at once.
    pub coarse_packet_processing: bool,
}

impl TraceEngine {
    /// Captures the trace-relevant slice of a checker configuration.
    pub fn from_config(config: &CheckerConfig) -> Self {
        TraceEngine {
            strategy: config.strategy,
            reduction: config.reduction,
            workers: config.workers.max(1),
            faults: config.inject_faults,
            coarse_packet_processing: config.coarse_packet_processing,
        }
    }

    /// True if the producing engine was the deterministic sequential one.
    pub fn deterministic(&self) -> bool {
        self.workers == 1
    }

    /// A stable label for which engine produced the trace — what
    /// `nice run --json` records as `"engine"`.
    pub fn label(&self) -> &'static str {
        if self.deterministic() {
            "sequential"
        } else {
            "parallel"
        }
    }
}

impl Default for TraceEngine {
    fn default() -> Self {
        TraceEngine::from_config(&CheckerConfig::default())
    }
}

// ---------------------------------------------------------------------------
// Steps
// ---------------------------------------------------------------------------

/// One step of a trace.
///
/// Every step carries a typed, replayable [`Transition`]. The enum shape is
/// kept (rather than a bare newtype) so the `nice-trace-v1` step objects
/// retain their `"kind"` discriminant and future step categories can be
/// added without a schema bump.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// A typed, replayable system transition.
    Transition(Transition),
}

impl TraceStep {
    /// The typed transition of this step.
    pub fn transition(&self) -> &Transition {
        match self {
            TraceStep::Transition(t) => t,
        }
    }

    /// The human-readable label of the step — exactly the `Display`
    /// rendering of the transition, so migrating to typed traces changed no
    /// printed output.
    pub fn label(&self) -> String {
        self.transition().to_string()
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.transition().fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

/// An ordered, replayable witness: the transitions from the initial state,
/// plus the metadata needed to re-execute them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Name of the scenario the trace belongs to (what
    /// `nice replay`/`minimize`/`timeline` resolve through the registry).
    pub scenario: String,
    /// The engine configuration that produced the trace.
    pub engine: TraceEngine,
    /// The steps, in execution order.
    pub steps: Vec<TraceStep>,
    /// The property this trace witnesses a violation of, if any.
    pub property: Option<String>,
    /// The violation message, if any.
    pub message: Option<String>,
}

impl Trace {
    /// Creates a trace from typed transitions (the checker's constructor).
    pub fn from_transitions(
        scenario: &str,
        engine: TraceEngine,
        transitions: impl IntoIterator<Item = Transition>,
    ) -> Self {
        Trace {
            scenario: scenario.to_string(),
            engine,
            steps: transitions.into_iter().map(TraceStep::Transition).collect(),
            property: None,
            message: None,
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceStep> {
        self.steps.iter()
    }

    /// The human-readable labels, one per step — exactly what the
    /// stringified trace representation used to carry.
    pub fn labels(&self) -> Vec<String> {
        self.steps.iter().map(TraceStep::label).collect()
    }

    /// The typed transitions, one per step.
    pub fn transitions(&self) -> Vec<&Transition> {
        self.steps.iter().map(TraceStep::transition).collect()
    }

    /// Serializes the trace as one canonical `nice-trace-v1` JSON line.
    /// Byte-deterministic: the same trace always yields the same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.steps.len() * 64);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"scenario\":\"");
        out.push_str(&escape(&self.scenario));
        out.push_str("\",\"property\":");
        push_opt_str(&mut out, self.property.as_deref());
        out.push_str(",\"message\":");
        push_opt_str(&mut out, self.message.as_deref());
        out.push_str(",\"engine\":");
        out.push_str(&engine_to_json(&self.engine));
        out.push_str(",\"steps\":[");
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&step_to_json(step));
        }
        out.push_str("]}");
        out
    }

    /// Parses a `nice-trace-v1` JSON document.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = json::parse(input)?;
        let obj = value.as_obj().ok_or("trace document must be an object")?;
        let schema = obj
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != TRACE_SCHEMA {
            return Err(format!(
                "unsupported trace schema '{schema}' (expected {TRACE_SCHEMA})"
            ));
        }
        let scenario = obj
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("missing \"scenario\"")?
            .to_string();
        let property = opt_str(obj.get("property"), "property")?;
        let message = opt_str(obj.get("message"), "message")?;
        let engine = engine_from_json(obj.get("engine").ok_or("missing \"engine\"")?)?;
        let steps_value = obj
            .get("steps")
            .and_then(Json::as_arr)
            .ok_or("missing \"steps\" array")?;
        let mut steps = Vec::with_capacity(steps_value.len());
        for (i, v) in steps_value.iter().enumerate() {
            steps.push(step_from_json(v).map_err(|e| format!("step {i}: {e}"))?);
        }
        Ok(Trace {
            scenario,
            engine,
            steps,
            property,
            message,
        })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "    {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_opt_str(out: &mut String, value: Option<&str>) {
    match value {
        Some(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        None => out.push_str("null"),
    }
}

fn opt_str(value: Option<&Json>, key: &str) -> Result<Option<String>, String> {
    match value {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("\"{key}\" must be a string or null")),
    }
}

fn engine_to_json(engine: &TraceEngine) -> String {
    format!(
        "{{\"strategy\":\"{}\",\"reduction\":\"{}\",\"workers\":{},\"faults\":{},\
         \"coarse_packet_processing\":{},\"deterministic\":{}}}",
        engine.strategy.name().to_ascii_lowercase(),
        engine.reduction.name(),
        engine.workers,
        engine.faults,
        engine.coarse_packet_processing,
        engine.deterministic(),
    )
}

fn engine_from_json(value: &Json) -> Result<TraceEngine, String> {
    let obj = value.as_obj().ok_or("\"engine\" must be an object")?;
    let strategy_name = obj
        .get("strategy")
        .and_then(Json::as_str)
        .ok_or("engine: missing \"strategy\"")?;
    let strategy = StrategyKind::parse(strategy_name)
        .ok_or_else(|| format!("engine: unknown strategy '{strategy_name}'"))?;
    let reduction_name = obj
        .get("reduction")
        .and_then(Json::as_str)
        .ok_or("engine: missing \"reduction\"")?;
    let reduction = ReductionKind::parse(reduction_name)
        .ok_or_else(|| format!("engine: unknown reduction '{reduction_name}'"))?;
    Ok(TraceEngine {
        strategy,
        reduction,
        workers: obj
            .get("workers")
            .and_then(Json::as_u64)
            .ok_or("engine: missing \"workers\"")?
            .max(1) as usize,
        faults: obj
            .get("faults")
            .and_then(Json::as_bool)
            .ok_or("engine: missing \"faults\"")?,
        coarse_packet_processing: obj
            .get("coarse_packet_processing")
            .and_then(Json::as_bool)
            .ok_or("engine: missing \"coarse_packet_processing\"")?,
    })
}

fn packet_to_json(p: &Packet) -> String {
    format!(
        "{{\"id\":{},\"src_mac\":{},\"dst_mac\":{},\"eth_type\":{},\"src_ip\":{},\
         \"dst_ip\":{},\"nw_proto\":{},\"src_port\":{},\"dst_port\":{},\"tcp_flags\":{},\
         \"arp_op\":{},\"payload\":{}}}",
        p.id.0,
        p.src_mac.0,
        p.dst_mac.0,
        p.eth_type.value(),
        p.src_ip.0,
        p.dst_ip.0,
        p.nw_proto.value(),
        p.src_port,
        p.dst_port,
        p.tcp_flags.0,
        p.arp_op,
        p.payload,
    )
}

fn packet_from_json(value: &Json) -> Result<Packet, String> {
    let obj = value.as_obj().ok_or("\"packet\" must be an object")?;
    let field = |key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("packet: missing numeric \"{key}\""))
    };
    Ok(Packet {
        id: PacketId(field("id")?),
        src_mac: MacAddr(field("src_mac")?),
        dst_mac: MacAddr(field("dst_mac")?),
        eth_type: EthType::from_value(field("eth_type")? as u16),
        src_ip: NwAddr(field("src_ip")? as u32),
        dst_ip: NwAddr(field("dst_ip")? as u32),
        nw_proto: IpProto::from_value(field("nw_proto")? as u8),
        src_port: field("src_port")? as u16,
        dst_port: field("dst_port")? as u16,
        tcp_flags: TcpFlags(field("tcp_flags")? as u8),
        arp_op: field("arp_op")? as u8,
        payload: field("payload")? as u32,
    })
}

fn stats_to_json(stats: &[PortStatsEntry]) -> String {
    let entries: Vec<String> = stats
        .iter()
        .map(|e| {
            format!(
                "{{\"port\":{},\"rx_packets\":{},\"tx_packets\":{},\"rx_bytes\":{},\
                 \"tx_bytes\":{}}}",
                e.port.0, e.rx_packets, e.tx_packets, e.rx_bytes, e.tx_bytes
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn stats_from_json(value: &Json) -> Result<Vec<PortStatsEntry>, String> {
    let arr = value.as_arr().ok_or("\"stats\" must be an array")?;
    arr.iter()
        .map(|v| {
            let obj = v.as_obj().ok_or("stats entry must be an object")?;
            let field = |key: &str| -> Result<u64, String> {
                obj.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("stats entry: missing numeric \"{key}\""))
            };
            Ok(PortStatsEntry {
                port: PortId(field("port")? as u16),
                rx_packets: field("rx_packets")?,
                tx_packets: field("tx_packets")?,
                rx_bytes: field("rx_bytes")?,
                tx_bytes: field("tx_bytes")?,
            })
        })
        .collect()
}

fn channel_fault_name(fault: ChannelFault) -> &'static str {
    match fault {
        ChannelFault::DropHead => "drop_head",
        ChannelFault::DuplicateHead => "duplicate_head",
        ChannelFault::ReorderHead => "reorder_head",
        ChannelFault::FailLink => "fail_link",
    }
}

fn channel_fault_parse(name: &str) -> Option<ChannelFault> {
    match name {
        "drop_head" => Some(ChannelFault::DropHead),
        "duplicate_head" => Some(ChannelFault::DuplicateHead),
        "reorder_head" => Some(ChannelFault::ReorderHead),
        "fail_link" => Some(ChannelFault::FailLink),
        _ => None,
    }
}

fn mutation_parse(name: &str) -> Option<OfMutation> {
    match name {
        "drop_actions" => Some(OfMutation::DropActions),
        "zero_priority" => Some(OfMutation::ZeroPriority),
        _ => None,
    }
}

fn step_to_json(step: &TraceStep) -> String {
    let TraceStep::Transition(t) = step;
    let kind = t.kind();
    match t {
        Transition::HostSend { host, packet } => format!(
            "{{\"kind\":\"{kind}\",\"host\":{},\"packet\":{}}}",
            host.0,
            packet_to_json(packet)
        ),
        Transition::HostReceive { host } | Transition::DiscoverPackets { host } => {
            format!("{{\"kind\":\"{kind}\",\"host\":{}}}", host.0)
        }
        Transition::HostMove { host, to } => format!(
            "{{\"kind\":\"{kind}\",\"host\":{},\"switch\":{},\"port\":{}}}",
            host.0, to.switch.0, to.port.0
        ),
        Transition::ProcessPacket { switch }
        | Transition::ProcessOf { switch }
        | Transition::ControllerHandle { switch }
        | Transition::DiscoverStats { switch }
        | Transition::SwitchCrash { switch }
        | Transition::SwitchReconnect { switch } => {
            format!("{{\"kind\":\"{kind}\",\"switch\":{}}}", switch.0)
        }
        Transition::ProcessPacketOn { switch, port } => format!(
            "{{\"kind\":\"{kind}\",\"switch\":{},\"port\":{}}}",
            switch.0, port.0
        ),
        Transition::InjectStats { switch, stats } => format!(
            "{{\"kind\":\"{kind}\",\"switch\":{},\"stats\":{}}}",
            switch.0,
            stats_to_json(stats)
        ),
        Transition::ExpireRule { switch, rule_index } => format!(
            "{{\"kind\":\"{kind}\",\"switch\":{},\"rule_index\":{rule_index}}}",
            switch.0
        ),
        Transition::ChannelFault {
            switch,
            port,
            fault,
        } => format!(
            "{{\"kind\":\"{kind}\",\"switch\":{},\"port\":{},\"fault\":\"{}\"}}",
            switch.0,
            port.0,
            channel_fault_name(*fault)
        ),
        Transition::ControllerFailover => format!("{{\"kind\":\"{kind}\"}}"),
        Transition::MutateOfHead { switch, mutation } => format!(
            "{{\"kind\":\"{kind}\",\"switch\":{},\"mutation\":\"{}\"}}",
            switch.0,
            mutation.name()
        ),
    }
}

fn step_from_json(value: &Json) -> Result<TraceStep, String> {
    let obj = value.as_obj().ok_or("step must be an object")?;
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("step: missing \"kind\"")?;
    let num = |key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{kind}: missing numeric \"{key}\""))
    };
    let switch = |key: &str| -> Result<SwitchId, String> { Ok(SwitchId(num(key)? as u32)) };
    let host = || -> Result<HostId, String> { Ok(HostId(num("host")? as u32)) };
    let transition = match kind {
        "host_send" => Transition::HostSend {
            host: host()?,
            packet: packet_from_json(obj.get("packet").ok_or("host_send: missing \"packet\"")?)?,
        },
        "host_receive" => Transition::HostReceive { host: host()? },
        "host_move" => Transition::HostMove {
            host: host()?,
            to: Location {
                switch: switch("switch")?,
                port: PortId(num("port")? as u16),
            },
        },
        "process_pkt" => Transition::ProcessPacket {
            switch: switch("switch")?,
        },
        "process_pkt_on" => Transition::ProcessPacketOn {
            switch: switch("switch")?,
            port: PortId(num("port")? as u16),
        },
        "process_of" => Transition::ProcessOf {
            switch: switch("switch")?,
        },
        "ctrl_handle" => Transition::ControllerHandle {
            switch: switch("switch")?,
        },
        "discover_packets" => Transition::DiscoverPackets { host: host()? },
        "discover_stats" => Transition::DiscoverStats {
            switch: switch("switch")?,
        },
        "process_stats" => Transition::InjectStats {
            switch: switch("switch")?,
            stats: stats_from_json(obj.get("stats").ok_or("process_stats: missing \"stats\"")?)?,
        },
        "expire_rule" => Transition::ExpireRule {
            switch: switch("switch")?,
            rule_index: num("rule_index")? as usize,
        },
        "channel_fault" => {
            let name = obj
                .get("fault")
                .and_then(Json::as_str)
                .ok_or("channel_fault: missing \"fault\"")?;
            Transition::ChannelFault {
                switch: switch("switch")?,
                port: PortId(num("port")? as u16),
                fault: channel_fault_parse(name)
                    .ok_or_else(|| format!("channel_fault: unknown fault '{name}'"))?,
            }
        }
        "switch_crash" => Transition::SwitchCrash {
            switch: switch("switch")?,
        },
        "switch_reconnect" => Transition::SwitchReconnect {
            switch: switch("switch")?,
        },
        "ctrl_failover" => Transition::ControllerFailover,
        "mutate_of" => {
            let name = obj
                .get("mutation")
                .and_then(Json::as_str)
                .ok_or("mutate_of: missing \"mutation\"")?;
            Transition::MutateOfHead {
                switch: switch("switch")?,
                mutation: mutation_parse(name)
                    .ok_or_else(|| format!("mutate_of: unknown mutation '{name}'"))?,
            }
        }
        other => return Err(format!("unknown step kind '{other}'")),
    };
    Ok(TraceStep::Transition(transition))
}

/// Serializes a step sequence as a canonical JSON array of `nice-trace-v1`
/// step objects — the fragment the `nice-dist-v1` wire frames embed when a
/// worker forwards frontier states to the shard owner.
pub fn steps_to_json(steps: &[TraceStep]) -> String {
    let mut out = String::with_capacity(2 + steps.len() * 64);
    out.push('[');
    for (i, step) in steps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&step_to_json(step));
    }
    out.push(']');
    out
}

/// Parses a JSON array of `nice-trace-v1` step objects (the inverse of
/// [`steps_to_json`]), accepting either a raw JSON string or an
/// already-parsed [`json::Json`] array via [`steps_from_value`].
pub fn steps_from_json(input: &str) -> Result<Vec<TraceStep>, String> {
    steps_from_value(&json::parse(input)?)
}

/// Parses a step array out of an already-parsed JSON value.
pub fn steps_from_value(value: &Json) -> Result<Vec<TraceStep>, String> {
    let arr = value.as_arr().ok_or("steps must be an array")?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| step_from_json(v).map_err(|e| format!("step {i}: {e}")))
        .collect()
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser
// ---------------------------------------------------------------------------

pub use json::Json;

/// A minimal JSON value parser, originally private to trace
/// deserialization and now shared with the `nice-dist-v1` wire protocol.
///
/// `nice-mc` sits below the crates that could otherwise supply a parser,
/// and this offline build has no serde — so the trace format carries its
/// own ~150-line recursive-descent reader. Numbers keep their raw text, so
/// `u64` values round-trip exactly (no `f64` detour).
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, kept as its raw source text for exact integer reads.
        Num(String),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, as insertion-ordered key/value pairs.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean value, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The number as an exact `u64`, if this is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        /// The items, if this is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// A keyed-lookup view, if this is an object.
        pub fn as_obj(&self) -> Option<ObjRef<'_>> {
            match self {
                Json::Obj(pairs) => Some(ObjRef { pairs }),
                _ => None,
            }
        }

        /// Re-serializes the value as compact JSON. Numbers are emitted
        /// with their original source text, so a parse → render round trip
        /// is lossless for the integer-only documents the workspace emits.
        pub fn render(&self) -> String {
            match self {
                Json::Null => "null".to_string(),
                Json::Bool(b) => b.to_string(),
                Json::Num(raw) => raw.clone(),
                Json::Str(s) => format!("\"{}\"", super::escape(s)),
                Json::Arr(items) => {
                    let rendered: Vec<String> = items.iter().map(Json::render).collect();
                    format!("[{}]", rendered.join(","))
                }
                Json::Obj(pairs) => {
                    let rendered: Vec<String> = pairs
                        .iter()
                        .map(|(k, v)| format!("\"{}\":{}", super::escape(k), v.render()))
                        .collect();
                    format!("{{{}}}", rendered.join(","))
                }
            }
        }
    }

    /// A borrowed view of an object with keyed lookup.
    #[derive(Clone, Copy)]
    pub struct ObjRef<'a> {
        pairs: &'a [(String, Json)],
    }

    impl<'a> ObjRef<'a> {
        /// The value stored under `key`, if present.
        pub fn get(&self, key: &str) -> Option<&'a Json> {
            self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// Parses exactly one JSON value (with no trailing garbage).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, message: &str) -> String {
            format!("invalid JSON at byte {}: {}", self.pos, message)
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", byte as char)))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string().map(Json::Str),
                Some(b't') => self.literal("true").map(|_| Json::Bool(true)),
                Some(b'f') => self.literal("false").map(|_| Json::Bool(false)),
                Some(b'n') => self.literal("null").map(|_| Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn literal(&mut self, lit: &str) -> Result<(), String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected '{lit}'")))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut digits = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(self.err("expected digits in number"));
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid UTF-8 in number"))?;
            Ok(Json::Num(raw.to_string()))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{0008}'),
                            Some(b'f') => out.push('\u{000c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                self.pos += 1;
                                let code = self.hex4()?;
                                // BMP only: the trace writer never emits
                                // surrogate pairs (labels are ASCII).
                                out.push(
                                    char::from_u32(u32::from(code))
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                                continue;
                            }
                            _ => return Err(self.err("invalid escape")),
                        }
                        self.pos += 1;
                    }
                    Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u16, String> {
            let mut code: u16 = 0;
            for _ in 0..4 {
                let d = match self.peek() {
                    Some(c @ b'0'..=b'9') => c - b'0',
                    Some(c @ b'a'..=b'f') => c - b'a' + 10,
                    Some(c @ b'A'..=b'F') => c - b'A' + 10,
                    _ => return Err(self.err("expected 4 hex digits after \\u")),
                };
                code = code << 4 | u16::from(d);
                self.pos += 1;
            }
            // Leave pos on the last hex digit; caller's loop continues.
            self.pos -= 1;
            self.pos += 1;
            Ok(code)
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            self.skip_ws();
            let mut pairs = Vec::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(self.err("expected ',' or '}' in object")),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            self.skip_ws();
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(self.err("expected ',' or ']' in array")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let packet = Packet::l2_ping(7, MacAddr::for_host(1), MacAddr::for_host(2), 3);
        Trace {
            scenario: "hub-ping".to_string(),
            engine: TraceEngine::default(),
            steps: vec![
                TraceStep::Transition(Transition::HostSend {
                    host: HostId(1),
                    packet,
                }),
                TraceStep::Transition(Transition::ProcessPacket {
                    switch: SwitchId(1),
                }),
                TraceStep::Transition(Transition::ChannelFault {
                    switch: SwitchId(1),
                    port: PortId(2),
                    fault: ChannelFault::DropHead,
                }),
                TraceStep::Transition(Transition::ControllerFailover),
                TraceStep::Transition(Transition::MutateOfHead {
                    switch: SwitchId(2),
                    mutation: OfMutation::ZeroPriority,
                }),
                TraceStep::Transition(Transition::InjectStats {
                    switch: SwitchId(1),
                    stats: vec![PortStatsEntry {
                        port: PortId(1),
                        rx_packets: 3,
                        tx_packets: 4,
                        rx_bytes: 1500,
                        tx_bytes: 9000,
                    }],
                }),
            ],
            property: Some("NoAbandonedPackets".to_string()),
            message: Some("packet 7 was \"lost\"".to_string()),
        }
    }

    #[test]
    fn json_round_trip_preserves_every_step() {
        let trace = sample_trace();
        let json = trace.to_json();
        let parsed = Trace::from_json(&json).expect("round trip");
        assert_eq!(trace, parsed);
        // Canonical serialization: re-serializing yields identical bytes.
        assert_eq!(json, parsed.to_json());
    }

    #[test]
    fn every_transition_kind_round_trips() {
        let all = vec![
            Transition::HostSend {
                host: HostId(3),
                packet: Packet::l2_ping(9, MacAddr::for_host(3), MacAddr::for_host(4), 0),
            },
            Transition::HostReceive { host: HostId(2) },
            Transition::HostMove {
                host: HostId(1),
                to: Location {
                    switch: SwitchId(2),
                    port: PortId(3),
                },
            },
            Transition::ProcessPacket {
                switch: SwitchId(1),
            },
            Transition::ProcessPacketOn {
                switch: SwitchId(1),
                port: PortId(2),
            },
            Transition::ProcessOf {
                switch: SwitchId(4),
            },
            Transition::ControllerHandle {
                switch: SwitchId(5),
            },
            Transition::DiscoverPackets { host: HostId(1) },
            Transition::DiscoverStats {
                switch: SwitchId(1),
            },
            Transition::InjectStats {
                switch: SwitchId(1),
                stats: vec![PortStatsEntry::zero(PortId(1))],
            },
            Transition::ExpireRule {
                switch: SwitchId(2),
                rule_index: 5,
            },
            Transition::ChannelFault {
                switch: SwitchId(1),
                port: PortId(1),
                fault: ChannelFault::FailLink,
            },
            Transition::SwitchCrash {
                switch: SwitchId(3),
            },
            Transition::SwitchReconnect {
                switch: SwitchId(3),
            },
            Transition::ControllerFailover,
            Transition::MutateOfHead {
                switch: SwitchId(1),
                mutation: OfMutation::DropActions,
            },
        ];
        let trace = Trace::from_transitions("kinds", TraceEngine::default(), all.clone());
        let parsed = Trace::from_json(&trace.to_json()).expect("round trip");
        let transitions = parsed.transitions();
        assert_eq!(transitions.len(), all.len());
        for (original, parsed) in all.iter().zip(transitions) {
            assert_eq!(original, parsed);
        }
    }

    #[test]
    fn labels_match_transition_display() {
        let trace = sample_trace();
        for (step, label) in trace.iter().zip(trace.labels()) {
            assert_eq!(step.to_string(), label);
        }
    }

    #[test]
    fn opaque_step_kind_is_gone_from_the_schema() {
        // The deprecated label-only steps were removed: a document carrying
        // the old "opaque" kind is rejected like any unknown kind.
        let legacy = "{\"schema\":\"nice-trace-v1\",\"scenario\":\"x\",\"property\":null,\
             \"message\":null,\"engine\":{\"strategy\":\"pkt-seq\",\"reduction\":\"none\",\
             \"workers\":1,\"faults\":false,\"coarse_packet_processing\":true},\
             \"steps\":[{\"kind\":\"opaque\",\"label\":\"step one\"}]}";
        let err = Trace::from_json(legacy).unwrap_err();
        assert!(err.contains("unknown step kind"), "{err}");
    }

    #[test]
    fn step_arrays_round_trip_standalone() {
        let trace = sample_trace();
        let json = steps_to_json(&trace.steps);
        let parsed = steps_from_json(&json).expect("round trip");
        assert_eq!(parsed, trace.steps);
        // A rendered Json value re-parses to the same steps (the dist wire
        // frames embed step arrays as nested values and re-render them).
        let value = json::parse(&json).expect("parse");
        assert_eq!(steps_from_value(&value).expect("from value"), trace.steps);
        assert_eq!(value.render(), json);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Trace::from_json("").is_err());
        assert!(Trace::from_json("{}").is_err());
        assert!(Trace::from_json("{\"schema\":\"nice-trace-v0\"}").is_err());
        assert!(Trace::from_json("[1,2,3]").is_err());
        let missing_engine = "{\"schema\":\"nice-trace-v1\",\"scenario\":\"x\",\"property\":null,\
             \"message\":null,\"steps\":[]}";
        assert!(Trace::from_json(missing_engine).is_err());
        let bad_step = "{\"schema\":\"nice-trace-v1\",\"scenario\":\"x\",\"property\":null,\
             \"message\":null,\"engine\":{\"strategy\":\"pkt-seq\",\"reduction\":\"none\",\
             \"workers\":1,\"faults\":false,\"coarse_packet_processing\":true},\
             \"steps\":[{\"kind\":\"warp\"}]}";
        let err = Trace::from_json(bad_step).unwrap_err();
        assert!(err.contains("unknown step kind"), "{err}");
    }

    #[test]
    fn engine_metadata_round_trips_for_every_strategy_and_reduction() {
        for strategy in StrategyKind::ALL {
            for reduction in ReductionKind::ALL {
                let engine = TraceEngine {
                    strategy,
                    reduction,
                    workers: 4,
                    faults: true,
                    coarse_packet_processing: false,
                };
                let trace = Trace::from_transitions("t", engine, []);
                let parsed = Trace::from_json(&trace.to_json()).expect("round trip");
                assert_eq!(parsed.engine, engine);
                assert_eq!(parsed.engine.label(), "parallel");
            }
        }
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let mut trace = sample_trace();
        trace.message = Some("quote \" backslash \\ newline \n tab \t".to_string());
        let parsed = Trace::from_json(&trace.to_json()).expect("round trip");
        assert_eq!(parsed.message, trace.message);
    }
}
