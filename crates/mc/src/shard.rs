//! Fingerprint-space sharding: the distributed explored set.
//!
//! A [`ShardedSearch`] is one shard of a depth-first search whose explored
//! set is partitioned over `count` peers by fingerprint prefix
//! ([`ShardSpec::owns`]). The shard expands only the states it owns;
//! every successor whose fingerprint belongs to another shard is *exported*
//! as a replayable [`FrontierExport`] (its transition trace from the
//! initial state plus its sleep set) instead of being explored locally.
//! Whoever drives the search — the `nice-dist` coordinator, or a test
//! harness running several shards in one process — routes each export to
//! its owner, which [`ShardedSearch::inject`]s it.
//!
//! Because every fingerprint has exactly one owner, global deduplication is
//! exact: each unique state is expanded by exactly one shard, and with no
//! truncating budget the *sum* of the shards' `transitions`,
//! `unique_states`, `terminal_states` and `dedup_hits` equals the
//! sequential engine's counts. A single solo shard ([`ShardSpec::solo`])
//! *is* the sequential engine: [`ModelChecker`]'s sequential search is
//! implemented as a solo `ShardedSearch`, so the equivalence is by
//! construction, not by parallel maintenance.
//!
//! Injected states are rebuilt by replaying their trace from the initial
//! state (the Section 6 replay storage mode, independent of the shard's
//! own [`StateStorage`](crate::scenario::StateStorage) configuration for
//! locally-generated nodes). Replays do not count as explored transitions,
//! exactly as in checkpoint/replay storage.

use crate::checker::{CheckReport, ModelChecker, Node, Snapshot};
use crate::explored::{build_store, ExploredStore, Visit};
use crate::properties::Event;
use crate::session::SessionCtrl;
use crate::state::SystemState;
use crate::strategy::{build_reduction, build_strategy, Reduction, SearchStrategy};
use crate::transition::{enabled_transitions, DiscoveryMemo, Transition};
use std::sync::Arc;
use std::time::Instant;

/// Maps a state fingerprint to its owning shard.
///
/// This is THE shard-selection function: every component that partitions
/// the fingerprint space — [`ShardSpec::owns`], the `nice-dist`
/// coordinator's forward routing, in-process multi-shard test harnesses —
/// must route through it, so a state exported by one component is always
/// accepted by the shard the others would pick.
///
/// Ownership is decided by the *top byte* of the fingerprint (bits
/// `56..=63`), taken modulo the shard count:
///
/// * the explored set's identity hashers bucket on the *low* bits, so the
///   top bits are uniformly free for sharding;
/// * the in-process explored store shards internally on bits `48..=55`
///   (see `crate::explored`), deliberately disjoint from this byte so
///   distributed sharding composes with store sharding instead of
///   concentrating each dist-shard's states into few store shards.
///
/// `count <= 1` always maps to shard 0 (the solo search).
pub fn shard_of(fingerprint: u64, count: u32) -> u32 {
    if count <= 1 {
        return 0;
    }
    ((fingerprint >> 56) as u32) % count
}

/// Which slice of the fingerprint space a search owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl ShardSpec {
    /// The single shard that owns the whole fingerprint space — the
    /// sequential engine.
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// True if this shard owns `fingerprint` (see [`shard_of`]).
    pub fn owns(&self, fingerprint: u64) -> bool {
        shard_of(fingerprint, self.count) == self.index
    }
}

/// A frontier state exported to the shard that owns its fingerprint:
/// enough to rebuild the state anywhere (replay `trace` from the initial
/// state) and to keep partial-order reduction sound across the handoff
/// (`sleep` travels with the node exactly as it does locally).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierExport {
    /// The state's 64-bit fingerprint (computed by the exporting shard; the
    /// owner re-derives nothing, ownership and deduplication key off this).
    pub fingerprint: u64,
    /// The transition path from the initial state to this state.
    pub trace: Vec<Transition>,
    /// The sleep set the state was generated under (empty without POR).
    pub sleep: Vec<Transition>,
}

/// What one [`ShardedSearch::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A frontier node was popped and expanded.
    Expanded,
    /// The local frontier is empty — the shard is waiting for injections
    /// (or, if every peer is idle and nothing is in flight, the search is
    /// done).
    Idle,
    /// The search stopped for good: cancelled, budget exhausted with
    /// `stop_at_first_violation`, or a first violation under
    /// `stop_at_first_violation`. No further steps will expand anything.
    Stopped,
}

/// One shard of a (possibly distributed) depth-first search. See the
/// [module docs](self) for the ownership/forwarding contract.
pub struct ShardedSearch<'a> {
    checker: &'a ModelChecker,
    shard: ShardSpec,
    strategy: Box<dyn SearchStrategy>,
    reduction: Box<dyn Reduction>,
    memo: DiscoveryMemo,
    report: CheckReport,
    /// The shard's explored set, in whatever storage mode
    /// [`CheckerConfig::explored`](crate::scenario::CheckerConfig) selects —
    /// a `nice serve` worker running a tiered store spills to disk exactly
    /// like a local run would.
    explored: Box<dyn ExploredStore>,
    root: Arc<Snapshot>,
    stack: Vec<Node>,
    events: Vec<Event>,
    forwards: Vec<FrontierExport>,
    stopped: bool,
    start: Instant,
}

impl<'a> ShardedSearch<'a> {
    /// Creates the shard and seeds the initial state — on the shard that
    /// owns its fingerprint only; every other shard starts idle.
    pub fn new(checker: &'a ModelChecker, shard: ShardSpec) -> Self {
        let start = Instant::now();
        let scenario = checker.scenario();
        let initial_state = SystemState::initial(scenario);
        let initial_fingerprint = initial_state.fingerprint();
        let root = Arc::new(Snapshot {
            state: initial_state,
            properties: scenario.properties.clone(),
        });
        let mut search = ShardedSearch {
            checker,
            shard,
            strategy: build_strategy(checker.config().strategy),
            reduction: build_reduction(checker.config().reduction),
            memo: DiscoveryMemo::default(),
            report: CheckReport::default(),
            explored: build_store(&checker.config().explored),
            root,
            stack: Vec::new(),
            events: Vec::new(),
            forwards: Vec::new(),
            stopped: false,
            start,
        };
        if shard.owns(initial_fingerprint) {
            search.explored.visit(initial_fingerprint, &[]);
            search.report.stats.unique_states = 1;
            search.stack.push(Node {
                base: Arc::clone(&search.root),
                base_depth: 0,
                trace: Vec::new(),
                sleep: Vec::new(),
                revisit: false,
            });
        }
        search
    }

    /// The shard this search owns.
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// The report accumulated so far (stats and violations grow as the
    /// search steps; `duration`/`symbolic_executions` are finalized by
    /// [`ShardedSearch::finish`]).
    pub fn report(&self) -> &CheckReport {
        &self.report
    }

    /// Number of frontier nodes waiting locally.
    pub fn pending(&self) -> usize {
        self.stack.len()
    }

    /// Stops the search: every subsequent [`ShardedSearch::step`] returns
    /// [`StepOutcome::Stopped`] and injections are refused.
    pub fn cancel(&mut self) {
        self.stopped = true;
    }

    /// True once the search has stopped for good.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Drains the states exported for other shards since the last call.
    pub fn take_forwards(&mut self) -> Vec<FrontierExport> {
        std::mem::take(&mut self.forwards)
    }

    /// Accepts a state exported by a peer shard. Returns true if the state
    /// was new (or re-opened with a narrowed sleep set) and queued for
    /// expansion; false if it was already explored (a deduplication hit,
    /// counted exactly as a locally re-reached state would be), not owned
    /// by this shard, or the search has stopped.
    pub fn inject(&mut self, export: FrontierExport) -> bool {
        if self.stopped || !self.shard.owns(export.fingerprint) {
            return false;
        }
        let mut digests: Vec<u64> = export.sleep.iter().map(Transition::digest).collect();
        digests.sort_unstable();
        digests.dedup();
        match self.explored.visit(export.fingerprint, &digests) {
            Visit::New => {
                self.report.stats.unique_states += 1;
                self.stack.push(Node {
                    base: Arc::clone(&self.root),
                    base_depth: 0,
                    trace: export.trace,
                    sleep: export.sleep,
                    revisit: false,
                });
                true
            }
            Visit::Known => {
                self.report.stats.dedup_hits += 1;
                false
            }
            Visit::Widen(narrowed) => {
                let sleep: Vec<Transition> = export
                    .sleep
                    .into_iter()
                    .filter(|t| narrowed.binary_search(&t.digest()).is_ok())
                    .collect();
                self.stack.push(Node {
                    base: Arc::clone(&self.root),
                    base_depth: 0,
                    trace: export.trace,
                    sleep,
                    revisit: true,
                });
                true
            }
        }
    }

    /// Pops and expands one frontier node (depth-first). Successors owned
    /// by this shard are deduplicated and queued; the rest are exported for
    /// [`ShardedSearch::take_forwards`].
    pub fn step(&mut self) -> StepOutcome {
        self.step_ctrl(None)
    }

    /// [`ShardedSearch::step`] under a session's control handles: the
    /// sequential engine routes interruption, progress heartbeats and live
    /// violation events through `ctrl`. This is the *only* expansion loop —
    /// `ModelChecker`'s sequential search is a solo-shard driver around it.
    pub(crate) fn step_ctrl(&mut self, ctrl: Option<&SessionCtrl>) -> StepOutcome {
        if self.stopped {
            return StepOutcome::Stopped;
        }
        if let Some(ctrl) = ctrl {
            if ctrl.check_interrupt().is_some() {
                self.stopped = true;
                return StepOutcome::Stopped;
            }
        }
        let Some(node) = self.stack.pop() else {
            return StepOutcome::Idle;
        };
        let checker = self.checker;
        let config = checker.config();
        let report = &mut self.report;
        report.stats.max_depth = report.stats.max_depth.max(node.trace.len());

        let revisit = node.revisit;
        let parent_base = checker.parent_base(&node);
        let (state, properties, trace, sleep) =
            checker.materialize(node, self.strategy.as_ref(), &mut self.memo);

        let enabled = enabled_transitions(&state, checker.scenario(), config);
        let enabled_count = enabled.len();
        let enabled = self.strategy.select(&state, enabled);
        report.stats.pruned_by_strategy += (enabled_count - enabled.len()) as u64;

        if enabled.is_empty() {
            // A widened revisit of a terminal state was already counted
            // (and final-checked) on its first visit.
            if !revisit {
                report.stats.terminal_states += 1;
                for property in &properties {
                    if let Some(message) = property.check_final(&state) {
                        checker.record_violation(report, property.name(), message, &trace, None);
                        if let Some(ctrl) = ctrl {
                            ctrl.notify_violation(report.violations.last().unwrap());
                        }
                        if config.stop_at_first_violation {
                            self.stopped = true;
                            return StepOutcome::Stopped;
                        }
                    }
                }
            }
            return StepOutcome::Expanded;
        }

        if trace.len() >= config.max_depth {
            report.stats.truncated = true;
            return StepOutcome::Expanded;
        }

        let choice = self
            .reduction
            .select(&state, checker.scenario(), enabled, &sleep);
        report.stats.pruned_by_por += choice.pruned;
        let mut child_sleeps =
            self.reduction
                .child_sleeps(&state, checker.scenario(), &choice.explore, &sleep);

        for (index, transition) in choice.explore.into_iter().enumerate() {
            if config.max_transitions > 0 && report.stats.transitions >= config.max_transitions {
                report.stats.truncated = true;
                self.stopped = true;
                return StepOutcome::Stopped;
            }

            let (next_state, next_properties, violations) = checker.step_transition(
                &state,
                &properties,
                &transition,
                self.strategy.as_ref(),
                &mut self.memo,
                &mut self.events,
            );
            report.stats.transitions += 1;
            report.stats.faults.record(&transition);
            if let Some(ctrl) = ctrl {
                ctrl.maybe_progress(
                    report.stats.transitions,
                    report.stats.unique_states,
                    trace.len() + 1,
                    self.explored.bytes(),
                );
            }

            let violated = !violations.is_empty();
            for (property, message) in violations {
                checker.record_violation(report, &property, message, &trace, Some(&transition));
                if let Some(ctrl) = ctrl {
                    ctrl.notify_violation(report.violations.last().unwrap());
                }
            }
            if violated {
                if config.stop_at_first_violation {
                    self.stopped = true;
                    return StepOutcome::Stopped;
                }
                // Do not explore past a violating state: the trace is the
                // shortest continuation through this branch and deeper
                // states would just repeat the same violation.
                continue;
            }

            let child_sleep = std::mem::take(&mut child_sleeps[index]);
            let fingerprint = next_state.fingerprint();
            if !self.shard.owns(fingerprint) {
                // Another shard owns this state: export it instead of
                // exploring (or deduplicating) it here. The owner performs
                // the visit, so the global unique/dedup accounting matches
                // the sequential engine's exactly.
                let mut child_trace = trace.clone();
                child_trace.push(transition.clone());
                self.forwards.push(FrontierExport {
                    fingerprint,
                    trace: child_trace,
                    sleep: child_sleep,
                });
                continue;
            }
            let mut child_digests: Vec<u64> = child_sleep.iter().map(Transition::digest).collect();
            child_digests.sort_unstable();
            child_digests.dedup();

            match self.explored.visit(fingerprint, &child_digests) {
                Visit::New => {
                    report.stats.unique_states += 1;
                    let mut child_trace = trace.clone();
                    child_trace.push(transition.clone());
                    self.stack.push(checker.make_node(
                        &self.root,
                        &parent_base,
                        child_trace,
                        next_state,
                        next_properties,
                        child_sleep,
                    ));
                }
                Visit::Known => {
                    report.stats.dedup_hits += 1;
                }
                Visit::Widen(narrowed) => {
                    // The state was explored before, but with stronger
                    // pruning than this path justifies: re-expand it
                    // with the narrowed sleep set so nothing reachable
                    // only through the previously pruned transitions is
                    // missed.
                    let narrowed_sleep: Vec<Transition> = child_sleep
                        .into_iter()
                        .filter(|t| narrowed.binary_search(&t.digest()).is_ok())
                        .collect();
                    let mut child_trace = trace.clone();
                    child_trace.push(transition.clone());
                    let mut node = checker.make_node(
                        &self.root,
                        &parent_base,
                        child_trace,
                        next_state,
                        next_properties,
                        narrowed_sleep,
                    );
                    node.revisit = true;
                    self.stack.push(node);
                }
            }
        }
        StepOutcome::Expanded
    }

    /// Finalizes and returns the shard's report (duration, symbolic
    /// execution count).
    pub fn finish(self) -> CheckReport {
        let mut report = self.report;
        report.stats.symbolic_executions = self.memo.symbolic_executions;
        report.stats.absorb_explored(self.explored.stats());
        report.lossy = self.explored.lossy();
        report.stats.duration = self.start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CheckerConfig, ReductionKind};
    use crate::testutil;

    /// Runs `count` shards in one process, routing forwards by ownership,
    /// and returns the merged report (the coordinator's merge, in
    /// miniature).
    fn run_sharded(make: impl Fn() -> ModelChecker, count: u32) -> CheckReport {
        let checkers: Vec<ModelChecker> = (0..count).map(|_| make()).collect();
        let mut shards: Vec<ShardedSearch<'_>> = checkers
            .iter()
            .enumerate()
            .map(|(i, c)| {
                ShardedSearch::new(
                    c,
                    ShardSpec {
                        index: i as u32,
                        count,
                    },
                )
            })
            .collect();
        loop {
            let mut progressed = false;
            for i in 0..shards.len() {
                while shards[i].step() == StepOutcome::Expanded {
                    progressed = true;
                }
                for export in shards[i].take_forwards() {
                    let owner = shard_of(export.fingerprint, count) as usize;
                    if shards[owner].inject(export) {
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let mut merged = CheckReport::default();
        for shard in shards {
            let report = shard.finish();
            merged.stats.transitions += report.stats.transitions;
            merged.stats.unique_states += report.stats.unique_states;
            merged.stats.terminal_states += report.stats.terminal_states;
            merged.stats.dedup_hits += report.stats.dedup_hits;
            merged.stats.truncated |= report.stats.truncated;
            merged.violations.extend(report.violations);
        }
        merged.sort_violations();
        merged
    }

    fn exhaustive_config() -> CheckerConfig {
        CheckerConfig {
            stop_at_first_violation: false,
            ..CheckerConfig::default()
        }
    }

    #[test]
    fn shard_of_uses_the_top_byte_modulo_count() {
        // Solo searches own everything regardless of the fingerprint.
        assert_eq!(shard_of(u64::MAX, 0), 0);
        assert_eq!(shard_of(u64::MAX, 1), 0);
        // Only bits 56..=63 participate: low bits never change the owner.
        for fp in [0u64, 0xffff_ffff_ffff, 0x00ff_ffff_ffff_ffff] {
            assert_eq!(shard_of(fp, 4), 0, "{fp:#x}");
        }
        for top in 0..=255u64 {
            let fp = (top << 56) | 0x1234_5678_9abc;
            assert_eq!(shard_of(fp, 4), (top % 4) as u32);
            assert_eq!(shard_of(fp, 7), (top % 7) as u32);
            // Always a valid index.
            assert!(shard_of(fp, 3) < 3);
        }
        // `owns` agrees with `shard_of` by construction.
        let spec = ShardSpec { index: 2, count: 5 };
        for top in 0..=255u64 {
            let fp = top << 56;
            assert_eq!(spec.owns(fp), shard_of(fp, 5) == 2);
        }
    }

    #[test]
    fn solo_shard_owns_everything() {
        let solo = ShardSpec::solo();
        for fp in [0, 1, u64::MAX, 0x7f00_0000_0000_0000] {
            assert!(solo.owns(fp));
        }
        let spec = ShardSpec { index: 1, count: 4 };
        assert!(spec.owns(1u64 << 56));
        assert!(!spec.owns(0));
        // Every fingerprint has exactly one owner.
        for fp in (0..=255u64).map(|b| b << 56) {
            let owners = (0..4)
                .filter(|&i| ShardSpec { index: i, count: 4 }.owns(fp))
                .count();
            assert_eq!(owners, 1, "fingerprint {fp:#x}");
        }
    }

    #[test]
    fn sharded_run_matches_sequential_counts_and_verdict() {
        let make = || {
            ModelChecker::new(
                testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 2),
                exhaustive_config(),
            )
        };
        let sequential = make().run();
        for count in [2u32, 4] {
            let merged = run_sharded(make, count);
            assert_eq!(
                merged.stats.transitions, sequential.stats.transitions,
                "{count} shards: transitions"
            );
            assert_eq!(
                merged.stats.unique_states, sequential.stats.unique_states,
                "{count} shards: unique states"
            );
            assert_eq!(
                merged.stats.terminal_states, sequential.stats.terminal_states,
                "{count} shards: terminal states"
            );
            assert_eq!(
                merged.stats.dedup_hits, sequential.stats.dedup_hits,
                "{count} shards: dedup hits"
            );
            let mut expect: Vec<(String, String)> = sequential
                .violations
                .iter()
                .map(|v| (v.property.clone(), v.message.clone()))
                .collect();
            expect.sort();
            expect.dedup();
            let mut got: Vec<(String, String)> = merged
                .violations
                .iter()
                .map(|v| (v.property.clone(), v.message.clone()))
                .collect();
            got.sort();
            got.dedup();
            assert_eq!(got, expect, "{count} shards: violation set");
        }
    }

    #[test]
    fn sharded_por_run_finds_the_same_violations() {
        let make = || {
            ModelChecker::new(
                testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 2),
                CheckerConfig {
                    reduction: ReductionKind::Por,
                    ..exhaustive_config()
                },
            )
        };
        let sequential = make().run();
        let merged = run_sharded(make, 3);
        let mut expect: Vec<&str> = sequential
            .violations
            .iter()
            .map(|v| v.property.as_str())
            .collect();
        expect.sort();
        expect.dedup();
        let mut got: Vec<&str> = merged
            .violations
            .iter()
            .map(|v| v.property.as_str())
            .collect();
        got.sort();
        got.dedup();
        assert_eq!(got, expect);
    }

    #[test]
    fn exported_frontier_replays_to_the_same_fingerprint() {
        let checker = ModelChecker::new(testutil::hub_ping_scenario(1), exhaustive_config());
        let mut shard = ShardedSearch::new(&checker, ShardSpec { index: 0, count: 2 });
        // Run shard 0 dry and check each export replays to its fingerprint.
        while shard.step() == StepOutcome::Expanded {}
        let exports = shard.take_forwards();
        if exports.is_empty() {
            // Tiny state space may land entirely in one shard; nothing to
            // check in that case (the equivalence tests above cover real
            // splits).
            return;
        }
        for export in exports {
            let mut replayer =
                crate::replay::Replayer::new(&checker, &crate::trace::TraceEngine::default());
            for t in &export.trace {
                replayer.step_unchecked(t);
            }
            assert_eq!(replayer.fingerprint(), export.fingerprint);
        }
    }
}
