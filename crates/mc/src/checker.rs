//! The state-space search loop (Figure 5), violation traces and search
//! statistics, plus a random-walk simulation mode.
//!
//! # Search engines
//!
//! [`ModelChecker::run`] dispatches on [`CheckerConfig::workers`]:
//!
//! * `workers == 1` (default) — the canonical sequential depth-first search.
//!   Fully deterministic: a fixed scenario and configuration always yield the
//!   same transition count, unique-state count and violation traces.
//! * `workers > 1` — a work-sharing parallel search. Worker threads pop
//!   frontier nodes from a shared LIFO queue and deduplicate states through a
//!   sharded fingerprint set, so each unique state is expanded exactly once
//!   across all workers. With no truncating budget the parallel search visits
//!   the same state space as the sequential one (identical `unique_states`
//!   and `transitions`, same set of violated properties), but the *order* of
//!   exploration — and therefore which trace first reaches a violating
//!   state, and where a `max_transitions` budget cuts off — is scheduling
//!   dependent.
//!
//! # Frontier storage modes
//!
//! Every frontier node keeps its transition trace (it doubles as the
//! violation trace). What else is kept is governed by
//! [`StateStorage`](crate::scenario::StateStorage):
//!
//! * `Full` — each node carries a snapshot of its exact state. Since
//!   [`SystemState`] is copy-on-write, the snapshot shares everything the
//!   child did not modify with its parent, so this is the default and is
//!   both fast and reasonably small.
//! * `Replay` — nodes carry no state; expanding a node re-executes its whole
//!   trace from the initial state (the paper's Section 6 memory-saving
//!   mode). Cheapest per node, O(depth) re-execution per expansion.
//! * `Checkpoint { interval }` — the hybrid: a copy-on-write snapshot is
//!   taken every `interval` transitions of depth and shared (via `Arc`) by
//!   every descendant node until the next checkpoint; expanding a node
//!   replays only the suffix since its nearest checkpoint — at most
//!   `interval - 1` transitions instead of the full depth.
//!
//! The explored set stores only 64-bit state fingerprints (Section 6 of the
//! paper), in a map keyed by an identity hasher: the fingerprints are
//! already uniformly distributed, so re-hashing them through SipHash would be
//! pure overhead. Under partial-order reduction
//! ([`CheckerConfig::reduction`](crate::scenario::CheckerConfig)) each
//! fingerprint additionally remembers the sleep set it was explored with —
//! see [`FingerprintMap`] for why that keeps sleep sets sound under state
//! matching.

use crate::properties::{Event, Property};
use crate::scenario::{CheckerConfig, Scenario, StateStorage};
use crate::session::{Outcome, SessionCtrl};
use crate::state::SystemState;
use crate::strategy::{build_reduction, build_strategy, SearchStrategy};
use crate::trace::{Trace, TraceEngine, TraceStep};
use crate::transition::{
    drain_control_plane, enabled_transitions, execute, DiscoveryMemo, SharedDiscoveryCache,
    Transition,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A property violation together with the trace that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated property.
    pub property: String,
    /// The violation message.
    pub message: String,
    /// The typed, replayable transitions from the initial state that
    /// reproduce the violation, in order, plus the scenario name and engine
    /// configuration they were recorded under. Serialize with
    /// [`Trace::to_json`], re-execute with
    /// [`ModelChecker::replay`](crate::replay), render labels with
    /// [`Trace::labels`].
    pub trace: Trace,
    /// How many transitions had been explored when the violation was found.
    pub transitions_explored: u64,
    /// How many unique states had been seen when the violation was found.
    pub unique_states: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation of {}: {}", self.property, self.message)?;
        writeln!(
            f,
            "  found after {} transitions / {} unique states; trace ({} steps):",
            self.transitions_explored,
            self.unique_states,
            self.trace.len()
        )?;
        // `Trace`'s Display renders exactly the numbered-label lines the
        // stringified representation printed, keeping this byte-identical.
        write!(f, "{}", self.trace)
    }
}

/// Per-kind counters of injected fault transitions, indexed by
/// [`Transition::fault_counter_index`]. All zero unless the scenario has an
/// enabled [`FaultPlan`](crate::faults::FaultPlan) *and* the checker ran with
/// fault injection switched on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped from an ingress channel head.
    pub drops: u64,
    /// Packets duplicated at an ingress channel head.
    pub duplicates: u64,
    /// Adjacent-packet reorderings on an ingress channel.
    pub reorders: u64,
    /// Ingress link failures.
    pub link_failures: u64,
    /// Switch crashes.
    pub crashes: u64,
    /// Switch reconnects (recovery; does not consume budget).
    pub reconnects: u64,
    /// Controller failovers to the standby runtime.
    pub failovers: u64,
    /// Byzantine mutations of in-flight OpenFlow messages.
    pub mutations: u64,
}

impl FaultStats {
    /// Number of distinct fault kinds tracked.
    pub const KINDS: usize = 8;

    /// Builds the counters from an array indexed by
    /// [`Transition::fault_counter_index`].
    pub fn from_counts(counts: [u64; Self::KINDS]) -> Self {
        FaultStats {
            drops: counts[0],
            duplicates: counts[1],
            reorders: counts[2],
            link_failures: counts[3],
            crashes: counts[4],
            reconnects: counts[5],
            failovers: counts[6],
            mutations: counts[7],
        }
    }

    /// The counters labelled with their stable (JSON-schema) names, in
    /// [`Transition::fault_counter_index`] order.
    pub fn labeled(&self) -> [(&'static str, u64); Self::KINDS] {
        [
            ("drops", self.drops),
            ("duplicates", self.duplicates),
            ("reorders", self.reorders),
            ("link_failures", self.link_failures),
            ("crashes", self.crashes),
            ("reconnects", self.reconnects),
            ("failovers", self.failovers),
            ("mutations", self.mutations),
        ]
    }

    /// Counts one executed transition if it is a fault injection.
    pub fn record(&mut self, transition: &Transition) {
        if let Some(index) = transition.fault_counter_index() {
            self.bump(index);
        }
    }

    /// Increments the counter at `index` (a
    /// [`Transition::fault_counter_index`] value).
    pub fn bump(&mut self, index: usize) {
        match index {
            0 => self.drops += 1,
            1 => self.duplicates += 1,
            2 => self.reorders += 1,
            3 => self.link_failures += 1,
            4 => self.crashes += 1,
            5 => self.reconnects += 1,
            6 => self.failovers += 1,
            7 => self.mutations += 1,
            _ => panic!("fault counter index {index} out of range"),
        }
    }

    /// Total fault transitions executed, across all kinds.
    pub fn total(&self) -> u64 {
        self.labeled().iter().map(|(_, n)| n).sum()
    }

    /// True if any fault transition was executed.
    pub fn any(&self) -> bool {
        self.total() > 0
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (label, count) in self.labeled() {
            if count > 0 {
                if !first {
                    write!(f, " | ")?;
                }
                write!(f, "{label}: {count}")?;
                first = false;
            }
        }
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// Aggregate statistics of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Transitions executed.
    pub transitions: u64,
    /// Unique states encountered (by fingerprint).
    pub unique_states: u64,
    /// Terminal states reached (states with no enabled transitions).
    pub terminal_states: u64,
    /// Concolic explorations executed (cache misses of the discovery memo).
    pub symbolic_executions: u64,
    /// Enabled transitions the search strategy filtered out before
    /// execution (NO-DELAY/FLOW-IR/UNUSUAL restrictions).
    pub pruned_by_strategy: u64,
    /// Strategy-selected transitions the partial-order reduction pruned
    /// before execution (sleep-set hits plus persistent-set exclusions).
    pub pruned_by_por: u64,
    /// Executed transitions whose successor state had already been explored
    /// (fingerprint dedup after execution).
    pub dedup_hits: u64,
    /// Injected-fault counters, by kind (all zero without fault injection).
    pub faults: FaultStats,
    /// Deepest path explored.
    pub max_depth: usize,
    /// True if a budget (transition or depth limit) cut the search short.
    pub truncated: bool,
    /// Wall-clock duration of the search.
    pub duration: Duration,
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Every violation found (just the first one when
    /// `stop_at_first_violation` is set).
    pub violations: Vec<Violation>,
    /// Search statistics.
    pub stats: SearchStats,
    /// How the search ended: ran to its natural end (possibly
    /// budget-truncated — see [`SearchStats::truncated`]) or stopped early
    /// by a session's cancel token or deadline.
    pub outcome: Outcome,
}

impl CheckReport {
    /// True if no property was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Imposes the stable violation order racing engines (the parallel
    /// search's worker threads, the distributed coordinator's shards) need:
    /// shortest trace first, then lexicographic by property, rendered
    /// labels and message. [`CheckReport::first_violation`] then means "a
    /// shortest witness".
    pub fn sort_violations(&mut self) {
        self.violations.sort_by(|a, b| {
            (a.trace.len(), &a.property, a.trace.labels(), &a.message).cmp(&(
                b.trace.len(),
                &b.property,
                b.trace.labels(),
                &b.message,
            ))
        });
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | outcome: {} | transitions: {} | unique states: {} | terminal states: {} | time: {:.2?}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.outcome.label(self.stats.truncated),
            self.stats.transitions,
            self.stats.unique_states,
            self.stats.terminal_states,
            self.stats.duration,
        )?;
        writeln!(
            f,
            "  pruned by strategy: {} | pruned by POR: {} | dedup hits: {}",
            self.stats.pruned_by_strategy, self.stats.pruned_by_por, self.stats.dedup_hits
        )?;
        if self.stats.faults.any() {
            writeln!(f, "  injected faults: {}", self.stats.faults)?;
        }
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fingerprint set
// ---------------------------------------------------------------------------

/// Identity hasher for values that are already 64-bit fingerprints (FNV-1a
/// outputs): feeding them through SipHash again would be pure overhead.
#[derive(Debug, Default, Clone)]
pub(crate) struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the checker only ever hashes u64 fingerprints.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// The explored set: each 64-bit state fingerprint (no re-hashing) maps to
/// the sorted digests of the sleep set the state was last explored with.
///
/// Without partial-order reduction every sleep set is empty and this behaves
/// exactly like the plain fingerprint set it replaced. With POR, the stored
/// sleep set makes state matching sound (Godefroid): a state revisited with
/// a sleep set that is *not* a superset of the stored one was previously
/// explored with more pruning than the new path permits, so it must be
/// re-expanded — with the intersection of the two sleep sets, which only
/// ever shrinks, guaranteeing termination.
pub(crate) type FingerprintMap = HashMap<u64, Box<[u64]>, BuildHasherDefault<FingerprintHasher>>;

/// The verdict on one (fingerprint, sleep set) visit.
pub(crate) enum Visit {
    /// First time this state is seen: explore it.
    New,
    /// Already explored with a sleep set no larger than this one: skip.
    Known,
    /// Previously explored with a sleep set this visit does not subsume:
    /// re-explore with the narrowed (intersected) sleep digests.
    Widen(Vec<u64>),
}

/// True if every element of sorted `sub` occurs in sorted `sup`.
fn sorted_subset(sub: &[u64], sup: &[u64]) -> bool {
    let mut j = 0;
    'outer: for &x in sub {
        while j < sup.len() {
            match sup[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Intersection of two sorted slices.
fn sorted_intersection(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Records a visit of `fingerprint` under `sleep_digests` (sorted) and says
/// whether the state needs (re-)exploring. See [`FingerprintMap`].
pub(crate) fn visit_explored(
    map: &mut FingerprintMap,
    fingerprint: u64,
    sleep_digests: &[u64],
) -> Visit {
    match map.entry(fingerprint) {
        Entry::Vacant(v) => {
            v.insert(sleep_digests.into());
            Visit::New
        }
        Entry::Occupied(mut o) => {
            if sorted_subset(o.get(), sleep_digests) {
                Visit::Known
            } else {
                let narrowed = sorted_intersection(o.get(), sleep_digests);
                o.insert(narrowed.clone().into_boxed_slice());
                Visit::Widen(narrowed)
            }
        }
    }
}

/// The shared deduplication map of the parallel search: fingerprints sharded
/// over independently locked maps, indexed by the top bits (hash tables use
/// the low bits for bucketing, so the top bits are free for shard choice).
struct ShardedFingerprints {
    shards: Vec<Mutex<FingerprintMap>>,
}

const FINGERPRINT_SHARDS: usize = 64;

impl ShardedFingerprints {
    fn new() -> Self {
        ShardedFingerprints {
            shards: (0..FINGERPRINT_SHARDS)
                .map(|_| Mutex::new(FingerprintMap::default()))
                .collect(),
        }
    }

    /// Records a visit under the shard lock; see [`visit_explored`].
    fn visit(&self, fingerprint: u64, sleep_digests: &[u64]) -> Visit {
        let shard = (fingerprint >> 58) as usize % FINGERPRINT_SHARDS;
        visit_explored(
            &mut self.shards[shard].lock().unwrap(),
            fingerprint,
            sleep_digests,
        )
    }
}

// ---------------------------------------------------------------------------
// Frontier nodes
// ---------------------------------------------------------------------------

/// A snapshot of the system and property state at some depth of a trace.
pub(crate) struct Snapshot {
    pub(crate) state: SystemState,
    pub(crate) properties: Vec<Box<dyn Property>>,
}

/// One frontier entry of the search.
///
/// The node's state is `base` advanced by `trace[base_depth..]`; `trace` is
/// always kept in full because it is also the violation trace. Under
/// `StateStorage::Full` the base *is* the node's state (empty suffix); under
/// `Replay` the base is the initial state; under `Checkpoint` it is the
/// nearest ancestor checkpoint, shared via `Arc` with every other descendant
/// of that checkpoint.
///
/// The sleep set travels with the node (not with the snapshot), so it
/// survives checkpoint/replay reconstruction unchanged: replaying the trace
/// suffix rebuilds the state, while the pruning obligations were fixed when
/// the node was generated.
pub(crate) struct Node {
    pub(crate) base: Arc<Snapshot>,
    pub(crate) base_depth: usize,
    pub(crate) trace: Vec<Transition>,
    /// Transitions whose exploration from this node is redundant (already
    /// covered by a commuting sibling branch). Always empty without POR.
    pub(crate) sleep: Vec<Transition>,
    /// True if this node re-expands an already-visited state with a
    /// narrowed sleep set (`Visit::Widen`). Re-expansions exist only to
    /// cover successors the first visit pruned; the state itself was
    /// already accounted for, so terminal counting and end-of-trace
    /// property checks must not run again.
    pub(crate) revisit: bool,
}

/// The NICE model checker.
pub struct ModelChecker {
    scenario: Scenario,
    config: CheckerConfig,
}

impl ModelChecker {
    /// Creates a checker for a scenario with the given configuration.
    pub fn new(scenario: Scenario, config: CheckerConfig) -> Self {
        ModelChecker { scenario, config }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The search configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Runs the search and returns the report. Dispatches to the sequential
    /// or parallel engine based on [`CheckerConfig::workers`] (see the module
    /// docs for the semantics of each).
    ///
    /// A thin wrapper over [`ModelChecker::session`] with a no-op observer,
    /// no cancel token and no deadline — bit-identical to a session-driven
    /// run (pinned by the `session_api` integration tests).
    pub fn run(&self) -> CheckReport {
        self.session().run()
    }

    /// Dispatches to the right engine under a session's control handles.
    pub(crate) fn run_with_ctrl(&self, ctrl: &SessionCtrl) -> CheckReport {
        if self.config.workers > 1 {
            self.run_parallel(ctrl)
        } else {
            self.run_sequential(ctrl)
        }
    }

    /// Builds the typed witness for a violation found at `transitions`
    /// (plus the optional violating transition) — shared by the sequential
    /// and parallel engines so their traces can never diverge.
    pub(crate) fn make_trace(
        &self,
        transitions: &[Transition],
        last: Option<&Transition>,
        property: &str,
        message: &str,
    ) -> Trace {
        let mut trace = Trace::from_transitions(
            &self.scenario.name,
            TraceEngine::from_config(&self.config),
            transitions.iter().cloned(),
        );
        if let Some(t) = last {
            trace.steps.push(TraceStep::Transition(t.clone()));
        }
        trace.property = Some(property.to_string());
        trace.message = Some(message.to_string());
        trace
    }

    /// Appends a violation (with its typed trace) to a sequential-engine
    /// report.
    pub(crate) fn record_violation(
        &self,
        report: &mut CheckReport,
        property: &str,
        message: String,
        trace: &[Transition],
        last: Option<&Transition>,
    ) {
        let trace = self.make_trace(trace, last, property, &message);
        report.violations.push(Violation {
            property: property.to_string(),
            message,
            trace,
            transitions_explored: report.stats.transitions,
            unique_states: report.stats.unique_states,
        });
    }

    /// Clones a state for a child node, honouring the benchmark-only
    /// deep-clone switch.
    fn clone_state(&self, state: &SystemState) -> SystemState {
        if self.config.force_deep_clone {
            state.deep_clone()
        } else {
            state.clone()
        }
    }

    /// Under checkpointed storage, the parent's snapshot handle must outlive
    /// the parent node (children between checkpoints inherit it); this
    /// captures it before [`ModelChecker::materialize`] consumes the node.
    pub(crate) fn parent_base(&self, node: &Node) -> Option<(Arc<Snapshot>, usize)> {
        match self.config.state_storage {
            StateStorage::Checkpoint { .. } => Some((Arc::clone(&node.base), node.base_depth)),
            _ => None,
        }
    }

    /// Builds the frontier node for a child reached over `trace`, choosing
    /// what to snapshot according to the storage mode.
    pub(crate) fn make_node(
        &self,
        root: &Arc<Snapshot>,
        parent_base: &Option<(Arc<Snapshot>, usize)>,
        trace: Vec<Transition>,
        state: SystemState,
        properties: Vec<Box<dyn Property>>,
        sleep: Vec<Transition>,
    ) -> Node {
        match self.config.state_storage {
            StateStorage::Full => {
                let base_depth = trace.len();
                Node {
                    base: Arc::new(Snapshot { state, properties }),
                    base_depth,
                    trace,
                    sleep,
                    revisit: false,
                }
            }
            StateStorage::Replay => Node {
                base: Arc::clone(root),
                base_depth: 0,
                trace,
                sleep,
                revisit: false,
            },
            StateStorage::Checkpoint { interval } => {
                if trace.len().is_multiple_of(interval.max(1)) {
                    let base_depth = trace.len();
                    Node {
                        base: Arc::new(Snapshot { state, properties }),
                        base_depth,
                        trace,
                        sleep,
                        revisit: false,
                    }
                } else {
                    let (base, base_depth) = parent_base
                        .as_ref()
                        .expect("checkpoint mode captures the parent base");
                    Node {
                        base: Arc::clone(base),
                        base_depth: *base_depth,
                        trace,
                        sleep,
                        revisit: false,
                    }
                }
            }
        }
    }

    /// Executes one transition from `state`: clones the successor, runs the
    /// transition (plus lock-step drain), feeds the property observers, and
    /// collects any violations as `(property name, message)` pairs. This is
    /// the single definition of a search step — the sequential and parallel
    /// engines both call it, so their semantics cannot diverge.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub(crate) fn step_transition(
        &self,
        state: &SystemState,
        properties: &[Box<dyn Property>],
        transition: &Transition,
        strategy: &dyn SearchStrategy,
        memo: &mut DiscoveryMemo,
        events: &mut Vec<Event>,
    ) -> (SystemState, Vec<Box<dyn Property>>, Vec<(String, String)>) {
        let mut next_state = self.clone_state(state);
        let mut next_properties = properties.to_vec();
        events.clear();
        execute(
            &mut next_state,
            transition,
            &self.scenario,
            &self.config,
            memo,
            events,
        );
        if strategy.lock_step_control_plane() {
            drain_control_plane(&mut next_state, &self.scenario, &self.config, memo, events);
        }
        for event in events.iter() {
            for property in next_properties.iter_mut() {
                property.on_event(event, &next_state);
            }
        }
        let violations = next_properties
            .iter()
            .filter_map(|p| p.check(&next_state).map(|m| (p.name().to_string(), m)))
            .collect();
        (next_state, next_properties, violations)
    }

    /// Rebuilds a node's state (and its property state) by replaying the
    /// trace suffix since the node's snapshot — the memory-saving state
    /// restoration of Section 6, bounded by the checkpoint cadence.
    ///
    /// Consumes the node: under `Full` storage the snapshot is uniquely
    /// owned, so the state is moved out without any clone at all.
    #[allow(clippy::type_complexity)]
    pub(crate) fn materialize(
        &self,
        node: Node,
        strategy: &dyn SearchStrategy,
        memo: &mut DiscoveryMemo,
    ) -> (
        SystemState,
        Vec<Box<dyn Property>>,
        Vec<Transition>,
        Vec<Transition>,
    ) {
        let Node {
            base,
            base_depth,
            trace,
            sleep,
            revisit: _,
        } = node;
        let (mut state, mut properties) = match Arc::try_unwrap(base) {
            Ok(snapshot) => (snapshot.state, snapshot.properties),
            Err(shared) => (shared.state.clone(), shared.properties.clone()),
        };
        let mut events = Vec::new();
        for transition in &trace[base_depth..] {
            events.clear();
            execute(
                &mut state,
                transition,
                &self.scenario,
                &self.config,
                memo,
                &mut events,
            );
            if strategy.lock_step_control_plane() {
                drain_control_plane(&mut state, &self.scenario, &self.config, memo, &mut events);
            }
            for event in &events {
                for property in properties.iter_mut() {
                    property.on_event(event, &state);
                }
            }
        }
        (state, properties, trace, sleep)
    }

    // -----------------------------------------------------------------------
    // Sequential engine
    // -----------------------------------------------------------------------

    /// The canonical sequential depth-first search: a solo-shard
    /// [`ShardedSearch`](crate::shard::ShardedSearch) driven to completion.
    /// The expansion loop lives in `shard.rs` — one definition shared with
    /// the distributed engine, so a 1-shard distributed run is bit-identical
    /// to this by construction.
    fn run_sequential(&self, ctrl: &SessionCtrl) -> CheckReport {
        let mut search = crate::shard::ShardedSearch::new(self, crate::shard::ShardSpec::solo());
        while search.step_ctrl(Some(ctrl)) == crate::shard::StepOutcome::Expanded {}
        search.finish()
    }

    // -----------------------------------------------------------------------
    // Parallel engine
    // -----------------------------------------------------------------------

    fn run_parallel(&self, ctrl: &SessionCtrl) -> CheckReport {
        let start = Instant::now();
        let workers = self.config.workers;

        let initial_state = SystemState::initial(&self.scenario);
        let initial_properties: Vec<Box<dyn Property>> = self.scenario.properties.clone();
        let initial_fingerprint = initial_state.fingerprint();
        let root = Arc::new(Snapshot {
            state: initial_state,
            properties: initial_properties,
        });

        let shared = SharedSearch {
            workers,
            explored: ShardedFingerprints::new(),
            discoveries: Arc::new(SharedDiscoveryCache::default()),
            frontier: Mutex::new(Frontier {
                queue: vec![Node {
                    base: Arc::clone(&root),
                    base_depth: 0,
                    trace: Vec::new(),
                    sleep: Vec::new(),
                    revisit: false,
                }],
                idle: 0,
                stop: false,
            }),
            work_available: Condvar::new(),
            stop: AtomicBool::new(false),
            idle_count: AtomicUsize::new(0),
            transitions: AtomicU64::new(0),
            unique_states: AtomicU64::new(1),
            terminal_states: AtomicU64::new(0),
            symbolic_executions: AtomicU64::new(0),
            pruned_by_strategy: AtomicU64::new(0),
            pruned_by_por: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            faults: std::array::from_fn(|_| AtomicU64::new(0)),
            max_depth: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            violations: Mutex::new(Vec::new()),
        };
        shared.explored.visit(initial_fingerprint, &[]);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&shared, &root, ctrl));
            }
        });

        let mut report = CheckReport::default();
        report.stats.transitions = shared.transitions.load(Ordering::Relaxed);
        report.stats.unique_states = shared.unique_states.load(Ordering::Relaxed);
        report.stats.terminal_states = shared.terminal_states.load(Ordering::Relaxed);
        report.stats.symbolic_executions = shared.symbolic_executions.load(Ordering::Relaxed);
        report.stats.pruned_by_strategy = shared.pruned_by_strategy.load(Ordering::Relaxed);
        report.stats.pruned_by_por = shared.pruned_by_por.load(Ordering::Relaxed);
        report.stats.dedup_hits = shared.dedup_hits.load(Ordering::Relaxed);
        report.stats.faults = FaultStats::from_counts(std::array::from_fn(|i| {
            shared.faults[i].load(Ordering::Relaxed)
        }));
        report.stats.max_depth = shared.max_depth.load(Ordering::Relaxed);
        report.stats.truncated = shared.truncated.load(Ordering::Relaxed);
        report.violations = shared
            .violations
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Workers race, so impose a stable order; `first_violation` then
        // means "a shortest witness".
        report.sort_violations();
        report.stats.duration = start.elapsed();
        report
    }

    /// One worker of the parallel search: pops nodes, expands them, and
    /// terminates when every worker is idle on an empty queue (or a stop
    /// condition fired). Each worker keeps a private stack of nodes and only
    /// exchanges work through the shared queue when other workers are
    /// starving, so the common case pays no synchronisation beyond the
    /// fingerprint set and the statistics counters.
    fn worker_loop(&self, shared: &SharedSearch, root: &Arc<Snapshot>, ctrl: &SessionCtrl) {
        let _stop_on_panic = StopOnPanic(shared);
        let strategy = build_strategy(self.config.strategy);
        let reduction = build_reduction(self.config.reduction);
        let mut memo = DiscoveryMemo::with_shared(Arc::clone(&shared.discoveries));
        let mut local: Vec<Node> = Vec::new();
        let mut events: Vec<Event> = Vec::new();

        'work: loop {
            let node = if shared.stop.load(Ordering::Relaxed) {
                break;
            } else if let Some(node) = local.pop() {
                node
            } else {
                match shared.pop_work() {
                    Some(node) => node,
                    None => break,
                }
            };
            // Session control: a fired cancel token or expired deadline winds
            // every worker down (each polls here, so none can hang on work
            // the others abandoned).
            if ctrl.check_interrupt().is_some() {
                shared.signal_stop();
                break;
            }
            shared
                .max_depth
                .fetch_max(node.trace.len(), Ordering::Relaxed);

            let revisit = node.revisit;
            let parent_base = self.parent_base(&node);
            let (state, properties, trace, sleep) =
                self.materialize(node, strategy.as_ref(), &mut memo);

            let enabled = enabled_transitions(&state, &self.scenario, &self.config);
            let enabled_count = enabled.len();
            let enabled = strategy.select(&state, enabled);
            shared
                .pruned_by_strategy
                .fetch_add((enabled_count - enabled.len()) as u64, Ordering::Relaxed);

            if enabled.is_empty() {
                // A widened revisit of a terminal state was already counted
                // (and final-checked) on its first visit.
                if !revisit {
                    shared.terminal_states.fetch_add(1, Ordering::Relaxed);
                    for property in &properties {
                        if let Some(message) = property.check_final(&state) {
                            let typed = self.make_trace(&trace, None, property.name(), &message);
                            let v = shared.record_violation(property.name(), message, typed);
                            ctrl.notify_violation(&v);
                            if self.config.stop_at_first_violation {
                                shared.signal_stop();
                            }
                        }
                    }
                }
                continue;
            }

            if trace.len() >= self.config.max_depth {
                shared.truncated.store(true, Ordering::Relaxed);
                continue;
            }

            let choice = reduction.select(&state, &self.scenario, enabled, &sleep);
            shared
                .pruned_by_por
                .fetch_add(choice.pruned, Ordering::Relaxed);
            let mut child_sleeps =
                reduction.child_sleeps(&state, &self.scenario, &choice.explore, &sleep);

            let mut children = Vec::new();
            for (index, transition) in choice.explore.into_iter().enumerate() {
                if shared.stop.load(Ordering::Relaxed) {
                    break 'work;
                }
                if !shared.try_take_transition_budget(self.config.max_transitions) {
                    break 'work;
                }
                if let Some(index) = transition.fault_counter_index() {
                    shared.faults[index].fetch_add(1, Ordering::Relaxed);
                }

                let (next_state, next_properties, violations) = self.step_transition(
                    &state,
                    &properties,
                    &transition,
                    strategy.as_ref(),
                    &mut memo,
                    &mut events,
                );

                ctrl.maybe_progress(
                    shared.transitions.load(Ordering::Relaxed),
                    shared.unique_states.load(Ordering::Relaxed),
                    trace.len() + 1,
                );

                let violated = !violations.is_empty();
                for (property, message) in violations {
                    let typed = self.make_trace(&trace, Some(&transition), &property, &message);
                    let v = shared.record_violation(&property, message, typed);
                    ctrl.notify_violation(&v);
                }
                if violated {
                    if self.config.stop_at_first_violation {
                        shared.signal_stop();
                    }
                    continue;
                }

                let child_sleep = std::mem::take(&mut child_sleeps[index]);
                let mut child_digests: Vec<u64> =
                    child_sleep.iter().map(Transition::digest).collect();
                child_digests.sort_unstable();
                child_digests.dedup();

                match shared
                    .explored
                    .visit(next_state.fingerprint(), &child_digests)
                {
                    Visit::New => {
                        shared.unique_states.fetch_add(1, Ordering::Relaxed);
                        let mut child_trace = trace.clone();
                        child_trace.push(transition.clone());
                        children.push(self.make_node(
                            root,
                            &parent_base,
                            child_trace,
                            next_state,
                            next_properties,
                            child_sleep,
                        ));
                    }
                    Visit::Known => {
                        shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Visit::Widen(narrowed) => {
                        let narrowed_sleep: Vec<Transition> = child_sleep
                            .into_iter()
                            .filter(|t| narrowed.binary_search(&t.digest()).is_ok())
                            .collect();
                        let mut child_trace = trace.clone();
                        child_trace.push(transition.clone());
                        let mut node = self.make_node(
                            root,
                            &parent_base,
                            child_trace,
                            next_state,
                            next_properties,
                            narrowed_sleep,
                        );
                        node.revisit = true;
                        children.push(node);
                    }
                }
            }

            // Work sharing: hand nodes to the shared queue only when another
            // worker is starving (or the queue is empty); otherwise keep them
            // on the private stack and skip the lock entirely.
            if shared.needs_work() {
                if local.len() > 1 {
                    let donated = local.len() / 2;
                    children.extend(local.drain(..donated));
                }
                shared.push_work(children);
            } else {
                local.extend(children);
            }
        }

        shared
            .symbolic_executions
            .fetch_add(memo.symbolic_executions, Ordering::Relaxed);
    }

    /// Performs `walks` random walks of at most `max_steps` transitions each
    /// (the "random walks on system states" simulation mode of Section 1.3)
    /// and returns a report covering all walks.
    pub fn run_random_walk(&self, seed: u64, walks: u32, max_steps: usize) -> CheckReport {
        let start = Instant::now();
        let strategy = build_strategy(self.config.strategy);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut memo = DiscoveryMemo::default();
        let mut report = CheckReport::default();
        let mut seen = FingerprintMap::default();

        'walks: for _ in 0..walks {
            let mut state = SystemState::initial(&self.scenario);
            let mut properties = self.scenario.properties.clone();
            let mut trace: Vec<Transition> = Vec::new();
            visit_explored(&mut seen, state.fingerprint(), &[]);

            for _ in 0..max_steps {
                let enabled = enabled_transitions(&state, &self.scenario, &self.config);
                let enabled = strategy.select(&state, enabled);
                if enabled.is_empty() {
                    report.stats.terminal_states += 1;
                    for property in &properties {
                        if let Some(message) = property.check_final(&state) {
                            self.record_violation(
                                &mut report,
                                property.name(),
                                message,
                                &trace,
                                None,
                            );
                            if self.config.stop_at_first_violation {
                                break 'walks;
                            }
                        }
                    }
                    break;
                }
                let choice = rng.gen_range(0..enabled.len());
                let transition = enabled[choice].clone();
                let mut events = Vec::new();
                execute(
                    &mut state,
                    &transition,
                    &self.scenario,
                    &self.config,
                    &mut memo,
                    &mut events,
                );
                if strategy.lock_step_control_plane() {
                    drain_control_plane(
                        &mut state,
                        &self.scenario,
                        &self.config,
                        &mut memo,
                        &mut events,
                    );
                }
                report.stats.transitions += 1;
                report.stats.faults.record(&transition);
                trace.push(transition.clone());
                report.stats.max_depth = report.stats.max_depth.max(trace.len());
                if matches!(
                    visit_explored(&mut seen, state.fingerprint(), &[]),
                    Visit::New
                ) {
                    report.stats.unique_states += 1;
                }
                for event in &events {
                    for property in properties.iter_mut() {
                        property.on_event(event, &state);
                    }
                }
                for property in &properties {
                    if let Some(message) = property.check(&state) {
                        self.record_violation(
                            &mut report,
                            property.name(),
                            message,
                            &trace[..trace.len() - 1],
                            Some(&transition),
                        );
                        if self.config.stop_at_first_violation {
                            break 'walks;
                        }
                    }
                }
            }
        }

        report.stats.symbolic_executions = memo.symbolic_executions;
        report.stats.duration = start.elapsed();
        report
    }
}

// ---------------------------------------------------------------------------
// Shared state of the parallel search
// ---------------------------------------------------------------------------

/// The frontier queue plus the bookkeeping the termination protocol needs.
struct Frontier {
    queue: Vec<Node>,
    /// Workers currently blocked waiting for work.
    idle: usize,
    /// Set when the search should wind down (every worker idle, budget
    /// exhausted, or first violation under `stop_at_first_violation`).
    stop: bool,
}

struct SharedSearch {
    workers: usize,
    explored: ShardedFingerprints,
    /// Cross-worker symbolic-discovery cache (see [`SharedDiscoveryCache`]).
    discoveries: Arc<SharedDiscoveryCache>,
    frontier: Mutex<Frontier>,
    work_available: Condvar,
    /// Mirror of `Frontier::stop` readable without the queue lock.
    stop: AtomicBool,
    /// Mirror of `Frontier::idle` readable without the queue lock.
    idle_count: AtomicUsize,
    transitions: AtomicU64,
    unique_states: AtomicU64,
    terminal_states: AtomicU64,
    symbolic_executions: AtomicU64,
    pruned_by_strategy: AtomicU64,
    /// Per-kind fault counters, indexed by
    /// [`Transition::fault_counter_index`].
    faults: [AtomicU64; FaultStats::KINDS],
    pruned_by_por: AtomicU64,
    dedup_hits: AtomicU64,
    max_depth: AtomicUsize,
    truncated: AtomicBool,
    violations: Mutex<Vec<Violation>>,
}

impl SharedSearch {
    /// Locks the frontier, recovering the guard if another worker panicked
    /// while holding the lock (the state under it is kept consistent at
    /// every await point, so a poisoned guard is still safe to use).
    fn lock_frontier(&self) -> std::sync::MutexGuard<'_, Frontier> {
        self.frontier
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pops the next frontier node, blocking while the queue is empty and
    /// other workers may still produce work. Returns `None` when the search
    /// is over: stop was signalled, or every worker went idle at once (no
    /// node left anywhere to generate more work from).
    fn pop_work(&self) -> Option<Node> {
        let mut frontier = self.lock_frontier();
        loop {
            if frontier.stop {
                return None;
            }
            if let Some(node) = frontier.queue.pop() {
                return Some(node);
            }
            frontier.idle += 1;
            self.idle_count.store(frontier.idle, Ordering::Relaxed);
            if frontier.idle == self.workers {
                frontier.stop = true;
                self.stop.store(true, Ordering::Relaxed);
                self.work_available.notify_all();
                return None;
            }
            frontier = self
                .work_available
                .wait(frontier)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            frontier.idle -= 1;
            self.idle_count.store(frontier.idle, Ordering::Relaxed);
        }
    }

    /// True if some worker is starved for work. An empty shared queue alone
    /// is not starvation — every worker may be busy on its private stack —
    /// so only actual idleness triggers donation, keeping the steady state
    /// lock-free.
    fn needs_work(&self) -> bool {
        self.idle_count.load(Ordering::Relaxed) > 0
    }

    /// Pushes a batch of children (one lock round-trip per expanded node).
    fn push_work(&self, children: Vec<Node>) {
        if children.is_empty() {
            return;
        }
        let mut frontier = self.lock_frontier();
        let woken = children.len();
        frontier.queue.extend(children);
        drop(frontier);
        if woken == 1 {
            self.work_available.notify_one();
        } else {
            self.work_available.notify_all();
        }
    }

    /// Ends the search (first violation under stop-at-first, budget, or a
    /// panicking worker).
    fn signal_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut frontier = self.lock_frontier();
        frontier.stop = true;
        drop(frontier);
        self.work_available.notify_all();
    }

    /// Claims one unit of the transition budget. Returns false (and winds the
    /// search down) if the budget is exhausted.
    fn try_take_transition_budget(&self, max_transitions: u64) -> bool {
        if max_transitions == 0 {
            self.transitions.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut current = self.transitions.load(Ordering::Relaxed);
        loop {
            if current >= max_transitions {
                self.truncated.store(true, Ordering::Relaxed);
                self.signal_stop();
                return false;
            }
            match self.transitions.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Records a violation and returns the caller's copy of it (for
    /// streaming through the session observer). The typed trace is built by
    /// the worker (via [`ModelChecker::make_trace`]) before taking the lock.
    fn record_violation(&self, property: &str, message: String, trace: Trace) -> Violation {
        let violation = Violation {
            property: property.to_string(),
            message,
            trace,
            transitions_explored: self.transitions.load(Ordering::Relaxed),
            unique_states: self.unique_states.load(Ordering::Relaxed),
        };
        self.violations
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(violation.clone());
        violation
    }
}

/// Guard ensuring a panicking worker winds the whole search down instead of
/// leaving its siblings blocked forever on the work-available condvar; the
/// panic itself is then re-raised by `std::thread::scope`.
struct StopOnPanic<'a>(&'a SharedSearch);

impl Drop for StopOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.signal_stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrategyKind;
    use crate::testutil;

    #[test]
    fn hub_ping_scenario_passes_default_properties() {
        let scenario = testutil::hub_ping_scenario(1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(report.passed(), "unexpected violation: {report}");
        assert!(report.stats.transitions > 0);
        assert!(report.stats.unique_states > 1);
        assert!(report.stats.terminal_states > 0);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn forgetful_app_violates_no_forgotten_packets() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(!report.passed());
        let violation = report.first_violation().unwrap();
        assert_eq!(violation.property, "NoForgottenPackets");
        assert!(!violation.trace.is_empty());
        assert!(violation.to_string().contains("NoForgottenPackets"));
    }

    #[test]
    fn exhaustive_and_replay_storage_agree() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        let replay = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_state_storage(StateStorage::Replay),
        )
        .run();
        assert_eq!(full.passed(), replay.passed());
        assert_eq!(full.stats.transitions, replay.stats.transitions);
        assert_eq!(full.stats.unique_states, replay.stats.unique_states);
    }

    #[test]
    fn checkpoint_storage_agrees_with_full_at_every_cadence() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        for interval in [1, 2, 3, 5, 64] {
            let checkpointed = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default().with_checkpoint_interval(interval),
            )
            .run();
            assert_eq!(full.passed(), checkpointed.passed(), "interval {interval}");
            assert_eq!(
                full.stats.transitions, checkpointed.stats.transitions,
                "interval {interval}"
            );
            assert_eq!(
                full.stats.unique_states, checkpointed.stats.unique_states,
                "interval {interval}"
            );
            assert_eq!(
                full.stats.max_depth, checkpointed.stats.max_depth,
                "interval {interval}"
            );
        }
    }

    #[test]
    fn checkpoint_storage_reproduces_violation_traces() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        let checkpointed = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_checkpoint_interval(3),
        )
        .run();
        assert_eq!(
            full.first_violation().map(|v| v.trace.clone()),
            checkpointed.first_violation().map(|v| v.trace.clone())
        );
    }

    #[test]
    fn parallel_search_agrees_with_sequential() {
        let scenario = testutil::hub_ping_scenario(2);
        let sequential = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        for workers in [2, 4] {
            let parallel = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default()
                    .with_stop_at_first(false)
                    .with_workers(workers),
            )
            .run();
            assert!(parallel.passed());
            assert_eq!(
                sequential.stats.unique_states, parallel.stats.unique_states,
                "{workers} workers"
            );
            assert_eq!(
                sequential.stats.transitions, parallel.stats.transitions,
                "{workers} workers"
            );
            assert_eq!(
                sequential.stats.terminal_states, parallel.stats.terminal_states,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn parallel_search_finds_the_same_violated_properties() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let sequential = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        let parallel = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_workers(4),
        )
        .run();
        let properties = |report: &CheckReport| {
            let mut names: Vec<String> = report
                .violations
                .iter()
                .map(|v| v.property.clone())
                .collect();
            names.sort();
            names
        };
        assert!(!sequential.passed());
        assert!(!parallel.passed());
        assert_eq!(properties(&sequential), properties(&parallel));
        assert_eq!(sequential.stats.unique_states, parallel.stats.unique_states);
    }

    #[test]
    fn parallel_search_respects_stop_at_first_violation() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let report = ModelChecker::new(scenario, CheckerConfig::default().with_workers(4)).run();
        assert!(!report.passed());
        assert_eq!(
            report.first_violation().unwrap().property,
            "NoForgottenPackets"
        );
    }

    #[test]
    fn strategies_reduce_or_preserve_the_state_space() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        for kind in [
            StrategyKind::NoDelay,
            StrategyKind::FlowIr,
            StrategyKind::Unusual,
        ] {
            let report = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default().with_strategy(kind),
            )
            .run();
            assert!(
                report.passed(),
                "{kind:?} found a spurious violation: {report}"
            );
            assert!(
                report.stats.transitions <= full.stats.transitions,
                "{kind:?} explored more transitions ({}) than the full search ({})",
                report.stats.transitions,
                full.stats.transitions
            );
        }
    }

    #[test]
    fn transition_budget_truncates_search() {
        let scenario = testutil::hub_ping_scenario(3);
        let report =
            ModelChecker::new(scenario, CheckerConfig::default().with_max_transitions(5)).run();
        assert!(report.stats.truncated);
        assert!(report.stats.transitions <= 5);
    }

    #[test]
    fn parallel_transition_budget_truncates_search() {
        let scenario = testutil::hub_ping_scenario(3);
        let report = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_max_transitions(5)
                .with_workers(4),
        )
        .run();
        assert!(report.stats.truncated);
        assert!(report.stats.transitions <= 5);
    }

    #[test]
    fn random_walk_mode_runs_and_reports() {
        let scenario = testutil::hub_ping_scenario(2);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run_random_walk(7, 3, 50);
        assert!(
            report.passed(),
            "hub scenario has no violations to find: {report}"
        );
        assert!(report.stats.transitions > 0);
        // Deterministic for a fixed seed.
        let again = checker.run_random_walk(7, 3, 50);
        assert_eq!(report.stats.transitions, again.stats.transitions);
        assert_eq!(report.stats.unique_states, again.stats.unique_states);
    }

    #[test]
    fn discovery_scenario_explores_symbolically() {
        let scenario = testutil::discovery_scenario(Box::new(testutil::HubApp::default()), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(report.passed(), "{report}");
        assert!(
            report.stats.symbolic_executions >= 1,
            "discover_packets must have run"
        );
        assert!(report.stats.transitions > 0);
    }

    #[test]
    fn report_display_summarises() {
        let scenario = testutil::hub_ping_scenario(1);
        let report = ModelChecker::new(scenario, CheckerConfig::default()).run();
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("transitions"));
    }

    #[test]
    fn panicking_property_propagates_from_parallel_search() {
        /// A user-written property that panics mid-search (users implement
        /// `Property`, so worker threads must survive arbitrary panics by
        /// winding the search down rather than deadlocking their siblings).
        #[derive(Clone)]
        struct PanickingProperty;
        impl crate::properties::Property for PanickingProperty {
            fn name(&self) -> &str {
                "Panicking"
            }
            fn on_event(&mut self, _: &crate::properties::Event, _: &SystemState) {}
            fn check(&self, _: &SystemState) -> Option<String> {
                panic!("property panicked on purpose");
            }
            fn clone_property(&self) -> Box<dyn crate::properties::Property> {
                Box::new(self.clone())
            }
        }

        let scenario = testutil::hub_ping_scenario(1).with_property(Box::new(PanickingProperty));
        let checker = ModelChecker::new(scenario, CheckerConfig::default().with_workers(4));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checker.run()));
        assert!(result.is_err(), "the worker panic must propagate, not hang");
    }

    #[test]
    fn por_prunes_transitions_but_preserves_the_verdict() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        let por = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        assert_eq!(full.passed(), por.passed());
        assert!(
            por.stats.transitions < full.stats.transitions,
            "POR must prune something on the hub workload: {} vs {}",
            por.stats.transitions,
            full.stats.transitions
        );
        assert!(por.stats.pruned_by_por > 0);
        assert_eq!(full.stats.pruned_by_por, 0);
        assert_eq!(full.stats.terminal_states, por.stats.terminal_states);
    }

    #[test]
    fn por_finds_the_same_violated_properties() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 2);
        let properties = |report: &CheckReport| {
            let mut names: Vec<String> = report
                .violations
                .iter()
                .map(|v| v.property.clone())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        let shortest = |report: &CheckReport| {
            report
                .violations
                .iter()
                .map(|v| v.trace.len())
                .min()
                .unwrap_or(0)
        };
        let full = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        let por = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        assert!(!full.passed());
        assert!(!por.passed());
        assert_eq!(properties(&full), properties(&por));
        assert_eq!(shortest(&full), shortest(&por));
        assert!(por.stats.transitions <= full.stats.transitions);
    }

    #[test]
    fn por_sleep_sets_survive_checkpoint_replay_reconstruction() {
        let scenario = testutil::hub_ping_scenario(2);
        let reference = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        for storage in [
            StateStorage::Replay,
            StateStorage::Checkpoint { interval: 2 },
            StateStorage::Checkpoint { interval: 5 },
        ] {
            let checkpointed = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default()
                    .with_stop_at_first(false)
                    .with_reduction(crate::scenario::ReductionKind::Por)
                    .with_state_storage(storage),
            )
            .run();
            assert_eq!(
                reference.stats.transitions, checkpointed.stats.transitions,
                "{storage:?}"
            );
            assert_eq!(
                reference.stats.unique_states, checkpointed.stats.unique_states,
                "{storage:?}"
            );
            assert_eq!(
                reference.stats.pruned_by_por, checkpointed.stats.pruned_by_por,
                "{storage:?}"
            );
        }
    }

    #[test]
    fn por_parallel_agrees_with_sequential_por() {
        let scenario = testutil::hub_ping_scenario(2);
        let sequential = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        let parallel = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por)
                .with_workers(4),
        )
        .run();
        assert_eq!(sequential.passed(), parallel.passed());
        // Workers race on sleep-set narrowing, so transition counts may
        // wobble slightly, but the reduced search must stay well under the
        // unreduced space and find the same terminal coverage.
        let full = ModelChecker::new(
            testutil::hub_ping_scenario(2),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        assert!(parallel.stats.transitions <= full.stats.transitions);
        assert_eq!(
            sequential.stats.terminal_states,
            parallel.stats.terminal_states
        );
    }

    #[test]
    fn strategy_prune_counter_reports_filtered_transitions() {
        let scenario = testutil::hub_ping_scenario(2);
        let unusual = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_strategy(StrategyKind::Unusual),
        )
        .run();
        assert!(
            unusual.stats.pruned_by_strategy > 0,
            "UNUSUAL must filter some process_of deliveries"
        );
    }

    #[test]
    fn report_display_includes_prune_counters() {
        let scenario = testutil::hub_ping_scenario(1);
        let report = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        let text = report.to_string();
        assert!(text.contains("pruned by POR"));
        assert!(text.contains("pruned by strategy"));
        assert!(text.contains("dedup hits"));
    }

    #[test]
    fn fingerprint_hasher_is_identity_on_u64() {
        let mut h = FingerprintHasher::default();
        h.write_u64(0xdead_beef_cafe_f00d);
        assert_eq!(h.finish(), 0xdead_beef_cafe_f00d);
    }
}
