//! The state-space search loop (Figure 5), violation traces and search
//! statistics, plus a random-walk simulation mode.
//!
//! # Search engines
//!
//! [`ModelChecker::run`] dispatches on [`CheckerConfig::workers`]:
//!
//! * `workers == 1` (default) — the canonical sequential depth-first search.
//!   Fully deterministic: a fixed scenario and configuration always yield the
//!   same transition count, unique-state count and violation traces.
//! * `workers > 1` — a parallel search. By default
//!   ([`SchedulerKind::WorkStealing`]) each worker owns a lock-free
//!   Chase-Lev deque: children are pushed and popped locally (depth-first,
//!   no synchronisation), and an idle worker steals half of a victim's
//!   oldest work. The legacy mutex-protected donation frontier is kept
//!   selectable ([`SchedulerKind::Donation`]) so the two can be
//!   benchmarked against each other. Both deduplicate states through a
//!   shared [`ExploredStore`], so each unique state is expanded exactly
//!   once across all workers. With no truncating budget the parallel
//!   search visits the same state space as the sequential one (identical
//!   `unique_states` and `transitions`, same set of violated properties),
//!   but the *order* of exploration — and therefore which trace first
//!   reaches a violating state, and where a `max_transitions` budget cuts
//!   off — is scheduling dependent.
//!
//! # Frontier storage modes
//!
//! Every frontier node keeps its transition trace (it doubles as the
//! violation trace). What else is kept is governed by
//! [`StateStorage`](crate::scenario::StateStorage):
//!
//! * `Full` — each node carries a snapshot of its exact state. Since
//!   [`SystemState`] is copy-on-write, the snapshot shares everything the
//!   child did not modify with its parent, so this is the default and is
//!   both fast and reasonably small.
//! * `Replay` — nodes carry no state; expanding a node re-executes its whole
//!   trace from the initial state (the paper's Section 6 memory-saving
//!   mode). Cheapest per node, O(depth) re-execution per expansion.
//! * `Checkpoint { interval }` — the hybrid: a copy-on-write snapshot is
//!   taken every `interval` transitions of depth and shared (via `Arc`) by
//!   every descendant node until the next checkpoint; expanding a node
//!   replays only the suffix since its nearest checkpoint — at most
//!   `interval - 1` transitions instead of the full depth.
//!
//! The explored set stores only 64-bit state fingerprints (Section 6 of the
//! paper), behind the tiered [`ExploredStore`] abstraction of
//! [`crate::explored`]: exact packed in-memory tables by default, an exact
//! disk-spilling tier for runs past RAM, or lossy bitstate hashing —
//! selected by [`CheckerConfig::explored`]. Under partial-order reduction
//! ([`CheckerConfig::reduction`](crate::scenario::CheckerConfig)) each
//! fingerprint additionally remembers the sleep set it was explored with —
//! see `crate::explored::FingerprintMap` for why that keeps sleep sets
//! sound under state matching.

use crate::explored::{build_store, visit_explored, ExploredStore, FingerprintMap, Visit};
use crate::properties::{Event, Property};
use crate::scenario::{CheckerConfig, Scenario, SchedulerKind, StateStorage};
use crate::session::{Outcome, SessionCtrl};
use crate::state::SystemState;
use crate::strategy::{build_reduction, build_strategy, Reduction, SearchStrategy};
use crate::trace::{Trace, TraceEngine, TraceStep};
use crate::transition::{
    drain_control_plane, enabled_transitions, execute, DiscoveryMemo, SharedDiscoveryCache,
    Transition,
};
use nice_deque::{Steal, Stealer, Worker as WorkDeque};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A property violation together with the trace that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated property.
    pub property: String,
    /// The violation message.
    pub message: String,
    /// The typed, replayable transitions from the initial state that
    /// reproduce the violation, in order, plus the scenario name and engine
    /// configuration they were recorded under. Serialize with
    /// [`Trace::to_json`], re-execute with
    /// [`ModelChecker::replay`](crate::replay), render labels with
    /// [`Trace::labels`].
    pub trace: Trace,
    /// How many transitions had been explored when the violation was found.
    pub transitions_explored: u64,
    /// How many unique states had been seen when the violation was found.
    pub unique_states: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation of {}: {}", self.property, self.message)?;
        writeln!(
            f,
            "  found after {} transitions / {} unique states; trace ({} steps):",
            self.transitions_explored,
            self.unique_states,
            self.trace.len()
        )?;
        // `Trace`'s Display renders exactly the numbered-label lines the
        // stringified representation printed, keeping this byte-identical.
        write!(f, "{}", self.trace)
    }
}

/// Per-kind counters of injected fault transitions, indexed by
/// [`Transition::fault_counter_index`]. All zero unless the scenario has an
/// enabled [`FaultPlan`](crate::faults::FaultPlan) *and* the checker ran with
/// fault injection switched on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped from an ingress channel head.
    pub drops: u64,
    /// Packets duplicated at an ingress channel head.
    pub duplicates: u64,
    /// Adjacent-packet reorderings on an ingress channel.
    pub reorders: u64,
    /// Ingress link failures.
    pub link_failures: u64,
    /// Switch crashes.
    pub crashes: u64,
    /// Switch reconnects (recovery; does not consume budget).
    pub reconnects: u64,
    /// Controller failovers to the standby runtime.
    pub failovers: u64,
    /// Byzantine mutations of in-flight OpenFlow messages.
    pub mutations: u64,
}

impl FaultStats {
    /// Number of distinct fault kinds tracked.
    pub const KINDS: usize = 8;

    /// Builds the counters from an array indexed by
    /// [`Transition::fault_counter_index`].
    pub fn from_counts(counts: [u64; Self::KINDS]) -> Self {
        FaultStats {
            drops: counts[0],
            duplicates: counts[1],
            reorders: counts[2],
            link_failures: counts[3],
            crashes: counts[4],
            reconnects: counts[5],
            failovers: counts[6],
            mutations: counts[7],
        }
    }

    /// The counters labelled with their stable (JSON-schema) names, in
    /// [`Transition::fault_counter_index`] order.
    pub fn labeled(&self) -> [(&'static str, u64); Self::KINDS] {
        [
            ("drops", self.drops),
            ("duplicates", self.duplicates),
            ("reorders", self.reorders),
            ("link_failures", self.link_failures),
            ("crashes", self.crashes),
            ("reconnects", self.reconnects),
            ("failovers", self.failovers),
            ("mutations", self.mutations),
        ]
    }

    /// Counts one executed transition if it is a fault injection.
    pub fn record(&mut self, transition: &Transition) {
        if let Some(index) = transition.fault_counter_index() {
            self.bump(index);
        }
    }

    /// Increments the counter at `index` (a
    /// [`Transition::fault_counter_index`] value).
    pub fn bump(&mut self, index: usize) {
        match index {
            0 => self.drops += 1,
            1 => self.duplicates += 1,
            2 => self.reorders += 1,
            3 => self.link_failures += 1,
            4 => self.crashes += 1,
            5 => self.reconnects += 1,
            6 => self.failovers += 1,
            7 => self.mutations += 1,
            _ => panic!("fault counter index {index} out of range"),
        }
    }

    /// Total fault transitions executed, across all kinds.
    pub fn total(&self) -> u64 {
        self.labeled().iter().map(|(_, n)| n).sum()
    }

    /// True if any fault transition was executed.
    pub fn any(&self) -> bool {
        self.total() > 0
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (label, count) in self.labeled() {
            if count > 0 {
                if !first {
                    write!(f, " | ")?;
                }
                write!(f, "{label}: {count}")?;
                first = false;
            }
        }
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// Aggregate statistics of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Transitions executed.
    pub transitions: u64,
    /// Unique states encountered (by fingerprint).
    pub unique_states: u64,
    /// Terminal states reached (states with no enabled transitions).
    pub terminal_states: u64,
    /// Concolic explorations executed (cache misses of the discovery memo).
    pub symbolic_executions: u64,
    /// Enabled transitions the search strategy filtered out before
    /// execution (NO-DELAY/FLOW-IR/UNUSUAL restrictions).
    pub pruned_by_strategy: u64,
    /// Strategy-selected transitions the partial-order reduction pruned
    /// before execution (sleep-set hits plus persistent-set exclusions).
    pub pruned_by_por: u64,
    /// Executed transitions whose successor state had already been explored
    /// (fingerprint dedup after execution).
    pub dedup_hits: u64,
    /// Injected-fault counters, by kind (all zero without fault injection).
    pub faults: FaultStats,
    /// Deepest path explored.
    pub max_depth: usize,
    /// True if a budget (transition or depth limit) cut the search short.
    pub truncated: bool,
    /// Frontier nodes an idle worker stole from a sibling's deque (only the
    /// work-stealing parallel scheduler; zero elsewhere).
    pub work_steals: u64,
    /// High-water mark of the explored set's in-memory footprint, in bytes.
    pub peak_explored_bytes: u64,
    /// Cold explored-set shards spilled to disk (tiered mode only).
    pub spilled_shards: u64,
    /// Disk probes avoided because a spilled segment's bloom filter proved
    /// the fingerprint absent (tiered mode only).
    pub filter_hits: u64,
    /// Binary searches actually performed against spilled segments (tiered
    /// mode only).
    pub disk_probes: u64,
    /// Wall-clock duration of the search.
    pub duration: Duration,
}

impl SearchStats {
    /// Folds an explored-store's counters into the stats.
    pub(crate) fn absorb_explored(&mut self, stats: crate::explored::ExploredStats) {
        self.peak_explored_bytes = stats.peak_bytes;
        self.spilled_shards = stats.spilled_shards;
        self.filter_hits = stats.filter_hits;
        self.disk_probes = stats.disk_probes;
    }
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Every violation found (just the first one when
    /// `stop_at_first_violation` is set).
    pub violations: Vec<Violation>,
    /// Search statistics.
    pub stats: SearchStats,
    /// How the search ended: ran to its natural end (possibly
    /// budget-truncated — see [`SearchStats::truncated`]) or stopped early
    /// by a session's cancel token or deadline.
    pub outcome: Outcome,
    /// True if the explored set was lossy (bitstate hashing): states may
    /// have been *missed*, so a PASS is not exhaustive. Violations are
    /// never invented — every reported trace really executed — but
    /// `--expect pass` semantics are weaker, which is why the flag rides
    /// on the report itself.
    pub lossy: bool,
}

impl CheckReport {
    /// True if no property was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Imposes the stable violation order racing engines (the parallel
    /// search's worker threads, the distributed coordinator's shards) need:
    /// shortest trace first, then lexicographic by property, rendered
    /// labels and message. [`CheckReport::first_violation`] then means "a
    /// shortest witness".
    pub fn sort_violations(&mut self) {
        self.violations.sort_by(|a, b| {
            (a.trace.len(), &a.property, a.trace.labels(), &a.message).cmp(&(
                b.trace.len(),
                &b.property,
                b.trace.labels(),
                &b.message,
            ))
        });
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | outcome: {} | transitions: {} | unique states: {} | terminal states: {} | time: {:.2?}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.outcome.label(self.stats.truncated),
            self.stats.transitions,
            self.stats.unique_states,
            self.stats.terminal_states,
            self.stats.duration,
        )?;
        writeln!(
            f,
            "  pruned by strategy: {} | pruned by POR: {} | dedup hits: {}",
            self.stats.pruned_by_strategy, self.stats.pruned_by_por, self.stats.dedup_hits
        )?;
        writeln!(
            f,
            "  explored set: {} bytes peak | work steals: {}",
            self.stats.peak_explored_bytes, self.stats.work_steals
        )?;
        if self.stats.spilled_shards > 0 || self.stats.disk_probes > 0 || self.stats.filter_hits > 0
        {
            writeln!(
                f,
                "  spilled shards: {} | filter hits: {} | disk probes: {}",
                self.stats.spilled_shards, self.stats.filter_hits, self.stats.disk_probes
            )?;
        }
        if self.lossy {
            writeln!(
                f,
                "  lossy: bitstate hashing may have missed states (PASS is not exhaustive)"
            )?;
        }
        if self.stats.faults.any() {
            writeln!(f, "  injected faults: {}", self.stats.faults)?;
        }
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frontier nodes
// ---------------------------------------------------------------------------

/// A snapshot of the system and property state at some depth of a trace.
pub(crate) struct Snapshot {
    pub(crate) state: SystemState,
    pub(crate) properties: Vec<Box<dyn Property>>,
}

/// One frontier entry of the search.
///
/// The node's state is `base` advanced by `trace[base_depth..]`; `trace` is
/// always kept in full because it is also the violation trace. Under
/// `StateStorage::Full` the base *is* the node's state (empty suffix); under
/// `Replay` the base is the initial state; under `Checkpoint` it is the
/// nearest ancestor checkpoint, shared via `Arc` with every other descendant
/// of that checkpoint.
///
/// The sleep set travels with the node (not with the snapshot), so it
/// survives checkpoint/replay reconstruction unchanged: replaying the trace
/// suffix rebuilds the state, while the pruning obligations were fixed when
/// the node was generated.
pub(crate) struct Node {
    pub(crate) base: Arc<Snapshot>,
    pub(crate) base_depth: usize,
    pub(crate) trace: Vec<Transition>,
    /// Transitions whose exploration from this node is redundant (already
    /// covered by a commuting sibling branch). Always empty without POR.
    pub(crate) sleep: Vec<Transition>,
    /// True if this node re-expands an already-visited state with a
    /// narrowed sleep set (`Visit::Widen`). Re-expansions exist only to
    /// cover successors the first visit pruned; the state itself was
    /// already accounted for, so terminal counting and end-of-trace
    /// property checks must not run again.
    pub(crate) revisit: bool,
}

/// The NICE model checker.
pub struct ModelChecker {
    scenario: Scenario,
    config: CheckerConfig,
}

impl ModelChecker {
    /// Creates a checker for a scenario with the given configuration.
    pub fn new(scenario: Scenario, config: CheckerConfig) -> Self {
        ModelChecker { scenario, config }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The search configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Runs the search and returns the report. Dispatches to the sequential
    /// or parallel engine based on [`CheckerConfig::workers`] (see the module
    /// docs for the semantics of each).
    ///
    /// A thin wrapper over [`ModelChecker::session`] with a no-op observer,
    /// no cancel token and no deadline — bit-identical to a session-driven
    /// run (pinned by the `session_api` integration tests).
    pub fn run(&self) -> CheckReport {
        self.session().run()
    }

    /// Dispatches to the right engine under a session's control handles.
    pub(crate) fn run_with_ctrl(&self, ctrl: &SessionCtrl) -> CheckReport {
        if self.config.workers > 1 {
            self.run_parallel(ctrl)
        } else {
            self.run_sequential(ctrl)
        }
    }

    /// Builds the typed witness for a violation found at `transitions`
    /// (plus the optional violating transition) — shared by the sequential
    /// and parallel engines so their traces can never diverge.
    pub(crate) fn make_trace(
        &self,
        transitions: &[Transition],
        last: Option<&Transition>,
        property: &str,
        message: &str,
    ) -> Trace {
        let mut trace = Trace::from_transitions(
            &self.scenario.name,
            TraceEngine::from_config(&self.config),
            transitions.iter().cloned(),
        );
        if let Some(t) = last {
            trace.steps.push(TraceStep::Transition(t.clone()));
        }
        trace.property = Some(property.to_string());
        trace.message = Some(message.to_string());
        trace
    }

    /// Appends a violation (with its typed trace) to a sequential-engine
    /// report.
    pub(crate) fn record_violation(
        &self,
        report: &mut CheckReport,
        property: &str,
        message: String,
        trace: &[Transition],
        last: Option<&Transition>,
    ) {
        let trace = self.make_trace(trace, last, property, &message);
        report.violations.push(Violation {
            property: property.to_string(),
            message,
            trace,
            transitions_explored: report.stats.transitions,
            unique_states: report.stats.unique_states,
        });
    }

    /// Clones a state for a child node, honouring the benchmark-only
    /// deep-clone switch.
    fn clone_state(&self, state: &SystemState) -> SystemState {
        if self.config.force_deep_clone {
            state.deep_clone()
        } else {
            state.clone()
        }
    }

    /// Under checkpointed storage, the parent's snapshot handle must outlive
    /// the parent node (children between checkpoints inherit it); this
    /// captures it before [`ModelChecker::materialize`] consumes the node.
    pub(crate) fn parent_base(&self, node: &Node) -> Option<(Arc<Snapshot>, usize)> {
        match self.config.state_storage {
            StateStorage::Checkpoint { .. } => Some((Arc::clone(&node.base), node.base_depth)),
            _ => None,
        }
    }

    /// Builds the frontier node for a child reached over `trace`, choosing
    /// what to snapshot according to the storage mode.
    pub(crate) fn make_node(
        &self,
        root: &Arc<Snapshot>,
        parent_base: &Option<(Arc<Snapshot>, usize)>,
        trace: Vec<Transition>,
        state: SystemState,
        properties: Vec<Box<dyn Property>>,
        sleep: Vec<Transition>,
    ) -> Node {
        match self.config.state_storage {
            StateStorage::Full => {
                let base_depth = trace.len();
                Node {
                    base: Arc::new(Snapshot { state, properties }),
                    base_depth,
                    trace,
                    sleep,
                    revisit: false,
                }
            }
            StateStorage::Replay => Node {
                base: Arc::clone(root),
                base_depth: 0,
                trace,
                sleep,
                revisit: false,
            },
            StateStorage::Checkpoint { interval } => {
                if trace.len().is_multiple_of(interval.max(1)) {
                    let base_depth = trace.len();
                    Node {
                        base: Arc::new(Snapshot { state, properties }),
                        base_depth,
                        trace,
                        sleep,
                        revisit: false,
                    }
                } else {
                    let (base, base_depth) = parent_base
                        .as_ref()
                        .expect("checkpoint mode captures the parent base");
                    Node {
                        base: Arc::clone(base),
                        base_depth: *base_depth,
                        trace,
                        sleep,
                        revisit: false,
                    }
                }
            }
        }
    }

    /// Executes one transition from `state`: clones the successor, runs the
    /// transition (plus lock-step drain), feeds the property observers, and
    /// collects any violations as `(property name, message)` pairs. This is
    /// the single definition of a search step — the sequential and parallel
    /// engines both call it, so their semantics cannot diverge.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub(crate) fn step_transition(
        &self,
        state: &SystemState,
        properties: &[Box<dyn Property>],
        transition: &Transition,
        strategy: &dyn SearchStrategy,
        memo: &mut DiscoveryMemo,
        events: &mut Vec<Event>,
    ) -> (SystemState, Vec<Box<dyn Property>>, Vec<(String, String)>) {
        let mut next_state = self.clone_state(state);
        let mut next_properties = properties.to_vec();
        events.clear();
        execute(
            &mut next_state,
            transition,
            &self.scenario,
            &self.config,
            memo,
            events,
        );
        if strategy.lock_step_control_plane() {
            drain_control_plane(&mut next_state, &self.scenario, &self.config, memo, events);
        }
        for event in events.iter() {
            for property in next_properties.iter_mut() {
                property.on_event(event, &next_state);
            }
        }
        let violations = next_properties
            .iter()
            .filter_map(|p| p.check(&next_state).map(|m| (p.name().to_string(), m)))
            .collect();
        (next_state, next_properties, violations)
    }

    /// Rebuilds a node's state (and its property state) by replaying the
    /// trace suffix since the node's snapshot — the memory-saving state
    /// restoration of Section 6, bounded by the checkpoint cadence.
    ///
    /// Consumes the node: under `Full` storage the snapshot is uniquely
    /// owned, so the state is moved out without any clone at all.
    #[allow(clippy::type_complexity)]
    pub(crate) fn materialize(
        &self,
        node: Node,
        strategy: &dyn SearchStrategy,
        memo: &mut DiscoveryMemo,
    ) -> (
        SystemState,
        Vec<Box<dyn Property>>,
        Vec<Transition>,
        Vec<Transition>,
    ) {
        let Node {
            base,
            base_depth,
            trace,
            sleep,
            revisit: _,
        } = node;
        let (mut state, mut properties) = match Arc::try_unwrap(base) {
            Ok(snapshot) => (snapshot.state, snapshot.properties),
            Err(shared) => (shared.state.clone(), shared.properties.clone()),
        };
        let mut events = Vec::new();
        for transition in &trace[base_depth..] {
            events.clear();
            execute(
                &mut state,
                transition,
                &self.scenario,
                &self.config,
                memo,
                &mut events,
            );
            if strategy.lock_step_control_plane() {
                drain_control_plane(&mut state, &self.scenario, &self.config, memo, &mut events);
            }
            for event in &events {
                for property in properties.iter_mut() {
                    property.on_event(event, &state);
                }
            }
        }
        (state, properties, trace, sleep)
    }

    // -----------------------------------------------------------------------
    // Sequential engine
    // -----------------------------------------------------------------------

    /// The canonical sequential depth-first search: a solo-shard
    /// [`ShardedSearch`](crate::shard::ShardedSearch) driven to completion.
    /// The expansion loop lives in `shard.rs` — one definition shared with
    /// the distributed engine, so a 1-shard distributed run is bit-identical
    /// to this by construction.
    fn run_sequential(&self, ctrl: &SessionCtrl) -> CheckReport {
        let mut search = crate::shard::ShardedSearch::new(self, crate::shard::ShardSpec::solo());
        while search.step_ctrl(Some(ctrl)) == crate::shard::StepOutcome::Expanded {}
        search.finish()
    }

    // -----------------------------------------------------------------------
    // Parallel engine
    // -----------------------------------------------------------------------

    fn run_parallel(&self, ctrl: &SessionCtrl) -> CheckReport {
        let start = Instant::now();
        let workers = self.config.workers;

        let initial_state = SystemState::initial(&self.scenario);
        let initial_properties: Vec<Box<dyn Property>> = self.scenario.properties.clone();
        let initial_fingerprint = initial_state.fingerprint();
        let root = Arc::new(Snapshot {
            state: initial_state,
            properties: initial_properties,
        });
        let root_node = Node {
            base: Arc::clone(&root),
            base_depth: 0,
            trace: Vec::new(),
            sleep: Vec::new(),
            revisit: false,
        };

        let store = build_store(&self.config.explored);
        store.visit(initial_fingerprint, &[]);
        let stats = SharedStats::new();
        stats.unique_states.store(1, Ordering::Relaxed);

        let cx = WorkerCtx {
            stats: &stats,
            store: store.as_ref(),
            root: &root,
            ctrl,
        };
        match self.config.scheduler {
            SchedulerKind::WorkStealing => self.run_stealing(workers, root_node, cx),
            SchedulerKind::Donation => self.run_donation(workers, root_node, cx),
        }

        let mut report = stats.report();
        report.stats.absorb_explored(store.stats());
        report.lossy = store.lossy();
        // Workers race, so impose a stable order; `first_violation` then
        // means "a shortest witness".
        report.sort_violations();
        report.stats.duration = start.elapsed();
        report
    }

    /// Runs the work-stealing scheduler: one Chase-Lev deque per worker,
    /// the root seeded into worker 0's deque, termination through the
    /// [`StealPool::node_done`] live-node counter.
    fn run_stealing(&self, workers: usize, root_node: Node, cx: WorkerCtx<'_, '_>) {
        let deques: Vec<WorkDeque<Node>> = (0..workers).map(|_| WorkDeque::new()).collect();
        let pool = StealPool {
            stealers: deques.iter().map(WorkDeque::stealer).collect(),
            live: AtomicU64::new(1),
            idlers: AtomicUsize::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
        };
        deques[0].push(root_node);

        std::thread::scope(|scope| {
            for (index, deque) in deques.into_iter().enumerate() {
                let pool = &pool;
                scope.spawn(move || self.stealing_worker(index, deque, pool, cx));
            }
        });
    }

    /// One worker of the work-stealing search. The deque is *owned* by this
    /// worker (local push/pop are lock- and fence-cheap); siblings only
    /// touch it through their [`Stealer`] handles.
    fn stealing_worker(
        &self,
        index: usize,
        deque: WorkDeque<Node>,
        pool: &StealPool,
        cx: WorkerCtx<'_, '_>,
    ) {
        let _stop_on_panic = OnPanic(|| pool.stop(cx.stats));
        let strategy = build_strategy(self.config.strategy);
        let reduction = build_reduction(self.config.reduction);
        let mut memo = DiscoveryMemo::with_shared(Arc::clone(&cx.stats.discoveries));
        let mut events: Vec<Event> = Vec::new();

        while let Some(node) = pool.next_node(index, &deque, cx.stats) {
            // Session control: a fired cancel token or expired deadline winds
            // every worker down (each polls here, so none can hang on work
            // the others abandoned).
            if cx.ctrl.check_interrupt().is_some() {
                pool.stop(cx.stats);
                break;
            }
            match self.expand_node(
                node,
                strategy.as_ref(),
                reduction.as_ref(),
                &mut memo,
                &mut events,
                cx,
            ) {
                Expanded::Children(children) => {
                    // Children enter `live` *before* their parent retires, so
                    // the counter cannot dip to zero while work is still in
                    // flight.
                    if !children.is_empty() {
                        pool.live.fetch_add(children.len() as u64, Ordering::AcqRel);
                        for child in children {
                            deque.push(child);
                        }
                        if pool.idlers.load(Ordering::Relaxed) > 0 {
                            let _guard = pool
                                .park
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            pool.unpark.notify_all();
                        }
                    }
                    pool.node_done(cx.stats);
                }
                Expanded::Stop => {
                    pool.stop(cx.stats);
                    break;
                }
            }
        }

        cx.stats
            .symbolic_executions
            .fetch_add(memo.symbolic_executions, Ordering::Relaxed);
    }

    /// Runs the legacy donation scheduler (kept as the benchmark baseline).
    fn run_donation(&self, workers: usize, root_node: Node, cx: WorkerCtx<'_, '_>) {
        let queue = DonationQueue::new(workers, root_node);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                scope.spawn(move || self.donation_worker(queue, cx));
            }
        });
    }

    /// One worker of the donation search: pops nodes, expands them, and
    /// terminates when every worker is idle on an empty queue (or a stop
    /// condition fired). Each worker keeps a private stack of nodes and only
    /// exchanges work through the shared queue when other workers are
    /// starving, so the common case pays no synchronisation beyond the
    /// explored store and the statistics counters.
    fn donation_worker(&self, queue: &DonationQueue, cx: WorkerCtx<'_, '_>) {
        let _stop_on_panic = OnPanic(|| queue.stop(cx.stats));
        let strategy = build_strategy(self.config.strategy);
        let reduction = build_reduction(self.config.reduction);
        let mut memo = DiscoveryMemo::with_shared(Arc::clone(&cx.stats.discoveries));
        let mut local: Vec<Node> = Vec::new();
        let mut events: Vec<Event> = Vec::new();

        loop {
            let node = if cx.stats.stop.load(Ordering::Relaxed) {
                break;
            } else if let Some(node) = local.pop() {
                node
            } else {
                match queue.pop_work(cx.stats) {
                    Some(node) => node,
                    None => break,
                }
            };
            if cx.ctrl.check_interrupt().is_some() {
                queue.stop(cx.stats);
                break;
            }
            match self.expand_node(
                node,
                strategy.as_ref(),
                reduction.as_ref(),
                &mut memo,
                &mut events,
                cx,
            ) {
                Expanded::Children(children) => {
                    // Work sharing: hand nodes to the shared queue only when
                    // another worker is starving (or the queue is empty);
                    // otherwise keep them on the private stack and skip the
                    // lock entirely.
                    if queue.needs_work() {
                        let mut donated = children;
                        if local.len() > 1 {
                            let take = local.len() / 2;
                            donated.extend(local.drain(..take));
                        }
                        queue.push_work(donated);
                    } else {
                        local.extend(children);
                    }
                }
                Expanded::Stop => {
                    queue.stop(cx.stats);
                    break;
                }
            }
        }

        cx.stats
            .symbolic_executions
            .fetch_add(memo.symbolic_executions, Ordering::Relaxed);
    }

    /// Expands one frontier node: materializes its state, applies the
    /// strategy and the reduction, steps every surviving transition, and
    /// returns the unexplored children. Scheduler-agnostic — both parallel
    /// engines drive the search through this.
    fn expand_node(
        &self,
        node: Node,
        strategy: &dyn SearchStrategy,
        reduction: &dyn Reduction,
        memo: &mut DiscoveryMemo,
        events: &mut Vec<Event>,
        cx: WorkerCtx<'_, '_>,
    ) -> Expanded {
        let WorkerCtx {
            stats,
            store,
            root,
            ctrl,
        } = cx;
        stats
            .max_depth
            .fetch_max(node.trace.len(), Ordering::Relaxed);

        let revisit = node.revisit;
        let parent_base = self.parent_base(&node);
        let (state, properties, trace, sleep) = self.materialize(node, strategy, memo);

        let enabled = enabled_transitions(&state, &self.scenario, &self.config);
        let enabled_count = enabled.len();
        let enabled = strategy.select(&state, enabled);
        stats
            .pruned_by_strategy
            .fetch_add((enabled_count - enabled.len()) as u64, Ordering::Relaxed);

        if enabled.is_empty() {
            // A widened revisit of a terminal state was already counted
            // (and final-checked) on its first visit.
            let mut stop = false;
            if !revisit {
                stats.terminal_states.fetch_add(1, Ordering::Relaxed);
                for property in &properties {
                    if let Some(message) = property.check_final(&state) {
                        let typed = self.make_trace(&trace, None, property.name(), &message);
                        let v = stats.record_violation(property.name(), message, typed);
                        ctrl.notify_violation(&v);
                        if self.config.stop_at_first_violation {
                            stop = true;
                        }
                    }
                }
            }
            return if stop {
                Expanded::Stop
            } else {
                Expanded::Children(Vec::new())
            };
        }

        if trace.len() >= self.config.max_depth {
            stats.truncated.store(true, Ordering::Relaxed);
            return Expanded::Children(Vec::new());
        }

        let choice = reduction.select(&state, &self.scenario, enabled, &sleep);
        stats
            .pruned_by_por
            .fetch_add(choice.pruned, Ordering::Relaxed);
        let mut child_sleeps =
            reduction.child_sleeps(&state, &self.scenario, &choice.explore, &sleep);

        let mut children = Vec::new();
        for (index, transition) in choice.explore.into_iter().enumerate() {
            if stats.stop.load(Ordering::Relaxed) {
                return Expanded::Stop;
            }
            if !stats.try_take_transition_budget(self.config.max_transitions) {
                return Expanded::Stop;
            }
            if let Some(index) = transition.fault_counter_index() {
                stats.faults[index].fetch_add(1, Ordering::Relaxed);
            }

            let (next_state, next_properties, violations) =
                self.step_transition(&state, &properties, &transition, strategy, memo, events);

            ctrl.maybe_progress(
                stats.transitions.load(Ordering::Relaxed),
                stats.unique_states.load(Ordering::Relaxed),
                trace.len() + 1,
                store.bytes(),
            );

            let violated = !violations.is_empty();
            for (property, message) in violations {
                let typed = self.make_trace(&trace, Some(&transition), &property, &message);
                let v = stats.record_violation(&property, message, typed);
                ctrl.notify_violation(&v);
            }
            if violated {
                if self.config.stop_at_first_violation {
                    return Expanded::Stop;
                }
                continue;
            }

            let child_sleep = std::mem::take(&mut child_sleeps[index]);
            let mut child_digests: Vec<u64> = child_sleep.iter().map(Transition::digest).collect();
            child_digests.sort_unstable();
            child_digests.dedup();

            match store.visit(next_state.fingerprint(), &child_digests) {
                Visit::New => {
                    stats.unique_states.fetch_add(1, Ordering::Relaxed);
                    let mut child_trace = trace.clone();
                    child_trace.push(transition.clone());
                    children.push(self.make_node(
                        root,
                        &parent_base,
                        child_trace,
                        next_state,
                        next_properties,
                        child_sleep,
                    ));
                }
                Visit::Known => {
                    stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                }
                Visit::Widen(narrowed) => {
                    let narrowed_sleep: Vec<Transition> = child_sleep
                        .into_iter()
                        .filter(|t| narrowed.binary_search(&t.digest()).is_ok())
                        .collect();
                    let mut child_trace = trace.clone();
                    child_trace.push(transition.clone());
                    let mut node = self.make_node(
                        root,
                        &parent_base,
                        child_trace,
                        next_state,
                        next_properties,
                        narrowed_sleep,
                    );
                    node.revisit = true;
                    children.push(node);
                }
            }
        }
        Expanded::Children(children)
    }

    /// Performs `walks` random walks of at most `max_steps` transitions each
    /// (the "random walks on system states" simulation mode of Section 1.3)
    /// and returns a report covering all walks.
    pub fn run_random_walk(&self, seed: u64, walks: u32, max_steps: usize) -> CheckReport {
        let start = Instant::now();
        let strategy = build_strategy(self.config.strategy);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut memo = DiscoveryMemo::default();
        let mut report = CheckReport::default();
        let mut seen = FingerprintMap::default();

        'walks: for _ in 0..walks {
            let mut state = SystemState::initial(&self.scenario);
            let mut properties = self.scenario.properties.clone();
            let mut trace: Vec<Transition> = Vec::new();
            visit_explored(&mut seen, state.fingerprint(), &[]);

            for _ in 0..max_steps {
                let enabled = enabled_transitions(&state, &self.scenario, &self.config);
                let enabled = strategy.select(&state, enabled);
                if enabled.is_empty() {
                    report.stats.terminal_states += 1;
                    for property in &properties {
                        if let Some(message) = property.check_final(&state) {
                            self.record_violation(
                                &mut report,
                                property.name(),
                                message,
                                &trace,
                                None,
                            );
                            if self.config.stop_at_first_violation {
                                break 'walks;
                            }
                        }
                    }
                    break;
                }
                let choice = rng.gen_range(0..enabled.len());
                let transition = enabled[choice].clone();
                let mut events = Vec::new();
                execute(
                    &mut state,
                    &transition,
                    &self.scenario,
                    &self.config,
                    &mut memo,
                    &mut events,
                );
                if strategy.lock_step_control_plane() {
                    drain_control_plane(
                        &mut state,
                        &self.scenario,
                        &self.config,
                        &mut memo,
                        &mut events,
                    );
                }
                report.stats.transitions += 1;
                report.stats.faults.record(&transition);
                trace.push(transition.clone());
                report.stats.max_depth = report.stats.max_depth.max(trace.len());
                if matches!(
                    visit_explored(&mut seen, state.fingerprint(), &[]),
                    Visit::New
                ) {
                    report.stats.unique_states += 1;
                }
                for event in &events {
                    for property in properties.iter_mut() {
                        property.on_event(event, &state);
                    }
                }
                for property in &properties {
                    if let Some(message) = property.check(&state) {
                        self.record_violation(
                            &mut report,
                            property.name(),
                            message,
                            &trace[..trace.len() - 1],
                            Some(&transition),
                        );
                        if self.config.stop_at_first_violation {
                            break 'walks;
                        }
                    }
                }
            }
        }

        report.stats.symbolic_executions = memo.symbolic_executions;
        report.stats.duration = start.elapsed();
        report
    }
}

// ---------------------------------------------------------------------------
// Shared state of the parallel search
// ---------------------------------------------------------------------------

/// What expanding one frontier node produced.
enum Expanded {
    /// The node's unexplored children (possibly none). The caller owes the
    /// scheduler a `node_done`-style retirement for the expanded node.
    Children(Vec<Node>),
    /// A stop condition fired mid-expansion (budget exhausted, first
    /// violation under `stop_at_first_violation`, or a sibling's stop flag):
    /// wind the search down; any children are deliberately discarded.
    Stop,
}

/// The per-run references every worker shares, bundled so the worker and
/// expansion signatures stay tractable.
#[derive(Clone, Copy)]
struct WorkerCtx<'a, 'c> {
    stats: &'a SharedStats,
    store: &'a dyn ExploredStore,
    root: &'a Arc<Snapshot>,
    ctrl: &'a SessionCtrl<'c>,
}

/// Scheduler-agnostic shared state of one parallel run: the statistics
/// counters, the collected violations, and the stop flag every worker polls
/// between transitions. The *work distribution* state lives in the
/// scheduler ([`StealPool`] or [`DonationQueue`]).
struct SharedStats {
    /// Cross-worker symbolic-discovery cache (see [`SharedDiscoveryCache`]).
    discoveries: Arc<SharedDiscoveryCache>,
    /// Set by any stop condition; whoever sets it must also wake the
    /// scheduler's sleepers (via [`StealPool::stop`] / [`DonationQueue::stop`]).
    stop: AtomicBool,
    transitions: AtomicU64,
    unique_states: AtomicU64,
    terminal_states: AtomicU64,
    symbolic_executions: AtomicU64,
    pruned_by_strategy: AtomicU64,
    pruned_by_por: AtomicU64,
    dedup_hits: AtomicU64,
    work_steals: AtomicU64,
    /// Per-kind fault counters, indexed by
    /// [`Transition::fault_counter_index`].
    faults: [AtomicU64; FaultStats::KINDS],
    max_depth: AtomicUsize,
    truncated: AtomicBool,
    violations: Mutex<Vec<Violation>>,
}

impl SharedStats {
    fn new() -> SharedStats {
        SharedStats {
            discoveries: Arc::new(SharedDiscoveryCache::default()),
            stop: AtomicBool::new(false),
            transitions: AtomicU64::new(0),
            unique_states: AtomicU64::new(0),
            terminal_states: AtomicU64::new(0),
            symbolic_executions: AtomicU64::new(0),
            pruned_by_strategy: AtomicU64::new(0),
            pruned_by_por: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            work_steals: AtomicU64::new(0),
            faults: std::array::from_fn(|_| AtomicU64::new(0)),
            max_depth: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// Claims one unit of the transition budget. On exhaustion, marks the
    /// run truncated and raises the stop flag — the calling worker returns
    /// [`Expanded::Stop`] and its scheduler wakes the sleepers.
    fn try_take_transition_budget(&self, max_transitions: u64) -> bool {
        if max_transitions == 0 {
            self.transitions.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut current = self.transitions.load(Ordering::Relaxed);
        loop {
            if current >= max_transitions {
                self.truncated.store(true, Ordering::Relaxed);
                self.stop.store(true, Ordering::Relaxed);
                return false;
            }
            match self.transitions.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Records a violation and returns the caller's copy of it (for
    /// streaming through the session observer). The typed trace is built by
    /// the worker (via [`ModelChecker::make_trace`]) before taking the lock.
    fn record_violation(&self, property: &str, message: String, trace: Trace) -> Violation {
        let violation = Violation {
            property: property.to_string(),
            message,
            trace,
            transitions_explored: self.transitions.load(Ordering::Relaxed),
            unique_states: self.unique_states.load(Ordering::Relaxed),
        };
        self.violations
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(violation.clone());
        violation
    }

    /// Drains the counters and violations into a report (workers must have
    /// joined).
    fn report(&self) -> CheckReport {
        let mut report = CheckReport::default();
        report.stats.transitions = self.transitions.load(Ordering::Relaxed);
        report.stats.unique_states = self.unique_states.load(Ordering::Relaxed);
        report.stats.terminal_states = self.terminal_states.load(Ordering::Relaxed);
        report.stats.symbolic_executions = self.symbolic_executions.load(Ordering::Relaxed);
        report.stats.pruned_by_strategy = self.pruned_by_strategy.load(Ordering::Relaxed);
        report.stats.pruned_by_por = self.pruned_by_por.load(Ordering::Relaxed);
        report.stats.dedup_hits = self.dedup_hits.load(Ordering::Relaxed);
        report.stats.work_steals = self.work_steals.load(Ordering::Relaxed);
        report.stats.faults = FaultStats::from_counts(std::array::from_fn(|i| {
            self.faults[i].load(Ordering::Relaxed)
        }));
        report.stats.max_depth = self.max_depth.load(Ordering::Relaxed);
        report.stats.truncated = self.truncated.load(Ordering::Relaxed);
        report.violations = std::mem::take(
            &mut *self
                .violations
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        report
    }
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler state
// ---------------------------------------------------------------------------

/// How long an idle worker parks before re-checking the deques. The park
/// protocol has a benign race (a producer can push between a thief's empty
/// check and its wait), so sleeps are always bounded by this timeout
/// instead of relying on wakeups alone.
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

/// Shared state of the work-stealing scheduler: every worker's stealer
/// handle plus the termination counter.
struct StealPool {
    stealers: Vec<Stealer<Node>>,
    /// Frontier nodes created but not yet fully expanded (the root counts
    /// as 1). A worker adds its children *before* retiring their parent
    /// ([`StealPool::node_done`]), so `live` can only reach zero when no
    /// node exists anywhere — in a deque, in flight, or being expanded —
    /// which is exactly the termination condition. Workers that bail out
    /// early (stop flag, interrupt, panic) leave `live` non-zero and
    /// terminate through the stop flag instead.
    live: AtomicU64,
    /// Workers currently parked; producers only bother notifying when > 0.
    idlers: AtomicUsize,
    park: Mutex<()>,
    unpark: Condvar,
}

impl StealPool {
    /// Raises the stop flag and wakes every parked worker.
    fn stop(&self, stats: &SharedStats) {
        stats.stop.store(true, Ordering::Relaxed);
        // Taking the lock orders this notify after any in-progress park
        // decision, so nobody can sleep through the stop for more than the
        // park timeout.
        let _guard = self
            .park
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.unpark.notify_all();
    }

    /// Retires one fully-expanded node; the last retirement ends the search.
    fn node_done(&self, stats: &SharedStats) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.stop(stats);
        }
    }

    /// The idle path of a worker's scheduling loop: local pop, then
    /// round-robin stealing, then a bounded park. Returns `None` when the
    /// search is over.
    fn next_node(
        &self,
        index: usize,
        deque: &WorkDeque<Node>,
        stats: &SharedStats,
    ) -> Option<Node> {
        loop {
            if stats.stop.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(node) = deque.pop() {
                return Some(node);
            }
            if let Some(node) = self.try_steal(index, deque, stats) {
                return Some(node);
            }
            if self.live.load(Ordering::Acquire) == 0 {
                // The last node was retired between our pop and now.
                self.stop(stats);
                return None;
            }
            self.idlers.fetch_add(1, Ordering::Relaxed);
            let guard = self
                .park
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            drop(self.unpark.wait_timeout(guard, PARK_TIMEOUT));
            self.idlers.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Tries each sibling round-robin, starting after `index`. On a hit,
    /// migrates up to half of the victim's *remaining* deque into the
    /// thief's own (steal-half: one successful steal rebalances whole
    /// subtrees, so thieves then run locally instead of coming back per
    /// node) before returning the first stolen node.
    fn try_steal(
        &self,
        index: usize,
        deque: &WorkDeque<Node>,
        stats: &SharedStats,
    ) -> Option<Node> {
        let n = self.stealers.len();
        for offset in 1..n {
            let victim = &self.stealers[(index + offset) % n];
            loop {
                match victim.steal() {
                    Steal::Success(node) => {
                        stats.work_steals.fetch_add(1, Ordering::Relaxed);
                        let extra = victim.len() / 2;
                        for _ in 0..extra {
                            match victim.steal() {
                                Steal::Success(more) => {
                                    stats.work_steals.fetch_add(1, Ordering::Relaxed);
                                    deque.push(more);
                                }
                                Steal::Retry | Steal::Empty => break,
                            }
                        }
                        return Some(node);
                    }
                    // Lost a race: the victim demonstrably has (or had)
                    // work, so retry it rather than moving on.
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Donation scheduler state
// ---------------------------------------------------------------------------

/// The donation frontier queue plus the bookkeeping its termination
/// protocol needs.
struct Frontier {
    queue: Vec<Node>,
    /// Workers currently blocked waiting for work.
    idle: usize,
    /// Set when the search should wind down (every worker idle, budget
    /// exhausted, or first violation under `stop_at_first_violation`).
    stop: bool,
}

/// The legacy work-donation scheduler: one mutex-protected LIFO frontier
/// that busy workers donate to only when a sibling is starving. Kept
/// selectable ([`SchedulerKind::Donation`]) as the baseline the
/// work-stealing scheduler is benchmarked against.
struct DonationQueue {
    workers: usize,
    frontier: Mutex<Frontier>,
    work_available: Condvar,
    /// Mirror of `Frontier::idle` readable without the queue lock.
    idle_count: AtomicUsize,
}

impl DonationQueue {
    fn new(workers: usize, root: Node) -> DonationQueue {
        DonationQueue {
            workers,
            frontier: Mutex::new(Frontier {
                queue: vec![root],
                idle: 0,
                stop: false,
            }),
            work_available: Condvar::new(),
            idle_count: AtomicUsize::new(0),
        }
    }

    /// Locks the frontier, recovering the guard if another worker panicked
    /// while holding the lock (the state under it is kept consistent at
    /// every await point, so a poisoned guard is still safe to use).
    fn lock_frontier(&self) -> std::sync::MutexGuard<'_, Frontier> {
        self.frontier
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pops the next frontier node, blocking while the queue is empty and
    /// other workers may still produce work. Returns `None` when the search
    /// is over: stop was signalled, or every worker went idle at once (no
    /// node left anywhere to generate more work from).
    fn pop_work(&self, stats: &SharedStats) -> Option<Node> {
        let mut frontier = self.lock_frontier();
        loop {
            if frontier.stop {
                return None;
            }
            if let Some(node) = frontier.queue.pop() {
                return Some(node);
            }
            frontier.idle += 1;
            self.idle_count.store(frontier.idle, Ordering::Relaxed);
            if frontier.idle == self.workers {
                frontier.stop = true;
                stats.stop.store(true, Ordering::Relaxed);
                self.work_available.notify_all();
                return None;
            }
            frontier = self
                .work_available
                .wait(frontier)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            frontier.idle -= 1;
            self.idle_count.store(frontier.idle, Ordering::Relaxed);
        }
    }

    /// True if some worker is starved for work. An empty shared queue alone
    /// is not starvation — every worker may be busy on its private stack —
    /// so only actual idleness triggers donation, keeping the steady state
    /// lock-free.
    fn needs_work(&self) -> bool {
        self.idle_count.load(Ordering::Relaxed) > 0
    }

    /// Pushes a batch of children (one lock round-trip per expanded node).
    fn push_work(&self, children: Vec<Node>) {
        if children.is_empty() {
            return;
        }
        let mut frontier = self.lock_frontier();
        let woken = children.len();
        frontier.queue.extend(children);
        drop(frontier);
        if woken == 1 {
            self.work_available.notify_one();
        } else {
            self.work_available.notify_all();
        }
    }

    /// Ends the search (first violation under stop-at-first, budget, or a
    /// panicking worker).
    fn stop(&self, stats: &SharedStats) {
        stats.stop.store(true, Ordering::Relaxed);
        let mut frontier = self.lock_frontier();
        frontier.stop = true;
        drop(frontier);
        self.work_available.notify_all();
    }
}

/// Guard ensuring a panicking worker winds the whole search down instead of
/// leaving its siblings parked forever; the panic itself is then re-raised
/// by `std::thread::scope`.
struct OnPanic<F: Fn()>(F);

impl<F: Fn()> Drop for OnPanic<F> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            (self.0)();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrategyKind;
    use crate::testutil;

    #[test]
    fn hub_ping_scenario_passes_default_properties() {
        let scenario = testutil::hub_ping_scenario(1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(report.passed(), "unexpected violation: {report}");
        assert!(report.stats.transitions > 0);
        assert!(report.stats.unique_states > 1);
        assert!(report.stats.terminal_states > 0);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn forgetful_app_violates_no_forgotten_packets() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(!report.passed());
        let violation = report.first_violation().unwrap();
        assert_eq!(violation.property, "NoForgottenPackets");
        assert!(!violation.trace.is_empty());
        assert!(violation.to_string().contains("NoForgottenPackets"));
    }

    #[test]
    fn exhaustive_and_replay_storage_agree() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        let replay = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_state_storage(StateStorage::Replay),
        )
        .run();
        assert_eq!(full.passed(), replay.passed());
        assert_eq!(full.stats.transitions, replay.stats.transitions);
        assert_eq!(full.stats.unique_states, replay.stats.unique_states);
    }

    #[test]
    fn checkpoint_storage_agrees_with_full_at_every_cadence() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        for interval in [1, 2, 3, 5, 64] {
            let checkpointed = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default().with_checkpoint_interval(interval),
            )
            .run();
            assert_eq!(full.passed(), checkpointed.passed(), "interval {interval}");
            assert_eq!(
                full.stats.transitions, checkpointed.stats.transitions,
                "interval {interval}"
            );
            assert_eq!(
                full.stats.unique_states, checkpointed.stats.unique_states,
                "interval {interval}"
            );
            assert_eq!(
                full.stats.max_depth, checkpointed.stats.max_depth,
                "interval {interval}"
            );
        }
    }

    #[test]
    fn checkpoint_storage_reproduces_violation_traces() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        let checkpointed = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_checkpoint_interval(3),
        )
        .run();
        assert_eq!(
            full.first_violation().map(|v| v.trace.clone()),
            checkpointed.first_violation().map(|v| v.trace.clone())
        );
    }

    #[test]
    fn parallel_search_agrees_with_sequential() {
        let scenario = testutil::hub_ping_scenario(2);
        let sequential = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        for workers in [2, 4] {
            let parallel = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default()
                    .with_stop_at_first(false)
                    .with_workers(workers),
            )
            .run();
            assert!(parallel.passed());
            assert_eq!(
                sequential.stats.unique_states, parallel.stats.unique_states,
                "{workers} workers"
            );
            assert_eq!(
                sequential.stats.transitions, parallel.stats.transitions,
                "{workers} workers"
            );
            assert_eq!(
                sequential.stats.terminal_states, parallel.stats.terminal_states,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn parallel_search_finds_the_same_violated_properties() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let sequential = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        let parallel = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_workers(4),
        )
        .run();
        let properties = |report: &CheckReport| {
            let mut names: Vec<String> = report
                .violations
                .iter()
                .map(|v| v.property.clone())
                .collect();
            names.sort();
            names
        };
        assert!(!sequential.passed());
        assert!(!parallel.passed());
        assert_eq!(properties(&sequential), properties(&parallel));
        assert_eq!(sequential.stats.unique_states, parallel.stats.unique_states);
    }

    #[test]
    fn parallel_search_respects_stop_at_first_violation() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let report = ModelChecker::new(scenario, CheckerConfig::default().with_workers(4)).run();
        assert!(!report.passed());
        assert_eq!(
            report.first_violation().unwrap().property,
            "NoForgottenPackets"
        );
    }

    #[test]
    fn strategies_reduce_or_preserve_the_state_space() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        for kind in [
            StrategyKind::NoDelay,
            StrategyKind::FlowIr,
            StrategyKind::Unusual,
        ] {
            let report = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default().with_strategy(kind),
            )
            .run();
            assert!(
                report.passed(),
                "{kind:?} found a spurious violation: {report}"
            );
            assert!(
                report.stats.transitions <= full.stats.transitions,
                "{kind:?} explored more transitions ({}) than the full search ({})",
                report.stats.transitions,
                full.stats.transitions
            );
        }
    }

    #[test]
    fn transition_budget_truncates_search() {
        let scenario = testutil::hub_ping_scenario(3);
        let report =
            ModelChecker::new(scenario, CheckerConfig::default().with_max_transitions(5)).run();
        assert!(report.stats.truncated);
        assert!(report.stats.transitions <= 5);
    }

    #[test]
    fn parallel_transition_budget_truncates_search() {
        let scenario = testutil::hub_ping_scenario(3);
        let report = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_max_transitions(5)
                .with_workers(4),
        )
        .run();
        assert!(report.stats.truncated);
        assert!(report.stats.transitions <= 5);
    }

    #[test]
    fn random_walk_mode_runs_and_reports() {
        let scenario = testutil::hub_ping_scenario(2);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run_random_walk(7, 3, 50);
        assert!(
            report.passed(),
            "hub scenario has no violations to find: {report}"
        );
        assert!(report.stats.transitions > 0);
        // Deterministic for a fixed seed.
        let again = checker.run_random_walk(7, 3, 50);
        assert_eq!(report.stats.transitions, again.stats.transitions);
        assert_eq!(report.stats.unique_states, again.stats.unique_states);
    }

    #[test]
    fn discovery_scenario_explores_symbolically() {
        let scenario = testutil::discovery_scenario(Box::new(testutil::HubApp::default()), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(report.passed(), "{report}");
        assert!(
            report.stats.symbolic_executions >= 1,
            "discover_packets must have run"
        );
        assert!(report.stats.transitions > 0);
    }

    #[test]
    fn report_display_summarises() {
        let scenario = testutil::hub_ping_scenario(1);
        let report = ModelChecker::new(scenario, CheckerConfig::default()).run();
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("transitions"));
    }

    #[test]
    fn panicking_property_propagates_from_parallel_search() {
        /// A user-written property that panics mid-search (users implement
        /// `Property`, so worker threads must survive arbitrary panics by
        /// winding the search down rather than deadlocking their siblings).
        #[derive(Clone)]
        struct PanickingProperty;
        impl crate::properties::Property for PanickingProperty {
            fn name(&self) -> &str {
                "Panicking"
            }
            fn on_event(&mut self, _: &crate::properties::Event, _: &SystemState) {}
            fn check(&self, _: &SystemState) -> Option<String> {
                panic!("property panicked on purpose");
            }
            fn clone_property(&self) -> Box<dyn crate::properties::Property> {
                Box::new(self.clone())
            }
        }

        let scenario = testutil::hub_ping_scenario(1).with_property(Box::new(PanickingProperty));
        let checker = ModelChecker::new(scenario, CheckerConfig::default().with_workers(4));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checker.run()));
        assert!(result.is_err(), "the worker panic must propagate, not hang");
    }

    #[test]
    fn por_prunes_transitions_but_preserves_the_verdict() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        let por = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        assert_eq!(full.passed(), por.passed());
        assert!(
            por.stats.transitions < full.stats.transitions,
            "POR must prune something on the hub workload: {} vs {}",
            por.stats.transitions,
            full.stats.transitions
        );
        assert!(por.stats.pruned_by_por > 0);
        assert_eq!(full.stats.pruned_by_por, 0);
        assert_eq!(full.stats.terminal_states, por.stats.terminal_states);
    }

    #[test]
    fn por_finds_the_same_violated_properties() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 2);
        let properties = |report: &CheckReport| {
            let mut names: Vec<String> = report
                .violations
                .iter()
                .map(|v| v.property.clone())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        let shortest = |report: &CheckReport| {
            report
                .violations
                .iter()
                .map(|v| v.trace.len())
                .min()
                .unwrap_or(0)
        };
        let full = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        let por = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        assert!(!full.passed());
        assert!(!por.passed());
        assert_eq!(properties(&full), properties(&por));
        assert_eq!(shortest(&full), shortest(&por));
        assert!(por.stats.transitions <= full.stats.transitions);
    }

    #[test]
    fn por_sleep_sets_survive_checkpoint_replay_reconstruction() {
        let scenario = testutil::hub_ping_scenario(2);
        let reference = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        for storage in [
            StateStorage::Replay,
            StateStorage::Checkpoint { interval: 2 },
            StateStorage::Checkpoint { interval: 5 },
        ] {
            let checkpointed = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default()
                    .with_stop_at_first(false)
                    .with_reduction(crate::scenario::ReductionKind::Por)
                    .with_state_storage(storage),
            )
            .run();
            assert_eq!(
                reference.stats.transitions, checkpointed.stats.transitions,
                "{storage:?}"
            );
            assert_eq!(
                reference.stats.unique_states, checkpointed.stats.unique_states,
                "{storage:?}"
            );
            assert_eq!(
                reference.stats.pruned_by_por, checkpointed.stats.pruned_by_por,
                "{storage:?}"
            );
        }
    }

    #[test]
    fn por_parallel_agrees_with_sequential_por() {
        let scenario = testutil::hub_ping_scenario(2);
        let sequential = ModelChecker::new(
            scenario.clone(),
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        let parallel = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_reduction(crate::scenario::ReductionKind::Por)
                .with_workers(4),
        )
        .run();
        assert_eq!(sequential.passed(), parallel.passed());
        // Workers race on sleep-set narrowing, so transition counts may
        // wobble slightly, but the reduced search must stay well under the
        // unreduced space and find the same terminal coverage.
        let full = ModelChecker::new(
            testutil::hub_ping_scenario(2),
            CheckerConfig::default().with_stop_at_first(false),
        )
        .run();
        assert!(parallel.stats.transitions <= full.stats.transitions);
        assert_eq!(
            sequential.stats.terminal_states,
            parallel.stats.terminal_states
        );
    }

    #[test]
    fn strategy_prune_counter_reports_filtered_transitions() {
        let scenario = testutil::hub_ping_scenario(2);
        let unusual = ModelChecker::new(
            scenario,
            CheckerConfig::default()
                .with_stop_at_first(false)
                .with_strategy(StrategyKind::Unusual),
        )
        .run();
        assert!(
            unusual.stats.pruned_by_strategy > 0,
            "UNUSUAL must filter some process_of deliveries"
        );
    }

    #[test]
    fn report_display_includes_prune_counters() {
        let scenario = testutil::hub_ping_scenario(1);
        let report = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_reduction(crate::scenario::ReductionKind::Por),
        )
        .run();
        let text = report.to_string();
        assert!(text.contains("pruned by POR"));
        assert!(text.contains("pruned by strategy"));
        assert!(text.contains("dedup hits"));
    }
}
