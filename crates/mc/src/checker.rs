//! The state-space search loop (Figure 5), violation traces and search
//! statistics, plus a random-walk simulation mode.

use crate::properties::{Event, Property};
use crate::scenario::{CheckerConfig, Scenario, StateStorage};
use crate::state::SystemState;
use crate::strategy::build_strategy;
use crate::transition::{drain_control_plane, enabled_transitions, execute, DiscoveryMemo, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

/// A property violation together with the trace that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated property.
    pub property: String,
    /// The violation message.
    pub message: String,
    /// The transitions from the initial state that reproduce the violation,
    /// in order, rendered as human-readable labels.
    pub trace: Vec<String>,
    /// How many transitions had been explored when the violation was found.
    pub transitions_explored: u64,
    /// How many unique states had been seen when the violation was found.
    pub unique_states: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation of {}: {}", self.property, self.message)?;
        writeln!(
            f,
            "  found after {} transitions / {} unique states; trace ({} steps):",
            self.transitions_explored,
            self.unique_states,
            self.trace.len()
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "    {:>3}. {}", i + 1, step)?;
        }
        Ok(())
    }
}

/// Aggregate statistics of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Transitions executed.
    pub transitions: u64,
    /// Unique states encountered (by fingerprint).
    pub unique_states: u64,
    /// Terminal states reached (states with no enabled transitions).
    pub terminal_states: u64,
    /// Concolic explorations executed (cache misses of the discovery memo).
    pub symbolic_executions: u64,
    /// Deepest path explored.
    pub max_depth: usize,
    /// True if a budget (transition or depth limit) cut the search short.
    pub truncated: bool,
    /// Wall-clock duration of the search.
    pub duration: Duration,
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Every violation found (just the first one when
    /// `stop_at_first_violation` is set).
    pub violations: Vec<Violation>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl CheckReport {
    /// True if no property was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | transitions: {} | unique states: {} | terminal states: {} | time: {:.2?}{}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.stats.transitions,
            self.stats.unique_states,
            self.stats.terminal_states,
            self.stats.duration,
            if self.stats.truncated { " (truncated)" } else { "" }
        )?;
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// One frontier entry of the depth-first search.
struct Node {
    /// The state (present under [`StateStorage::Full`]).
    state: Option<SystemState>,
    /// Property local state matching `state`.
    properties: Option<Vec<Box<dyn Property>>>,
    /// The transition sequence from the initial state (always kept: it is the
    /// violation trace, and under [`StateStorage::Replay`] it is also how the
    /// state is reconstructed).
    trace: Vec<Transition>,
}

/// The NICE model checker.
pub struct ModelChecker {
    scenario: Scenario,
    config: CheckerConfig,
}

impl ModelChecker {
    /// Creates a checker for a scenario with the given configuration.
    pub fn new(scenario: Scenario, config: CheckerConfig) -> Self {
        ModelChecker { scenario, config }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The search configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Runs the search and returns the report.
    pub fn run(&self) -> CheckReport {
        let start = Instant::now();
        let strategy = build_strategy(self.config.strategy);
        let mut memo = DiscoveryMemo::default();
        let mut report = CheckReport::default();
        let mut explored: HashSet<u64> = HashSet::new();

        let initial_state = SystemState::initial(&self.scenario);
        let initial_properties: Vec<Box<dyn Property>> = self.scenario.properties.clone();
        explored.insert(initial_state.fingerprint());
        report.stats.unique_states = 1;

        let mut stack: Vec<Node> = vec![Node {
            state: Some(initial_state.clone()),
            properties: Some(initial_properties.clone()),
            trace: Vec::new(),
        }];

        'search: while let Some(node) = stack.pop() {
            report.stats.max_depth = report.stats.max_depth.max(node.trace.len());

            // Materialise the node's state and property state.
            let (state, properties) = match (node.state, node.properties) {
                (Some(s), Some(p)) => (s, p),
                _ => self.replay(&initial_state, &initial_properties, &node.trace, &mut memo),
            };

            let enabled = enabled_transitions(&state, &self.scenario, &self.config);
            let enabled = strategy.select(&state, enabled);

            if enabled.is_empty() {
                report.stats.terminal_states += 1;
                for property in &properties {
                    if let Some(message) = property.check_final(&state) {
                        record_violation(&mut report, property.name(), message, &node.trace, None);
                        if self.config.stop_at_first_violation {
                            break 'search;
                        }
                    }
                }
                continue;
            }

            if node.trace.len() >= self.config.max_depth {
                report.stats.truncated = true;
                continue;
            }

            for transition in enabled {
                if self.config.max_transitions > 0
                    && report.stats.transitions >= self.config.max_transitions
                {
                    report.stats.truncated = true;
                    break 'search;
                }

                let mut next_state = state.clone();
                let mut next_properties = properties.clone();
                let mut events: Vec<Event> = Vec::new();
                execute(
                    &mut next_state,
                    &transition,
                    &self.scenario,
                    &self.config,
                    &mut memo,
                    &mut events,
                );
                if strategy.lock_step_control_plane() {
                    drain_control_plane(
                        &mut next_state,
                        &self.scenario,
                        &self.config,
                        &mut memo,
                        &mut events,
                    );
                }
                report.stats.transitions += 1;

                for event in &events {
                    for property in next_properties.iter_mut() {
                        property.on_event(event, &next_state);
                    }
                }

                let mut violated = false;
                for property in &next_properties {
                    if let Some(message) = property.check(&next_state) {
                        record_violation(
                            &mut report,
                            property.name(),
                            message,
                            &node.trace,
                            Some(&transition),
                        );
                        violated = true;
                        if self.config.stop_at_first_violation {
                            break 'search;
                        }
                    }
                }
                if violated {
                    // Do not explore past a violating state: the trace is the
                    // shortest continuation through this branch and deeper
                    // states would just repeat the same violation.
                    continue;
                }

                let fingerprint = next_state.fingerprint();
                if explored.insert(fingerprint) {
                    report.stats.unique_states += 1;
                    let mut trace = node.trace.clone();
                    trace.push(transition);
                    let node = match self.config.state_storage {
                        StateStorage::Full => Node {
                            state: Some(next_state),
                            properties: Some(next_properties),
                            trace,
                        },
                        StateStorage::Replay => Node { state: None, properties: None, trace },
                    };
                    stack.push(node);
                }
            }
        }

        report.stats.symbolic_executions = memo.symbolic_executions;
        report.stats.duration = start.elapsed();
        report
    }

    /// Performs `walks` random walks of at most `max_steps` transitions each
    /// (the "random walks on system states" simulation mode of Section 1.3)
    /// and returns a report covering all walks.
    pub fn run_random_walk(&self, seed: u64, walks: u32, max_steps: usize) -> CheckReport {
        let start = Instant::now();
        let strategy = build_strategy(self.config.strategy);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut memo = DiscoveryMemo::default();
        let mut report = CheckReport::default();
        let mut seen: HashSet<u64> = HashSet::new();

        'walks: for _ in 0..walks {
            let mut state = SystemState::initial(&self.scenario);
            let mut properties = self.scenario.properties.clone();
            let mut trace: Vec<Transition> = Vec::new();
            seen.insert(state.fingerprint());

            for _ in 0..max_steps {
                let enabled = enabled_transitions(&state, &self.scenario, &self.config);
                let enabled = strategy.select(&state, enabled);
                if enabled.is_empty() {
                    report.stats.terminal_states += 1;
                    for property in &properties {
                        if let Some(message) = property.check_final(&state) {
                            record_violation(&mut report, property.name(), message, &trace, None);
                            if self.config.stop_at_first_violation {
                                break 'walks;
                            }
                        }
                    }
                    break;
                }
                let choice = rng.gen_range(0..enabled.len());
                let transition = enabled[choice].clone();
                let mut events = Vec::new();
                execute(&mut state, &transition, &self.scenario, &self.config, &mut memo, &mut events);
                if strategy.lock_step_control_plane() {
                    drain_control_plane(&mut state, &self.scenario, &self.config, &mut memo, &mut events);
                }
                report.stats.transitions += 1;
                trace.push(transition.clone());
                report.stats.max_depth = report.stats.max_depth.max(trace.len());
                if seen.insert(state.fingerprint()) {
                    report.stats.unique_states += 1;
                }
                for event in &events {
                    for property in properties.iter_mut() {
                        property.on_event(event, &state);
                    }
                }
                for property in &properties {
                    if let Some(message) = property.check(&state) {
                        record_violation(
                            &mut report,
                            property.name(),
                            message,
                            &trace[..trace.len() - 1],
                            Some(&transition),
                        );
                        if self.config.stop_at_first_violation {
                            break 'walks;
                        }
                    }
                }
            }
        }

        report.stats.symbolic_executions = memo.symbolic_executions;
        report.stats.duration = start.elapsed();
        report
    }

    /// Rebuilds a state (and its property state) by replaying a transition
    /// sequence from the initial state — the memory-saving state restoration
    /// of Section 6.
    fn replay(
        &self,
        initial_state: &SystemState,
        initial_properties: &[Box<dyn Property>],
        trace: &[Transition],
        memo: &mut DiscoveryMemo,
    ) -> (SystemState, Vec<Box<dyn Property>>) {
        let strategy = build_strategy(self.config.strategy);
        let mut state = initial_state.clone();
        let mut properties: Vec<Box<dyn Property>> = initial_properties.to_vec();
        for transition in trace {
            let mut events = Vec::new();
            execute(&mut state, transition, &self.scenario, &self.config, memo, &mut events);
            if strategy.lock_step_control_plane() {
                drain_control_plane(&mut state, &self.scenario, &self.config, memo, &mut events);
            }
            for event in &events {
                for property in properties.iter_mut() {
                    property.on_event(event, &state);
                }
            }
        }
        (state, properties)
    }
}

fn record_violation(
    report: &mut CheckReport,
    property: &str,
    message: String,
    trace: &[Transition],
    last: Option<&Transition>,
) {
    let mut labels: Vec<String> = trace.iter().map(|t| t.to_string()).collect();
    if let Some(t) = last {
        labels.push(t.to_string());
    }
    report.violations.push(Violation {
        property: property.to_string(),
        message,
        trace: labels,
        transitions_explored: report.stats.transitions,
        unique_states: report.stats.unique_states,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrategyKind;
    use crate::testutil;

    #[test]
    fn hub_ping_scenario_passes_default_properties() {
        let scenario = testutil::hub_ping_scenario(1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(report.passed(), "unexpected violation: {report}");
        assert!(report.stats.transitions > 0);
        assert!(report.stats.unique_states > 1);
        assert!(report.stats.terminal_states > 0);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn forgetful_app_violates_no_forgotten_packets() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(!report.passed());
        let violation = report.first_violation().unwrap();
        assert_eq!(violation.property, "NoForgottenPackets");
        assert!(!violation.trace.is_empty());
        assert!(violation.to_string().contains("NoForgottenPackets"));
    }

    #[test]
    fn exhaustive_and_replay_storage_agree() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        let replay = ModelChecker::new(
            scenario,
            CheckerConfig::default().with_state_storage(StateStorage::Replay),
        )
        .run();
        assert_eq!(full.passed(), replay.passed());
        assert_eq!(full.stats.transitions, replay.stats.transitions);
        assert_eq!(full.stats.unique_states, replay.stats.unique_states);
    }

    #[test]
    fn strategies_reduce_or_preserve_the_state_space() {
        let scenario = testutil::hub_ping_scenario(2);
        let full = ModelChecker::new(scenario.clone(), CheckerConfig::default()).run();
        for kind in [StrategyKind::NoDelay, StrategyKind::FlowIr, StrategyKind::Unusual] {
            let report = ModelChecker::new(
                scenario.clone(),
                CheckerConfig::default().with_strategy(kind),
            )
            .run();
            assert!(report.passed(), "{kind:?} found a spurious violation: {report}");
            assert!(
                report.stats.transitions <= full.stats.transitions,
                "{kind:?} explored more transitions ({}) than the full search ({})",
                report.stats.transitions,
                full.stats.transitions
            );
        }
    }

    #[test]
    fn transition_budget_truncates_search() {
        let scenario = testutil::hub_ping_scenario(3);
        let report =
            ModelChecker::new(scenario, CheckerConfig::default().with_max_transitions(5)).run();
        assert!(report.stats.truncated);
        assert!(report.stats.transitions <= 5);
    }

    #[test]
    fn random_walk_mode_runs_and_reports() {
        let scenario = testutil::hub_ping_scenario(2);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run_random_walk(7, 3, 50);
        assert!(report.passed(), "hub scenario has no violations to find: {report}");
        assert!(report.stats.transitions > 0);
        // Deterministic for a fixed seed.
        let again = checker.run_random_walk(7, 3, 50);
        assert_eq!(report.stats.transitions, again.stats.transitions);
        assert_eq!(report.stats.unique_states, again.stats.unique_states);
    }

    #[test]
    fn discovery_scenario_explores_symbolically() {
        let scenario = testutil::discovery_scenario(Box::new(testutil::HubApp::default()), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let report = checker.run();
        assert!(report.passed(), "{report}");
        assert!(report.stats.symbolic_executions >= 1, "discover_packets must have run");
        assert!(report.stats.transitions > 0);
    }

    #[test]
    fn report_display_summarises() {
        let scenario = testutil::hub_ping_scenario(1);
        let report = ModelChecker::new(scenario, CheckerConfig::default()).run();
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("transitions"));
    }
}
