//! Counterexample minimization (ddmin delta debugging) and bisection.
//!
//! Both tools are replay loops over the deterministic sequential engine —
//! no new search machinery. They normalize scheduling away: whatever
//! engine recorded the witness (the parallel search's choice of shortest
//! trace is scheduling-dependent), candidates are re-executed on the
//! 1-worker semantics, so results are reproducible byte-for-byte.
//!
//! # Minimization
//!
//! [`ModelChecker::minimize`] runs ddmin (Zeller & Hildebrandt) over the
//! trace's transitions with a *completion-based* failure predicate: a
//! candidate subset is replayed step by step, steps no longer enabled are
//! skipped (dropping a prerequisite disables dependents; the rest of the
//! suffix is often still executable), and if the candidate runs out before
//! the target property fails, the execution is extended deterministically
//! (always the engine's first offered transition) up to a length cap. The
//! witness kept is the *executed* sequence — truncated at the step the
//! property fires — so minimized traces always replay verbatim and never
//! grow. Final-state properties (BUG-V's `NoForgottenPackets` fires only
//! in terminal states) are handled by the terminal check at the end of a
//! completed candidate.
//!
//! # Bisection
//!
//! [`ModelChecker::bisect`] finds the first prefix length `k` after which
//! the violation is *unavoidable*: every continuation of the first `k`
//! steps violates the target property. Unavoidability is monotone in `k`
//! (continuations of a longer prefix are a subset of the shorter one's),
//! so a binary search with a bounded exhaustive probe per midpoint finds
//! the frontier in `O(log n)` probes. Each probe replays the prefix and
//! explores every continuation (fingerprint-deduplicated, budget-bounded),
//! looking for one violation-free terminal completion.

use crate::checker::ModelChecker;
use crate::replay::{Replayer, StepResult};
use crate::trace::{Trace, TraceEngine};
use crate::transition::Transition;
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Per-candidate transition budget for the completion search in
/// [`ModelChecker::minimize`]'s failure predicate. Small scenarios are
/// covered exhaustively; in large spaces the search degrades gracefully
/// (candidates whose completion is out of reach are rejected).
const EXTEND_BUDGET: u64 = 5_000;

/// The result of minimizing a trace.
#[derive(Debug, Clone)]
pub struct MinimizeReport {
    /// Steps in the trace that was minimized.
    pub original_len: usize,
    /// The minimized trace: replays verbatim on the 1-worker engine and
    /// still violates [`MinimizeReport::property`]. Never longer than the
    /// original.
    pub minimized: Trace,
    /// The property every kept candidate had to keep violating.
    pub property: String,
    /// Replays executed by the ddmin loop.
    pub replays: u64,
}

impl MinimizeReport {
    /// Steps removed relative to the original trace.
    pub fn removed(&self) -> usize {
        self.original_len - self.minimized.len()
    }

    /// Fraction of steps removed, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            self.removed() as f64 * 100.0 / self.original_len as f64
        }
    }
}

impl fmt::Display for MinimizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "minimized {} -> {} steps (-{:.0}%) | property: {} | replays: {}",
            self.original_len,
            self.minimized.len(),
            self.reduction_percent(),
            self.property,
            self.replays
        )?;
        write!(f, "{}", self.minimized)
    }
}

/// The result of bisecting a trace.
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// Steps in the bisected trace.
    pub len: usize,
    /// The property whose violation was localised.
    pub property: String,
    /// The smallest verified prefix length after which every continuation
    /// violates the property. `Some(0)` means the violation is unavoidable
    /// from the initial state. When [`BisectReport::decided`] is false this
    /// is the best *upper bound* the budget allowed.
    pub first_unavoidable: Option<usize>,
    /// The transition that committed the system — step
    /// `first_unavoidable` of the trace (`None` when that is 0).
    pub culprit: Option<Transition>,
    /// False if the exploration budget ran out before the frontier was
    /// pinned down exactly.
    pub decided: bool,
    /// Bisection probes performed.
    pub probes: u32,
    /// Transitions executed across all probe explorations.
    pub explored: u64,
}

impl fmt::Display for BisectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.first_unavoidable {
            Some(0) => writeln!(
                f,
                "violation of {} is unavoidable from the initial state",
                self.property
            )?,
            Some(k) => {
                writeln!(
                    f,
                    "violation of {} becomes unavoidable after step {}/{}{}",
                    self.property,
                    k,
                    self.len,
                    if self.decided {
                        ""
                    } else {
                        " (upper bound; probe budget exhausted)"
                    }
                )?;
                if let Some(t) = &self.culprit {
                    writeln!(f, "  committing transition: {t}")?;
                }
            }
            None => writeln!(f, "bisection of {} was inconclusive", self.property)?,
        }
        write!(
            f,
            "  probes: {} | transitions explored: {}",
            self.probes, self.explored
        )
    }
}

/// A reproduced failure: the exactly-executed steps and the message the
/// target property fired with.
struct Witness {
    steps: Vec<Transition>,
    message: String,
}

/// Verdict of one bisection probe.
enum Probe {
    Unavoidable,
    Avoidable,
    Undecided,
}

impl ModelChecker {
    /// Minimizes a violation trace with ddmin delta debugging: repeatedly
    /// drops transition subsets and keeps any shrink after which replay (on
    /// the deterministic 1-worker engine) still violates the same property.
    /// See the [module docs](crate::minimize) for the exact predicate.
    ///
    /// Errors if replay does not reproduce a violation to minimize against.
    pub fn minimize(&self, trace: &Trace) -> Result<MinimizeReport, String> {
        let transitions: Vec<Transition> = trace.transitions().into_iter().cloned().collect();
        let mut engine = trace.engine;
        engine.workers = 1;
        let original_len = transitions.len();
        let mut replays = 0u64;

        let target = match &trace.property {
            Some(p) => p.clone(),
            None => {
                // Untargeted trace: take the first property its replay
                // violates.
                let report = self.replay(trace);
                report
                    .violations
                    .first()
                    .map(|v| v.property.clone())
                    .ok_or("trace violates no property; nothing to minimize against")?
            }
        };

        let mut best = self
            .try_reproduce(&engine, &transitions, &target, original_len, &mut replays)
            .ok_or_else(|| {
                format!("replay of the trace does not reproduce a violation of {target}")
            })?;

        // ddmin: split into n chunks; try each chunk alone, then each
        // complement; refine granularity when neither helps.
        let mut n = 2usize;
        while best.steps.len() >= 2 {
            let len = best.steps.len();
            let chunk = len.div_ceil(n);
            let cap = len - 1;
            let mut improved = false;

            for i in 0..n {
                let lo = i * chunk;
                if lo >= len {
                    break;
                }
                let hi = (lo + chunk).min(len);
                let subset = best.steps[lo..hi].to_vec();
                if let Some(w) = self.try_reproduce(&engine, &subset, &target, cap, &mut replays) {
                    best = w;
                    improved = true;
                    break;
                }
            }
            if improved {
                n = 2;
                continue;
            }

            if n > 2 {
                for i in 0..n {
                    let lo = i * chunk;
                    if lo >= len {
                        break;
                    }
                    let hi = (lo + chunk).min(len);
                    let complement: Vec<Transition> = best.steps[..lo]
                        .iter()
                        .chain(&best.steps[hi..])
                        .cloned()
                        .collect();
                    if let Some(w) =
                        self.try_reproduce(&engine, &complement, &target, cap, &mut replays)
                    {
                        best = w;
                        improved = true;
                        break;
                    }
                }
            }
            if improved {
                n = (n - 1).max(2);
                continue;
            }

            if n >= len {
                break;
            }
            n = (2 * n).min(len);
        }

        // Polish: ddmin's chunks live at fixed `i*chunk` offsets, so a
        // removable pair or triple straddling a chunk boundary (a fault
        // step plus its downstream consequence, typically) is never tried
        // as one unit. A sliding-window removal pass covers every offset;
        // iterate it to a fixpoint.
        let mut improved = true;
        while improved && best.steps.len() >= 2 {
            improved = false;
            'windows: for w in [1usize, 2, 3] {
                if best.steps.len() <= w {
                    continue;
                }
                for start in 0..=best.steps.len() - w {
                    let candidate: Vec<Transition> = best.steps[..start]
                        .iter()
                        .chain(&best.steps[start + w..])
                        .cloned()
                        .collect();
                    let cap = best.steps.len() - 1;
                    if let Some(witness) =
                        self.try_reproduce(&engine, &candidate, &target, cap, &mut replays)
                    {
                        best = witness;
                        improved = true;
                        break 'windows;
                    }
                }
            }
        }

        let mut minimized = Trace::from_transitions(&trace.scenario, engine, best.steps);
        minimized.property = Some(target.clone());
        minimized.message = Some(best.message);
        Ok(MinimizeReport {
            original_len,
            minimized,
            property: target,
            replays,
        })
    }

    /// Replays `candidate` (skipping steps that are no longer enabled) and,
    /// if the target property has not fired when the candidate runs out,
    /// searches the continuations breadth-first for the *shortest* violating
    /// completion — bounded by `max_len` total executed steps and
    /// [`EXTEND_BUDGET`] explored transitions. Returns the executed steps —
    /// a verbatim-replayable witness of at most `max_len` steps — iff the
    /// target property fired (mid-trace `check` or terminal `check_final`).
    fn try_reproduce(
        &self,
        engine: &TraceEngine,
        candidate: &[Transition],
        target: &str,
        max_len: usize,
        replays: &mut u64,
    ) -> Option<Witness> {
        *replays += 1;
        let mut replayer = Replayer::new(self, engine);
        let mut executed: Vec<Transition> = Vec::new();
        for transition in candidate {
            if executed.len() >= max_len {
                return None;
            }
            match replayer.step(transition) {
                StepResult::Diverged => continue,
                StepResult::Executed(violations) => {
                    executed.push(transition.clone());
                    if let Some((_, message)) = violations.into_iter().find(|(p, _)| p == target) {
                        return Some(Witness {
                            steps: executed,
                            message,
                        });
                    }
                }
            }
        }
        // Candidate exhausted without the target firing: complete the
        // execution. Breadth-first, so the first violating completion found
        // is also the shortest one — final-state properties (which need a
        // terminal state to fire in) are covered by the terminal check. If
        // the exploration budget runs out (large completion space), fall
        // back to the cheap greedy completion: always the engine's first
        // offered transition.
        let fallback = replayer.branch();
        let start_len = executed.len();
        let mut budget = EXTEND_BUDGET;
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(replayer.fingerprint());
        let mut queue: VecDeque<(Replayer<'_>, Vec<Transition>)> = VecDeque::new();
        queue.push_back((replayer, Vec::new()));
        'bfs: while let Some((mut node, path)) = queue.pop_front() {
            let selected = node.selected();
            if selected.is_empty() {
                if let Some((_, message)) =
                    node.check_final().into_iter().find(|(p, _)| p == target)
                {
                    let mut steps = executed;
                    steps.extend(path);
                    return Some(Witness { steps, message });
                }
                continue;
            }
            if start_len + path.len() >= max_len {
                continue;
            }
            for transition in selected {
                if budget == 0 {
                    break 'bfs;
                }
                budget -= 1;
                let mut child = node.branch();
                let StepResult::Executed(violations) = child.step_unchecked(&transition) else {
                    unreachable!("selected transitions are enabled by construction");
                };
                if let Some((_, message)) = violations.into_iter().find(|(p, _)| p == target) {
                    let mut steps = executed;
                    steps.extend(path);
                    steps.push(transition);
                    return Some(Witness { steps, message });
                }
                if seen.insert(child.fingerprint()) {
                    let mut longer = path.clone();
                    longer.push(transition);
                    queue.push_back((child, longer));
                }
            }
        }
        if budget > 0 {
            // The BFS exhausted every reachable completion: no violating
            // one exists within the cap.
            return None;
        }
        let mut greedy = fallback;
        loop {
            let Some(next) = greedy.selected().first().cloned() else {
                return greedy
                    .check_final()
                    .into_iter()
                    .find(|(p, _)| p == target)
                    .map(|(_, message)| Witness {
                        steps: executed,
                        message,
                    });
            };
            if executed.len() >= max_len {
                return None;
            }
            let StepResult::Executed(violations) = greedy.step_unchecked(&next) else {
                unreachable!("selected transitions are enabled by construction");
            };
            executed.push(next);
            if let Some((_, message)) = violations.into_iter().find(|(p, _)| p == target) {
                return Some(Witness {
                    steps: executed,
                    message,
                });
            }
        }
    }

    /// Reports the first transition after which the trace's violation
    /// becomes unavoidable — every continuation of the prefix up to and
    /// including that transition violates the target property.
    ///
    /// `max_explored` bounds the total transitions the probe explorations
    /// may execute (0 = unlimited). If the budget runs out the report's
    /// `decided` flag is false and `first_unavoidable` is the best verified
    /// upper bound.
    pub fn bisect(&self, trace: &Trace, max_explored: u64) -> Result<BisectReport, String> {
        let transitions: Vec<Transition> = trace.transitions().into_iter().cloned().collect();
        let mut engine = trace.engine;
        engine.workers = 1;

        // Strict full replay: find the target property and the step its
        // violation fires at.
        let report = self.replay(trace);
        if !report.completed() {
            return Err(format!(
                "trace does not replay cleanly: {:?}",
                report.outcome
            ));
        }
        let violation = match &trace.property {
            Some(p) => report.violations.iter().find(|v| &v.property == p),
            None => report.violations.first(),
        }
        .ok_or("replay of the trace reproduces no violation to bisect")?;
        let target = violation.property.clone();
        // Prefix of length `fire + 1` (or the whole trace for final-state
        // violations, where step == len) already exhibits the violation, so
        // it is trivially unavoidable: the known-bad end of the bracket.
        let mut hi = (violation.step + 1).min(transitions.len());
        let mut probes = 0u32;
        let mut explored = 0u64;

        let mut lo = 0usize; // exclusive known-avoidable bound, once probed
                             // Probe k = 0 first: is the violation unavoidable from the start?
        probes += 1;
        match self.violation_unavoidable(
            &engine,
            &transitions[..0],
            &target,
            max_explored,
            &mut explored,
        ) {
            Probe::Unavoidable => {
                return Ok(BisectReport {
                    len: transitions.len(),
                    property: target,
                    first_unavoidable: Some(0),
                    culprit: None,
                    decided: true,
                    probes,
                    explored,
                });
            }
            Probe::Avoidable => {}
            Probe::Undecided => {
                return Ok(BisectReport {
                    len: transitions.len(),
                    property: target,
                    first_unavoidable: Some(hi),
                    culprit: Some(transitions[hi - 1].clone()),
                    decided: false,
                    probes,
                    explored,
                });
            }
        }

        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            match self.violation_unavoidable(
                &engine,
                &transitions[..mid],
                &target,
                max_explored,
                &mut explored,
            ) {
                Probe::Unavoidable => hi = mid,
                Probe::Avoidable => lo = mid,
                Probe::Undecided => {
                    return Ok(BisectReport {
                        len: transitions.len(),
                        property: target,
                        first_unavoidable: Some(hi),
                        culprit: Some(transitions[hi - 1].clone()),
                        decided: false,
                        probes,
                        explored,
                    });
                }
            }
        }

        Ok(BisectReport {
            len: transitions.len(),
            property: target,
            first_unavoidable: Some(hi),
            culprit: Some(transitions[hi - 1].clone()),
            decided: true,
            probes,
            explored,
        })
    }

    /// One bisection probe: replays `prefix`, then exhaustively explores
    /// every continuation (fingerprint-deduplicated, depth- and
    /// budget-bounded) looking for a single completion free of `target`
    /// violations. Finding one proves the violation avoidable; exhausting
    /// the space without one proves it unavoidable; running out of budget
    /// (or hitting the depth bound) is undecided.
    fn violation_unavoidable(
        &self,
        engine: &TraceEngine,
        prefix: &[Transition],
        target: &str,
        max_explored: u64,
        explored: &mut u64,
    ) -> Probe {
        let mut root = Replayer::new(self, engine);
        for transition in prefix {
            match root.step(transition) {
                StepResult::Diverged => return Probe::Undecided,
                StepResult::Executed(violations) => {
                    if violations.iter().any(|(p, _)| p == target) {
                        return Probe::Unavoidable;
                    }
                }
            }
        }

        let max_depth = self.config().max_depth.max(prefix.len() + 1);
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(root.fingerprint());
        let mut stack = vec![root];
        let mut truncated = false;

        while let Some(mut node) = stack.pop() {
            let selected = node.selected();
            if selected.is_empty() {
                if !node.check_final().iter().any(|(p, _)| p == target) {
                    return Probe::Avoidable;
                }
                continue;
            }
            if node.steps_executed() >= max_depth {
                truncated = true;
                continue;
            }
            for transition in selected {
                if max_explored > 0 && *explored >= max_explored {
                    return Probe::Undecided;
                }
                *explored += 1;
                let mut child = node.branch();
                let StepResult::Executed(violations) = child.step_unchecked(&transition) else {
                    unreachable!("selected transitions are enabled by construction");
                };
                if violations.iter().any(|(p, _)| p == target) {
                    // This continuation violates; it cannot witness
                    // avoidability, and nothing past a violating state
                    // needs exploring (matching the search engine).
                    continue;
                }
                if seen.insert(child.fingerprint()) {
                    stack.push(child);
                }
            }
        }
        if truncated {
            Probe::Undecided
        } else {
            Probe::Unavoidable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CheckerConfig;
    use crate::testutil;

    fn violating_checker() -> ModelChecker {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        ModelChecker::new(scenario, CheckerConfig::default())
    }

    #[test]
    fn minimize_keeps_the_violation_and_never_grows() {
        let checker = violating_checker();
        let report = checker.run();
        let violation = report.first_violation().expect("violation");
        let minimized = checker.minimize(&violation.trace).expect("minimize");
        assert!(minimized.minimized.len() <= violation.trace.len());
        assert_eq!(minimized.property, violation.property);
        let replay = checker.replay(&minimized.minimized);
        assert!(replay.completed());
        assert!(
            replay.reproduced(&minimized.property),
            "minimized trace must still violate {}: {replay}",
            minimized.property
        );
    }

    #[test]
    fn minimize_is_idempotent() {
        let checker = violating_checker();
        let report = checker.run();
        let violation = report.first_violation().expect("violation");
        let once = checker.minimize(&violation.trace).expect("minimize");
        let twice = checker.minimize(&once.minimized).expect("minimize again");
        assert_eq!(once.minimized.steps, twice.minimized.steps);
    }

    #[test]
    fn minimize_rejects_non_violating_traces() {
        let scenario = testutil::hub_ping_scenario(1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let trace = Trace::from_transitions("hub", TraceEngine::default(), []);
        assert!(checker.minimize(&trace).is_err());
    }

    #[test]
    fn bisect_localises_the_violation() {
        let checker = violating_checker();
        let report = checker.run();
        let violation = report.first_violation().expect("violation");
        let bisect = checker.bisect(&violation.trace, 0).expect("bisect");
        assert!(bisect.decided);
        let k = bisect.first_unavoidable.expect("frontier");
        assert!(k <= violation.trace.len());
        // The frontier is meaningful: the violation is not unavoidable
        // before the culprit unless it starts at 0.
        if k > 0 {
            assert!(bisect.culprit.is_some());
        }
    }

    #[test]
    fn bisect_with_tiny_budget_is_undecided_but_bounded() {
        let checker = violating_checker();
        let report = checker.run();
        let violation = report.first_violation().expect("violation");
        let bisect = checker.bisect(&violation.trace, 1).expect("bisect");
        assert!(!bisect.decided);
        assert!(bisect.first_unavoidable.is_some());
    }
}
