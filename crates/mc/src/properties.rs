//! Correctness properties (Section 5).
//!
//! A property observes the events produced while transitions execute, may
//! keep local state, and is asked after every transition whether the current
//! system state violates it ([`Property::check`]); liveness-flavoured
//! properties that only make sense once the (finite) execution has run to
//! completion are additionally asked at terminal states
//! ([`Property::check_final`]).
//!
//! The library mirrors Section 5.2: [`NoForwardingLoops`], [`NoBlackHoles`],
//! [`DirectPaths`], [`StrictDirectPaths`] and [`NoForgottenPackets`], plus
//! the application-specific [`FlowAffinity`] property used for the load
//! balancer (Section 8.2). Application-specific properties like
//! `UseCorrectRoutingTable` live next to their application in `nice-apps`,
//! implemented against the same trait — the equivalent of the "Python code
//! snippets" the paper lets programmers register.
//!
//! The definitions are written to be robust to controller/switch
//! communication delays, as the paper warns: packets that were already in
//! flight when a path became established must not trigger `DirectPaths` /
//! `StrictDirectPaths` violations, so these properties only watch packets
//! *injected after* the relevant condition became true.

use crate::state::SystemState;
use nice_openflow::{HostId, Location, MatchPattern, Packet, PacketId, PortId, SwitchId};
use std::collections::{BTreeMap, BTreeSet};

/// An observable event produced while executing one transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A host injected a packet into the network (a `send` transition).
    PacketInjected {
        /// The sending host.
        host: HostId,
        /// The injected packet.
        packet: Packet,
    },
    /// A packet was handed to a host (the host's `receive` ran).
    PacketDeliveredToHost {
        /// The receiving host.
        host: HostId,
        /// The delivered packet.
        packet: Packet,
    },
    /// A switch dequeued a packet from one of its ingress channels.
    PacketArrivedAtSwitch {
        /// The processing switch.
        switch: SwitchId,
        /// The ingress port.
        port: PortId,
        /// The packet.
        packet: Packet,
    },
    /// A switch buffered a packet and sent a `packet_in` to the controller.
    PacketSentToController {
        /// The switch.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
    },
    /// The controller executed its `packet_in` handler for a packet.
    ControllerHandledPacketIn {
        /// The switch the packet came from.
        switch: SwitchId,
        /// The ingress port at that switch.
        in_port: PortId,
        /// The packet.
        packet: Packet,
    },
    /// A packet was forwarded out of a port with nothing attached — a black
    /// hole.
    PacketLost {
        /// The switch that forwarded it.
        switch: SwitchId,
        /// The dead-end port.
        port: PortId,
        /// The packet.
        packet: Packet,
    },
    /// A packet was dropped by a flow rule (or an empty action list) in the
    /// data plane.
    PacketDroppedByRule {
        /// The switch.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
    },
    /// A buffered packet was explicitly discarded on controller instruction
    /// (consumed by the controller — not a black hole).
    PacketDroppedByController {
        /// The switch.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
    },
    /// A packet was flooded into `copies` directions.
    PacketFlooded {
        /// The flooding switch.
        switch: SwitchId,
        /// Number of copies created.
        copies: usize,
        /// The packet.
        packet: Packet,
    },
    /// A switch dropped a packet because its await-controller buffer was
    /// full.
    PacketBufferOverflow {
        /// The switch.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
    },
    /// A rule was installed at a switch.
    RuleInstalled {
        /// The switch.
        switch: SwitchId,
        /// The rule's pattern.
        pattern: MatchPattern,
        /// The rule's priority.
        priority: u16,
    },
    /// Rules matching a pattern were removed at a switch.
    RuleDeleted {
        /// The switch.
        switch: SwitchId,
        /// The delete pattern.
        pattern: MatchPattern,
    },
    /// A mobile host moved.
    HostMoved {
        /// The host.
        host: HostId,
        /// Where it was.
        from: Location,
        /// Where it is now.
        to: Location,
    },
    /// A statistics reply (real or synthesised) reached the controller.
    StatsDeliveredToController {
        /// The switch the statistics describe.
        switch: SwitchId,
    },
}

/// A correctness property.
///
/// `Send + Sync` is required because property state is cloned alongside each
/// frontier state and checked on whichever worker thread expands the state.
pub trait Property: Send + Sync {
    /// The property's name, used in violation reports.
    fn name(&self) -> &str;

    /// Observes one event (called in order while a transition executes).
    fn on_event(&mut self, event: &Event, state: &SystemState);

    /// Checked after every transition; returns a violation message if the
    /// property is violated in `state`.
    fn check(&self, state: &SystemState) -> Option<String>;

    /// Checked at terminal states (no enabled transitions remain). Liveness
    /// and end-of-execution properties (e.g. `NoForgottenPackets`) implement
    /// this; safety properties can rely on the default.
    fn check_final(&self, _state: &SystemState) -> Option<String> {
        None
    }

    /// Clones the property together with its local state (the checker clones
    /// property state alongside each stored system state).
    fn clone_property(&self) -> Box<dyn Property>;
}

impl Clone for Box<dyn Property> {
    fn clone(&self) -> Self {
        self.clone_property()
    }
}

/// A key identifying one "flow" for the per-flow properties: the full
/// addressing five-tuple plus MAC addresses.
pub type FlowKey = (u64, u64, u32, u32, u8, u16, u16);

/// Derives the flow key of a packet.
pub fn flow_key(packet: &Packet) -> FlowKey {
    (
        packet.src_mac.value(),
        packet.dst_mac.value(),
        packet.src_ip.value(),
        packet.dst_ip.value(),
        packet.nw_proto.value(),
        packet.src_port,
        packet.dst_port,
    )
}

/// The flow key of the reverse direction of `key`.
pub fn reverse_flow_key(key: &FlowKey) -> FlowKey {
    (key.1, key.0, key.3, key.2, key.4, key.6, key.5)
}

// ---------------------------------------------------------------------------
// NoForwardingLoops
// ---------------------------------------------------------------------------

/// Asserts that no packet traverses the same `<switch, input port>` pair
/// twice.
#[derive(Debug, Clone, Default)]
pub struct NoForwardingLoops {
    seen: BTreeSet<(PacketId, SwitchId, PortId)>,
    violation: Option<String>,
}

impl NoForwardingLoops {
    /// Creates the property.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Property for NoForwardingLoops {
    fn name(&self) -> &str {
        "NoForwardingLoops"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if self.violation.is_some() {
            return;
        }
        if let Event::PacketArrivedAtSwitch {
            switch,
            port,
            packet,
        } = event
        {
            if !self.seen.insert((packet.id, *switch, *port)) {
                self.violation = Some(format!(
                    "packet {packet} traversed {switch}:{port} more than once (forwarding loop)"
                ));
            }
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        self.violation.clone()
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// NoBlackHoles
// ---------------------------------------------------------------------------

/// Asserts that no packet is silently lost inside the network: forwarding to
/// a dead-end port, dropping in the data plane, and buffer exhaustion are all
/// violations. Packets explicitly discarded on controller instruction count
/// as "consumed by the controller" and are allowed.
#[derive(Debug, Clone, Default)]
pub struct NoBlackHoles {
    violation: Option<String>,
}

impl NoBlackHoles {
    /// Creates the property.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Property for NoBlackHoles {
    fn name(&self) -> &str {
        "NoBlackHoles"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if self.violation.is_some() {
            return;
        }
        match event {
            Event::PacketLost {
                switch,
                port,
                packet,
            } => {
                self.violation = Some(format!(
                    "packet {packet} forwarded to dead-end port {switch}:{port} (black hole)"
                ));
            }
            Event::PacketDroppedByRule { switch, packet } => {
                self.violation = Some(format!(
                    "packet {packet} dropped by a flow rule at {switch}"
                ));
            }
            Event::PacketBufferOverflow { switch, packet } => {
                self.violation = Some(format!(
                    "packet {packet} dropped at {switch}: controller-await buffer exhausted"
                ));
            }
            _ => {}
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        self.violation.clone()
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// DirectPaths
// ---------------------------------------------------------------------------

/// Asserts that once a packet of a flow has been delivered, later packets of
/// the same flow do not go to the controller (the controller installed a
/// working path with the first packet).
#[derive(Debug, Clone, Default)]
pub struct DirectPaths {
    delivered_flows: BTreeSet<FlowKey>,
    watched_packets: BTreeSet<PacketId>,
    violation: Option<String>,
}

impl DirectPaths {
    /// Creates the property.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Property for DirectPaths {
    fn name(&self) -> &str {
        "DirectPaths"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if self.violation.is_some() {
            return;
        }
        match event {
            Event::PacketDeliveredToHost { packet, .. } => {
                self.delivered_flows.insert(flow_key(packet));
            }
            Event::PacketInjected { host, packet } => {
                // Only packets sent after the flow worked end-to-end are
                // required to stay on the fast path — this makes the property
                // robust to packets already in flight (Section 5.2). Spoofed
                // packets (source address not owned by the sender, which
                // symbolic discovery is free to generate) are not part of the
                // flow and are ignored.
                let legitimate = _state
                    .host(*host)
                    .map(|h| h.spec().mac == packet.src_mac)
                    .unwrap_or(false);
                if legitimate && self.delivered_flows.contains(&flow_key(packet)) {
                    self.watched_packets.insert(packet.id);
                }
            }
            Event::ControllerHandledPacketIn { packet, switch, .. }
                if self.watched_packets.contains(&packet.id) =>
            {
                self.violation = Some(format!(
                        "packet {packet} of an already-established flow reached the controller via {switch}"
                    ));
            }
            _ => {}
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        self.violation.clone()
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// StrictDirectPaths
// ---------------------------------------------------------------------------

/// Asserts that after two hosts have delivered at least one packet in each
/// direction, no later packet between them reaches the controller.
#[derive(Debug, Clone, Default)]
pub struct StrictDirectPaths {
    delivered_directions: BTreeSet<(u64, u64)>,
    established_pairs: BTreeSet<(u64, u64)>,
    watched_packets: BTreeSet<PacketId>,
    violation: Option<String>,
}

impl StrictDirectPaths {
    /// Creates the property.
    pub fn new() -> Self {
        Self::default()
    }

    fn pair_of(a: u64, b: u64) -> (u64, u64) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

impl Property for StrictDirectPaths {
    fn name(&self) -> &str {
        "StrictDirectPaths"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if self.violation.is_some() {
            return;
        }
        match event {
            Event::PacketDeliveredToHost { packet, .. } => {
                let fwd = (packet.src_mac.value(), packet.dst_mac.value());
                let rev = (fwd.1, fwd.0);
                self.delivered_directions.insert(fwd);
                if self.delivered_directions.contains(&rev) {
                    self.established_pairs.insert(Self::pair_of(fwd.0, fwd.1));
                }
            }
            Event::PacketInjected { host, packet } => {
                // As for DirectPaths: only legitimately-sourced packets are
                // held to the established-path requirement.
                let legitimate = _state
                    .host(*host)
                    .map(|h| h.spec().mac == packet.src_mac)
                    .unwrap_or(false);
                let pair = Self::pair_of(packet.src_mac.value(), packet.dst_mac.value());
                if legitimate && self.established_pairs.contains(&pair) {
                    self.watched_packets.insert(packet.id);
                }
            }
            Event::ControllerHandledPacketIn { packet, switch, .. }
                if self.watched_packets.contains(&packet.id) =>
            {
                self.violation = Some(format!(
                        "packet {packet} between hosts with established two-way paths reached the controller via {switch}"
                    ));
            }
            _ => {}
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        self.violation.clone()
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// NoForgottenPackets
// ---------------------------------------------------------------------------

/// Asserts that at the end of the execution every switch buffer is empty: a
/// program that neglects to tell a switch what to do with a buffered packet
/// violates this.
#[derive(Debug, Clone, Default)]
pub struct NoForgottenPackets;

impl NoForgottenPackets {
    /// Creates the property.
    pub fn new() -> Self {
        Self
    }
}

impl Property for NoForgottenPackets {
    fn name(&self) -> &str {
        "NoForgottenPackets"
    }

    fn on_event(&mut self, _event: &Event, _state: &SystemState) {}

    fn check(&self, _state: &SystemState) -> Option<String> {
        None
    }

    fn check_final(&self, state: &SystemState) -> Option<String> {
        for (id, switch) in state.switches() {
            let count = switch.buffered_count();
            if count > 0 {
                let sample = switch
                    .buffered_packets()
                    .next()
                    .map(|(_, bp)| bp.packet.to_string())
                    .unwrap_or_default();
                return Some(format!(
                    "{count} packet(s) forgotten in the buffer of {id} at the end of execution (e.g. {sample})"
                ));
            }
        }
        None
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// NoAbandonedPackets
// ---------------------------------------------------------------------------

/// Asserts that every packet the controller took charge of (by executing its
/// `packet_in` handler) is eventually delivered to some host or explicitly
/// discarded on controller instruction.
///
/// This is the end-to-end delivery obligation that fault injection stresses:
/// without faults, a correct controller satisfies it trivially, but a switch
/// crash can wipe a `packet_out` (or the buffered packet it refers to) after
/// the controller has already acknowledged the packet — a controller that
/// does not re-send on reconnect silently loses it.
#[derive(Debug, Clone, Default)]
pub struct NoAbandonedPackets {
    pending: BTreeMap<PacketId, String>,
}

impl NoAbandonedPackets {
    /// Creates the property.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Property for NoAbandonedPackets {
    fn name(&self) -> &str {
        "NoAbandonedPackets"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        match event {
            Event::ControllerHandledPacketIn { packet, switch, .. } => {
                self.pending
                    .insert(packet.id, format!("{packet} acknowledged via {switch}"));
            }
            Event::PacketDeliveredToHost { packet, .. }
            | Event::PacketDroppedByController { packet, .. } => {
                self.pending.remove(&packet.id);
            }
            _ => {}
        }
    }

    fn check(&self, state: &SystemState) -> Option<String> {
        // Detect the exact transition that *loses* an acknowledged packet:
        // once it is traceable nowhere (no channel, no switch buffer, no host
        // inbox, not held by the application for re-delivery), no later
        // transition can deliver it. Checking at every step — rather than only
        // in final states — matters for soundness: the checker deduplicates on
        // the system fingerprint, which does not include property history, so
        // a lossy branch may converge with a benign one before termination.
        self.pending.iter().find_map(|(id, sample)| {
            (!state.is_packet_in_flight(*id))
                .then(|| format!("controller-acknowledged packet lost: {sample}"))
        })
    }

    fn check_final(&self, _state: &SystemState) -> Option<String> {
        // Backstop for packets that stay traceable forever without being
        // delivered (e.g. an application that holds a packet but never
        // re-sends it).
        let (_, sample) = self.pending.first_key_value()?;
        Some(format!(
            "{} controller-acknowledged packet(s) never reached a host (e.g. {sample})",
            self.pending.len()
        ))
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// FlowAffinity (application-specific, load balancer)
// ---------------------------------------------------------------------------

/// Asserts that every packet of a single TCP connection is delivered to the
/// same server replica (the load-balancer property of Section 8.2).
#[derive(Debug, Clone)]
pub struct FlowAffinity {
    servers: BTreeSet<HostId>,
    assignment: BTreeMap<(u32, u16), HostId>,
    violation: Option<String>,
}

impl FlowAffinity {
    /// Creates the property; `servers` are the replica hosts.
    pub fn new(servers: impl IntoIterator<Item = HostId>) -> Self {
        FlowAffinity {
            servers: servers.into_iter().collect(),
            assignment: BTreeMap::new(),
            violation: None,
        }
    }
}

impl Property for FlowAffinity {
    fn name(&self) -> &str {
        "FlowAffinity"
    }

    fn on_event(&mut self, event: &Event, _state: &SystemState) {
        if self.violation.is_some() {
            return;
        }
        if let Event::PacketDeliveredToHost { host, packet } = event {
            if !self.servers.contains(host) || !packet.is_tcp() {
                return;
            }
            let conn = (packet.src_ip.value(), packet.src_port);
            match self.assignment.get(&conn) {
                None => {
                    self.assignment.insert(conn, *host);
                }
                Some(existing) if existing != host => {
                    self.violation = Some(format!(
                        "connection {}:{} split across replicas {existing} and {host} (packet {packet})",
                        packet.src_ip, packet.src_port
                    ));
                }
                Some(_) => {}
            }
        }
    }

    fn check(&self, _state: &SystemState) -> Option<String> {
        self.violation.clone()
    }

    fn clone_property(&self) -> Box<dyn Property> {
        Box::new(self.clone())
    }
}

/// The default property set applied when the user does not pick specific
/// properties: the safety properties that make sense for any application.
pub fn default_properties() -> Vec<Box<dyn Property>> {
    vec![
        Box::new(NoForwardingLoops::new()),
        Box::new(NoBlackHoles::new()),
        Box::new(NoForgottenPackets::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_openflow::{MacAddr, NwAddr, TcpFlags};

    fn empty_state() -> SystemState {
        // A minimal state for property unit tests (no traffic).
        let scenario = crate::testutil::hub_ping_scenario(1);
        SystemState::initial(&scenario)
    }

    fn ping(id: u64, src: u32, dst: u32) -> Packet {
        Packet::l2_ping(id, MacAddr::for_host(src), MacAddr::for_host(dst), 0)
    }

    #[test]
    fn no_forwarding_loops_detects_repeated_traversal() {
        let state = empty_state();
        let mut p = NoForwardingLoops::new();
        let pkt = ping(1, 1, 2);
        let ev = Event::PacketArrivedAtSwitch {
            switch: SwitchId(1),
            port: PortId(2),
            packet: pkt,
        };
        p.on_event(&ev, &state);
        assert!(p.check(&state).is_none());
        // Same packet, different port: fine.
        p.on_event(
            &Event::PacketArrivedAtSwitch {
                switch: SwitchId(1),
                port: PortId(3),
                packet: pkt,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        // Same (switch, port) again: loop.
        p.on_event(&ev, &state);
        let msg = p.check(&state).expect("violation");
        assert!(msg.contains("loop"));
    }

    #[test]
    fn no_black_holes_flags_losses_but_not_controller_drops() {
        let state = empty_state();
        let pkt = ping(1, 1, 2);
        let mut p = NoBlackHoles::new();
        p.on_event(
            &Event::PacketDroppedByController {
                switch: SwitchId(1),
                packet: pkt,
            },
            &state,
        );
        assert!(
            p.check(&state).is_none(),
            "controller-instructed drops are allowed"
        );
        p.on_event(
            &Event::PacketLost {
                switch: SwitchId(2),
                port: PortId(1),
                packet: pkt,
            },
            &state,
        );
        assert!(p.check(&state).unwrap().contains("black hole"));

        let mut p = NoBlackHoles::new();
        p.on_event(
            &Event::PacketDroppedByRule {
                switch: SwitchId(1),
                packet: pkt,
            },
            &state,
        );
        assert!(p.check(&state).is_some());

        let mut p = NoBlackHoles::new();
        p.on_event(
            &Event::PacketBufferOverflow {
                switch: SwitchId(1),
                packet: pkt,
            },
            &state,
        );
        assert!(p.check(&state).unwrap().contains("buffer"));
    }

    #[test]
    fn direct_paths_ignores_in_flight_packets() {
        let state = empty_state();
        let mut p = DirectPaths::new();
        let first = ping(1, 1, 2);
        // The first packet of the flow reaches the controller: fine.
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(1),
                in_port: PortId(1),
                packet: first,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        // Flow becomes established.
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(2),
                packet: first,
            },
            &state,
        );
        // A packet that was injected *before* establishment (never marked as
        // watched) hitting the controller is not a violation.
        let inflight = ping(2, 1, 2);
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(2),
                in_port: PortId(2),
                packet: inflight,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        // A packet injected after establishment must not reach the controller.
        let later = ping(3, 1, 2);
        p.on_event(
            &Event::PacketInjected {
                host: HostId(1),
                packet: later,
            },
            &state,
        );
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(1),
                in_port: PortId(1),
                packet: later,
            },
            &state,
        );
        assert!(p.check(&state).is_some());
    }

    #[test]
    fn strict_direct_paths_requires_both_directions() {
        let state = empty_state();
        let mut p = StrictDirectPaths::new();
        let fwd = ping(1, 1, 2);
        let rev = ping(2, 2, 1);
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(2),
                packet: fwd,
            },
            &state,
        );
        // Only one direction delivered: a later packet may still go to the
        // controller.
        let next = ping(3, 1, 2);
        p.on_event(
            &Event::PacketInjected {
                host: HostId(1),
                packet: next,
            },
            &state,
        );
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(1),
                in_port: PortId(1),
                packet: next,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        // Second direction delivered: pair established.
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(1),
                packet: rev,
            },
            &state,
        );
        let later = ping(4, 2, 1);
        p.on_event(
            &Event::PacketInjected {
                host: HostId(2),
                packet: later,
            },
            &state,
        );
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(2),
                in_port: PortId(1),
                packet: later,
            },
            &state,
        );
        assert!(p.check(&state).is_some());
    }

    #[test]
    fn no_forgotten_packets_checks_terminal_buffers() {
        let scenario = crate::testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let p = NoForgottenPackets::new();
        assert!(p.check_final(&state).is_none());
        // Park a packet in a switch buffer by processing it with no rules.
        let pkt = ping(1, 1, 2);
        state
            .switch_mut(SwitchId(1))
            .unwrap()
            .process_packet(pkt, PortId(1));
        assert!(p.check_final(&state).unwrap().contains("forgotten"));
        assert!(
            p.check(&state).is_none(),
            "only terminal states are checked"
        );
    }

    #[test]
    fn no_abandoned_packets_demands_delivery_after_controller_ack() {
        let mut state = empty_state();
        let mut p = NoAbandonedPackets::new();
        let pkt = ping(1, 1, 2);
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(1),
                in_port: PortId(1),
                packet: pkt,
            },
            &state,
        );
        // While the packet is still traceable (here: in a host inbox) the
        // obligation is open but not violated.
        state.enqueue_host(HostId(2), pkt);
        assert!(
            p.check(&state).is_none(),
            "a traceable packet can still be delivered"
        );
        assert!(
            p.check_final(&state).unwrap().contains("never reached"),
            "an acknowledged but undelivered packet violates at the end"
        );
        // Once the packet is traceable nowhere, the loss is flagged at the
        // very transition that dropped it.
        state.host_inbox_mut(HostId(2)).unwrap().pop();
        assert!(
            p.check(&state).unwrap().contains("lost"),
            "an untraceable acknowledged packet is flagged mid-run"
        );
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(2),
                packet: pkt,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        assert!(p.check_final(&state).is_none());

        // An explicit controller drop also discharges the obligation.
        let dropped = ping(2, 1, 2);
        p.on_event(
            &Event::ControllerHandledPacketIn {
                switch: SwitchId(1),
                in_port: PortId(1),
                packet: dropped,
            },
            &state,
        );
        p.on_event(
            &Event::PacketDroppedByController {
                switch: SwitchId(1),
                packet: dropped,
            },
            &state,
        );
        assert!(p.check_final(&state).is_none());
    }

    #[test]
    fn flow_affinity_tracks_connection_to_replica_mapping() {
        let state = empty_state();
        let mut p = FlowAffinity::new([HostId(2), HostId(3)]);
        let vip = NwAddr::from_octets(10, 0, 0, 100);
        let syn = Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            vip,
            1234,
            80,
            TcpFlags::SYN,
            0,
        );
        let data = Packet::tcp(
            2,
            MacAddr::for_host(1),
            MacAddr::for_host(3),
            NwAddr::for_host(1),
            vip,
            1234,
            80,
            TcpFlags::ACK,
            1,
        );
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(2),
                packet: syn,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        // Same connection delivered to the same replica: fine.
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(2),
                packet: data,
            },
            &state,
        );
        assert!(p.check(&state).is_none());
        // Same connection delivered to the other replica: violation.
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(3),
                packet: data,
            },
            &state,
        );
        assert!(p.check(&state).unwrap().contains("split"));

        // Deliveries to non-server hosts or non-TCP packets are ignored.
        let mut p = FlowAffinity::new([HostId(2)]);
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(9),
                packet: data,
            },
            &state,
        );
        p.on_event(
            &Event::PacketDeliveredToHost {
                host: HostId(2),
                packet: ping(5, 1, 2),
            },
            &state,
        );
        assert!(p.check(&state).is_none());
    }

    #[test]
    fn flow_key_reversal() {
        let pkt = Packet::tcp(
            1,
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            NwAddr::for_host(1),
            NwAddr::for_host(2),
            10,
            20,
            TcpFlags::SYN,
            0,
        );
        let key = flow_key(&pkt);
        let rev = reverse_flow_key(&key);
        assert_eq!(reverse_flow_key(&rev), key);
        assert_eq!(rev.0, key.1);
        assert_eq!(rev.5, key.6);
    }

    #[test]
    fn default_properties_cover_generic_safety() {
        let props = default_properties();
        let names: Vec<&str> = props.iter().map(|p| p.name()).collect();
        assert!(names.contains(&"NoForwardingLoops"));
        assert!(names.contains(&"NoBlackHoles"));
        assert!(names.contains(&"NoForgottenPackets"));
        // Cloning preserves names.
        let cloned: Vec<Box<dyn Property>> = props.clone();
        assert_eq!(cloned.len(), props.len());
    }
}
