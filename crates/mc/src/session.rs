//! Observable, cancellable check sessions.
//!
//! [`ModelChecker::run`] is a fire-and-forget API: it blocks until the whole
//! search finishes and only then hands back a [`CheckReport`]. A
//! [`CheckSession`] drives the *same* engines (sequential and parallel DFS,
//! every storage mode, every strategy and reduction) but
//!
//! * streams typed [`CheckEvent`]s to a [`CheckObserver`] while the search
//!   runs — `Started`, periodic `Progress`, `ViolationFound` the moment a
//!   worker records a violation, and a final `Finished` carrying the report;
//! * honours a shareable [`CancelToken`] plus an optional deadline
//!   ([`CheckSession::with_deadline`] / [`CheckSession::with_time_budget`]),
//!   checked in the sequential loop and in every parallel worker; and
//! * records how the search ended as a [`Outcome`] on the report —
//!   [`Outcome::Completed`] or [`Outcome::Interrupted`] with the reason —
//!   so a search stopped early is never mistaken for an exhausted one.
//!
//! `run()` remains a thin wrapper: it opens a session with a no-op observer,
//! no token and no deadline, so its results are bit-identical to the
//! pre-session engine (pinned by the cross-crate `session_api` tests).
//!
//! ```
//! use nice_mc::{CheckEvent, ModelChecker, CheckerConfig, Outcome};
//! use nice_mc::testutil;
//!
//! let checker = ModelChecker::new(testutil::hub_ping_scenario(1), CheckerConfig::default());
//! let mut transitions_seen = 0u64;
//! let report = checker
//!     .session()
//!     .with_progress_every(100)
//!     .run_with(&mut |event: &CheckEvent| {
//!         if let CheckEvent::Progress { transitions, .. } = event {
//!             transitions_seen = *transitions;
//!         }
//!     });
//! assert_eq!(report.outcome, Outcome::Completed);
//! ```

use crate::checker::{CheckReport, ModelChecker, Violation};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// A shareable cancellation flag for a running check.
///
/// Clones observe the same flag, so a token handed to another thread (or
/// held inside a [`CheckObserver`]) can stop a search from the outside:
/// every engine — the sequential loop and each parallel worker — polls the
/// token and winds down with [`Outcome::Interrupted`] once it fires.
/// Cancelling is idempotent and purely monotonic: a token cannot be re-armed.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token: every search holding a clone stops at its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------------

/// Why a search stopped before exhausting its space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// A [`CancelToken`] fired.
    Cancelled,
    /// The session's deadline or time budget expired.
    DeadlineExceeded,
}

/// How a check ended.
///
/// Orthogonal to `SearchStats::truncated`: a *completed* search may still
/// have been cut by the configured transition/depth budgets (`truncated`),
/// while an *interrupted* one was stopped from the outside — by
/// cancellation or a deadline — with whatever partial statistics it had.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// The search ran to its natural end (possibly budget-truncated).
    #[default]
    Completed,
    /// The search was stopped early by a cancel token or deadline.
    Interrupted(InterruptReason),
}

impl Outcome {
    /// True if the search was stopped by a token or deadline.
    pub fn interrupted(&self) -> bool {
        matches!(self, Outcome::Interrupted(_))
    }

    /// A stable, machine-readable label; `truncated` distinguishes the two
    /// completed flavours (exhausted vs budget-cut).
    pub fn label(&self, truncated: bool) -> &'static str {
        match self {
            Outcome::Completed if truncated => "budget-truncated",
            Outcome::Completed => "exhausted",
            Outcome::Interrupted(InterruptReason::Cancelled) => "interrupted-by-cancel",
            Outcome::Interrupted(InterruptReason::DeadlineExceeded) => "interrupted-by-deadline",
        }
    }
}

// ---------------------------------------------------------------------------
// Events and observers
// ---------------------------------------------------------------------------

/// A typed event emitted by a running check session.
#[derive(Debug, Clone)]
pub enum CheckEvent {
    /// The search is about to start.
    Started {
        /// The scenario name.
        scenario: String,
        /// Number of search worker threads.
        workers: usize,
        /// The search strategy's paper name (e.g. "PKT-SEQ").
        strategy: &'static str,
        /// The partial-order reduction's label (e.g. "none", "por").
        reduction: &'static str,
    },
    /// Periodic progress, emitted roughly every
    /// [`CheckSession::with_progress_every`] transitions.
    Progress {
        /// Unique states seen so far.
        states: u64,
        /// Transitions executed so far.
        transitions: u64,
        /// Unique states per second since the search started.
        rate: f64,
        /// Depth of the path that triggered this report.
        depth: usize,
        /// Resident bytes of the explored fingerprint set at this point
        /// (after any disk spilling; see
        /// [`ExploredStore::bytes`](crate::explored::ExploredStore::bytes)).
        explored_bytes: u64,
    },
    /// A property violation was just recorded (with its reproducing trace).
    ViolationFound(Violation),
    /// The search ended; carries the final report.
    Finished(CheckReport),
}

/// Receives [`CheckEvent`]s from a running session.
///
/// Observers must be [`Send`] because the parallel engine's workers emit
/// events from their own threads (serialised through an internal lock, so
/// `on_event` never runs concurrently with itself). Any
/// `FnMut(&CheckEvent) + Send` closure is an observer.
pub trait CheckObserver: Send {
    /// Called for every event, in emission order.
    fn on_event(&mut self, event: &CheckEvent);
}

impl<F: FnMut(&CheckEvent) + Send> CheckObserver for F {
    fn on_event(&mut self, event: &CheckEvent) {
        self(event)
    }
}

/// An observer that ignores every event — what [`ModelChecker::run`] uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl CheckObserver for NoopObserver {
    fn on_event(&mut self, _event: &CheckEvent) {}
}

// ---------------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------------

/// Default cadence (in transitions) of [`CheckEvent::Progress`] emissions.
pub const DEFAULT_PROGRESS_EVERY: u64 = 8192;

/// An observable, cancellable handle on one check, created by
/// [`ModelChecker::session`]. Configure it builder-style, then call
/// [`CheckSession::run`] (no observer) or [`CheckSession::run_with`].
pub struct CheckSession<'c> {
    checker: &'c ModelChecker,
    cancel: CancelToken,
    deadline: Option<Instant>,
    progress_every: u64,
}

impl ModelChecker {
    /// Opens a check session over this checker's scenario and configuration.
    /// The default session has a fresh token, no deadline, and emits
    /// progress every [`DEFAULT_PROGRESS_EVERY`] transitions.
    pub fn session(&self) -> CheckSession<'_> {
        CheckSession {
            checker: self,
            cancel: CancelToken::new(),
            deadline: None,
            progress_every: DEFAULT_PROGRESS_EVERY,
        }
    }
}

impl<'c> CheckSession<'c> {
    /// Uses `token` for cancellation instead of the session's own fresh one
    /// (builder style). Share clones of it with other threads or observers.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Stops the search (with [`Outcome::Interrupted`]) once `deadline`
    /// passes (builder style).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops the search once `budget` wall-clock time has elapsed from now
    /// (builder style). A zero budget interrupts the search on its very
    /// first poll, before any meaningful work.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Sets how many transitions elapse between [`CheckEvent::Progress`]
    /// emissions (builder style). `0` disables progress events.
    pub fn with_progress_every(mut self, transitions: u64) -> Self {
        self.progress_every = transitions;
        self
    }

    /// A clone of the session's cancel token, for handing to other threads
    /// before the (blocking) run starts.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs the search with no observer. Exactly equivalent to
    /// [`ModelChecker::run`] when no token/deadline is configured.
    pub fn run(self) -> CheckReport {
        self.run_with(&mut NoopObserver)
    }

    /// Runs the search, streaming [`CheckEvent`]s to `observer`, and returns
    /// the final report (also delivered as [`CheckEvent::Finished`]).
    pub fn run_with(self, observer: &mut dyn CheckObserver) -> CheckReport {
        let config = self.checker.config();
        let ctrl = SessionCtrl::new(self.cancel, self.deadline, self.progress_every, observer);
        ctrl.emit(CheckEvent::Started {
            scenario: self.checker.scenario().name.clone(),
            workers: config.workers,
            strategy: config.strategy.name(),
            reduction: config.reduction.name(),
        });
        let mut report = self.checker.run_with_ctrl(&ctrl);
        if let Some(reason) = ctrl.interrupt_reason() {
            report.outcome = Outcome::Interrupted(reason);
        }
        ctrl.emit(CheckEvent::Finished(report.clone()));
        report
    }
}

// ---------------------------------------------------------------------------
// Engine-side control plumbing
// ---------------------------------------------------------------------------

const INTERRUPT_NONE: u8 = 0;
const INTERRUPT_CANCELLED: u8 = 1;
const INTERRUPT_DEADLINE: u8 = 2;

/// The session state the engines poll and emit through. Shared by reference
/// with every parallel worker; all its hooks are no-ops (beyond one relaxed
/// atomic load) for the default `run()` session, which keeps the wrapper
/// bit-identical and costs the hot loop nothing measurable.
pub(crate) struct SessionCtrl<'o> {
    cancel: CancelToken,
    deadline: Option<Instant>,
    progress_every: u64,
    /// Next transition count at which to emit a `Progress` event.
    next_progress: AtomicU64,
    /// First interrupt reason observed (`INTERRUPT_*`); first writer wins.
    interrupted: AtomicU8,
    start: Instant,
    observer: Mutex<&'o mut dyn CheckObserver>,
}

impl<'o> SessionCtrl<'o> {
    pub(crate) fn new(
        cancel: CancelToken,
        deadline: Option<Instant>,
        progress_every: u64,
        observer: &'o mut dyn CheckObserver,
    ) -> Self {
        SessionCtrl {
            cancel,
            deadline,
            progress_every,
            next_progress: AtomicU64::new(progress_every.max(1)),
            interrupted: AtomicU8::new(INTERRUPT_NONE),
            start: Instant::now(),
            observer: Mutex::new(observer),
        }
    }

    /// Delivers one event to the observer, serialised across workers.
    pub(crate) fn emit(&self, event: CheckEvent) {
        self.observer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .on_event(&event);
    }

    /// Emits [`CheckEvent::ViolationFound`] for a just-recorded violation.
    pub(crate) fn notify_violation(&self, violation: &Violation) {
        self.emit(CheckEvent::ViolationFound(violation.clone()));
    }

    /// Polls the cancel token and deadline. Returns the interrupt reason the
    /// search should stop with, sticky across calls (the first reason
    /// observed by any worker wins). Engines call this once per expanded
    /// node: one relaxed atomic load when idle, plus a clock read only when
    /// a deadline is armed.
    pub(crate) fn check_interrupt(&self) -> Option<InterruptReason> {
        match self.interrupted.load(Ordering::Relaxed) {
            INTERRUPT_CANCELLED => return Some(InterruptReason::Cancelled),
            INTERRUPT_DEADLINE => return Some(InterruptReason::DeadlineExceeded),
            _ => {}
        }
        let code = if self.cancel.is_cancelled() {
            INTERRUPT_CANCELLED
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            INTERRUPT_DEADLINE
        } else {
            return None;
        };
        let _ = self.interrupted.compare_exchange(
            INTERRUPT_NONE,
            code,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.interrupt_reason()
    }

    /// The sticky interrupt reason, if any poll has fired.
    pub(crate) fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self.interrupted.load(Ordering::Relaxed) {
            INTERRUPT_CANCELLED => Some(InterruptReason::Cancelled),
            INTERRUPT_DEADLINE => Some(InterruptReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Emits a `Progress` event if `transitions` crossed the next cadence
    /// mark. Exactly one caller wins each mark, so the parallel engine never
    /// emits duplicates.
    pub(crate) fn maybe_progress(
        &self,
        transitions: u64,
        states: u64,
        depth: usize,
        explored_bytes: u64,
    ) {
        if self.progress_every == 0 {
            return;
        }
        let next = self.next_progress.load(Ordering::Relaxed);
        if transitions < next {
            return;
        }
        if self
            .next_progress
            .compare_exchange(
                next,
                transitions + self.progress_every,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
            self.emit(CheckEvent::Progress {
                states,
                transitions,
                rate: states as f64 / elapsed,
                depth,
                explored_bytes,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CheckerConfig;
    use crate::testutil;

    /// Collects every event for assertions.
    #[derive(Default)]
    struct Recorder {
        started: usize,
        progress: usize,
        violations: usize,
        finished: usize,
    }

    impl CheckObserver for Recorder {
        fn on_event(&mut self, event: &CheckEvent) {
            match event {
                CheckEvent::Started { .. } => self.started += 1,
                CheckEvent::Progress { .. } => self.progress += 1,
                CheckEvent::ViolationFound(_) => self.violations += 1,
                CheckEvent::Finished(_) => self.finished += 1,
            }
        }
    }

    #[test]
    fn cancel_token_is_shared_through_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn session_streams_lifecycle_events() {
        let checker = ModelChecker::new(testutil::hub_ping_scenario(1), CheckerConfig::default());
        let mut recorder = Recorder::default();
        let report = checker
            .session()
            .with_progress_every(10)
            .run_with(&mut recorder);
        assert_eq!(recorder.started, 1);
        assert_eq!(recorder.finished, 1);
        assert!(recorder.progress >= 1, "10-transition cadence must fire");
        assert_eq!(recorder.violations, 0);
        assert_eq!(report.outcome, Outcome::Completed);
    }

    #[test]
    fn violations_are_streamed_as_they_are_found() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let checker = ModelChecker::new(scenario, CheckerConfig::default());
        let mut recorder = Recorder::default();
        let report = checker.session().run_with(&mut recorder);
        assert!(!report.passed());
        assert_eq!(recorder.violations, report.violations.len());
    }

    #[test]
    fn observer_closures_work_and_can_cancel() {
        let checker = ModelChecker::new(testutil::hub_ping_scenario(2), CheckerConfig::default());
        let session = checker.session().with_progress_every(5);
        let token = session.cancel_token();
        let report = session.run_with(&mut move |event: &CheckEvent| {
            if matches!(event, CheckEvent::Progress { .. }) {
                token.cancel();
            }
        });
        assert_eq!(
            report.outcome,
            Outcome::Interrupted(InterruptReason::Cancelled)
        );
        assert!(report.stats.transitions > 0, "partial stats are reported");
    }

    #[test]
    fn zero_time_budget_interrupts_immediately() {
        for workers in [1, 4] {
            let checker = ModelChecker::new(
                testutil::hub_ping_scenario(2),
                CheckerConfig::default().with_workers(workers),
            );
            let report = checker.session().with_time_budget(Duration::ZERO).run();
            assert_eq!(
                report.outcome,
                Outcome::Interrupted(InterruptReason::DeadlineExceeded),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(Outcome::Completed.label(false), "exhausted");
        assert_eq!(Outcome::Completed.label(true), "budget-truncated");
        assert_eq!(
            Outcome::Interrupted(InterruptReason::Cancelled).label(false),
            "interrupted-by-cancel"
        );
        assert_eq!(
            Outcome::Interrupted(InterruptReason::DeadlineExceeded).label(true),
            "interrupted-by-deadline"
        );
        assert!(!Outcome::Completed.interrupted());
        assert!(Outcome::Interrupted(InterruptReason::Cancelled).interrupted());
    }
}
