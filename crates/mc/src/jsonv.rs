//! A dependency-free JSON well-formedness validator.
//!
//! The bench gate and the `nice` CLI emit hand-rolled JSON (no serde in this
//! offline build), which makes it easy to ship a stray comma or an unescaped
//! quote. This module is the other half of that bargain: a strict
//! recursive-descent checker (RFC 8259 grammar — objects, arrays, strings
//! with escapes, numbers, literals; no trailing garbage) that `ci_gate`
//! runs over its own output before writing it, and that
//! `nice validate-json` applies to whatever CI pipes through it.

/// Validates that `input` is exactly one well-formed JSON value. Returns the
/// byte offset and a message on the first error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }
}

/// Validates a `nice-trace-v1` document: it must be well-formed JSON
/// (per [`validate_json`]) *and* parse into a typed
/// [`crate::Trace`] — schema tag, engine block, and every step. The
/// `ci_gate` binary runs this over the trace files it emits, and
/// `nice validate-json` applies it whenever the input self-identifies
/// with `"schema": "nice-trace-v1"`.
pub fn validate_trace_json(input: &str) -> Result<(), String> {
    validate_json(input)?;
    crate::Trace::from_json(input).map(|_| ())
}

/// Escapes a string for inclusion in hand-rolled JSON output (quotes,
/// backslashes and control characters). The emitters in `ci_gate` and the
/// CLI route every dynamic string through this.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            r#"{"a": [1, 2.0, {"b": "c\nd"}], "e": null}"#,
            "  {\n  \"x\": [false]\n}\n",
            r#""é""#,
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.e3",
            "nul",
            "{} {}",
            "{\"a\": \"\u{1}\"}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn trace_validation_requires_the_typed_schema() {
        // Well-formed JSON that is not a trace must be rejected...
        assert!(validate_trace_json("{}").is_err());
        assert!(validate_trace_json(r#"{"schema": "nice-trace-v1"}"#).is_err());
        // ...while a real trace round-trips.
        let trace = crate::Trace::from_transitions(
            "demo",
            crate::TraceEngine::default(),
            std::iter::empty::<crate::Transition>(),
        );
        assert!(validate_trace_json(&trace.to_json()).is_ok());
    }

    #[test]
    fn escape_round_trips_through_the_validator() {
        let tricky = "quote \" backslash \\ newline \n tab \t bell \u{7}";
        let doc = format!("{{\"s\": \"{}\"}}", escape_json(tricky));
        assert!(validate_json(&doc).is_ok(), "{doc}");
    }
}
