//! Tiered explored-set storage: packed tables, disk spill behind a bloom
//! filter, and lossy bitstate hashing.
//!
//! The explored set is the memory ceiling of an exhaustive run: every other
//! structure (frontier, traces) is proportional to the *frontier*, but the
//! fingerprint set grows with every unique state ever seen. This module
//! puts that set behind the [`ExploredStore`] trait with three engines,
//! selected by [`ExploredMode`]:
//!
//! * **`mem`** — [`MemStore`]: 64 independently locked open-addressed
//!   tables packing `fingerprint + sleep-digest ref` into 12 bytes per
//!   slot (vs ~48+ for the `HashMap<u64, Box<[u64]>>` it replaces).
//!   Exact, unbounded.
//! * **`tiered`** — [`TieredStore`]: the same packed tables as a hot
//!   *delta* tier, plus cold shards spilled to sorted on-disk segments
//!   once the in-memory footprint passes `--mem-limit`. Every segment
//!   carries a bloom filter consulted before any disk probe, so absent
//!   fingerprints (the common case: most visits are *new* states) almost
//!   never touch disk. Exact: verdicts are identical to `mem`, which
//!   `tests/explored_store.rs` pins.
//! * **`bitstate`** — [`BitstateStore`]: SPIN-style bitstate hashing. Two
//!   hash positions in a fixed bit array; constant memory, **lossy**: a
//!   hash collision makes the search treat an unvisited state as known,
//!   so states may be *missed* — but a violation that is reported was
//!   still actually executed, so violations are never invented. Reports
//!   from this mode carry `lossy: true`.
//!
//! All three speak the sleep-set-aware visit protocol ([`Visit`]) that
//! keeps partial-order reduction sound under state matching; see
//! [`FingerprintMap`] for the invariant.
//!
//! # Shard-bit budget
//!
//! Two layers shard by fingerprint bits and they must never collide:
//! the *distributed* coordinator routes states to worker processes by the
//! top byte — bits 56..=63, via [`shard_of`](crate::shard::shard_of) —
//! while the in-process stores here pick their lock shard from bits
//! 48..=55 ([`store_shard`]). A dist worker therefore sees fingerprints
//! with a fixed top byte, but they still spread uniformly over the store's
//! 64 lock shards.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fs::File;
use std::hash::{BuildHasherDefault, Hasher};
use std::io::{self, Write as _};
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

// ---------------------------------------------------------------------------
// The visit protocol (moved here from checker.rs)
// ---------------------------------------------------------------------------

/// Identity hasher for values that are already 64-bit fingerprints (FNV-1a
/// outputs): feeding them through SipHash again would be pure overhead.
#[derive(Debug, Default, Clone)]
pub(crate) struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the checker only ever hashes u64 fingerprints.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// The explored set: each 64-bit state fingerprint (no re-hashing) maps to
/// the sorted digests of the sleep set the state was last explored with.
///
/// Without partial-order reduction every sleep set is empty and this behaves
/// exactly like the plain fingerprint set it replaced. With POR, the stored
/// sleep set makes state matching sound (Godefroid): a state revisited with
/// a sleep set that is *not* a superset of the stored one was previously
/// explored with more pruning than the new path permits, so it must be
/// re-expanded — with the intersection of the two sleep sets, which only
/// ever shrinks, guaranteeing termination.
pub(crate) type FingerprintMap = HashMap<u64, Box<[u64]>, BuildHasherDefault<FingerprintHasher>>;

/// The verdict on one (fingerprint, sleep set) visit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Visit {
    /// First time this state is seen: explore it.
    New,
    /// Already explored with a sleep set no larger than this one: skip.
    Known,
    /// Previously explored with a sleep set this visit does not subsume:
    /// re-explore with the narrowed (intersected) sleep digests.
    Widen(Vec<u64>),
}

/// True if every element of sorted `sub` occurs in sorted `sup`.
pub(crate) fn sorted_subset(sub: &[u64], sup: &[u64]) -> bool {
    let mut j = 0;
    'outer: for &x in sub {
        while j < sup.len() {
            match sup[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Intersection of two sorted slices.
pub(crate) fn sorted_intersection(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Records a visit of `fingerprint` under `sleep_digests` (sorted) and says
/// whether the state needs (re-)exploring. See [`FingerprintMap`]. This is
/// the reference implementation of the protocol; every exact
/// [`ExploredStore`] must agree with it verdict-for-verdict (the random
/// walk still uses it directly — its explored set is per-walk and tiny).
pub(crate) fn visit_explored(
    map: &mut FingerprintMap,
    fingerprint: u64,
    sleep_digests: &[u64],
) -> Visit {
    match map.entry(fingerprint) {
        Entry::Vacant(v) => {
            v.insert(sleep_digests.into());
            Visit::New
        }
        Entry::Occupied(mut o) => {
            if sorted_subset(o.get(), sleep_digests) {
                Visit::Known
            } else {
                let narrowed = sorted_intersection(o.get(), sleep_digests);
                o.insert(narrowed.clone().into_boxed_slice());
                Visit::Widen(narrowed)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration and the store trait
// ---------------------------------------------------------------------------

/// Which engine backs the explored set. Selected on the CLI with
/// `nice run --explored mem|tiered|bitstate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploredMode {
    /// Exact, in-memory packed tables (the default).
    #[default]
    Mem,
    /// Exact, with cold shards spilled to disk behind a bloom filter once
    /// the in-memory footprint exceeds the memory limit.
    Tiered,
    /// Lossy SPIN-style bitstate hashing in a fixed-size bit array: may
    /// *miss* states, never invents violations. Reports are flagged
    /// `lossy`.
    Bitstate,
}

impl ExploredMode {
    /// The stable (CLI and JSON schema) name of this mode.
    pub fn name(self) -> &'static str {
        match self {
            ExploredMode::Mem => "mem",
            ExploredMode::Tiered => "tiered",
            ExploredMode::Bitstate => "bitstate",
        }
    }

    /// Parses a stable name back; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<ExploredMode> {
        match name {
            "mem" => Some(ExploredMode::Mem),
            "tiered" => Some(ExploredMode::Tiered),
            "bitstate" => Some(ExploredMode::Bitstate),
            _ => None,
        }
    }
}

/// How the explored set is stored, and under what memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploredConfig {
    /// The storage engine.
    pub mode: ExploredMode,
    /// Approximate in-memory budget, in bytes; `0` means the mode's
    /// default. `tiered` starts spilling cold shards past this; `bitstate`
    /// sizes its bit array from it; `mem` ignores it (exact and unbounded).
    pub mem_limit: u64,
}

/// In-memory budget `tiered` defaults to when `--mem-limit` is not given.
const DEFAULT_TIERED_LIMIT: u64 = 512 << 20; // 512 MiB
/// Bit-array size `bitstate` defaults to when `--mem-limit` is not given.
const DEFAULT_BITSTATE_BYTES: u64 = 64 << 20; // 64 MiB = 2^29 states

/// Counters every store exposes; threaded into
/// [`SearchStats`](crate::checker::SearchStats) and the report JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploredStats {
    /// Bytes currently held in memory by the store.
    pub bytes: u64,
    /// High-water mark of [`ExploredStats::bytes`] over the run.
    pub peak_bytes: u64,
    /// Cold-shard spill events (tables written to disk segments).
    pub spilled_shards: u64,
    /// Disk probes avoided because a segment's bloom filter proved the
    /// fingerprint absent.
    pub filter_hits: u64,
    /// Binary searches actually performed against on-disk segments.
    pub disk_probes: u64,
}

/// The explored set behind a trait: thread-safe visit-and-record of
/// `(fingerprint, sleep set)` pairs. One store instance is shared by every
/// worker thread of a run, so implementations synchronise internally.
pub trait ExploredStore: Send + Sync {
    /// Records a visit of `fingerprint` under sorted `sleep_digests` and
    /// says whether the state needs (re-)exploring.
    fn visit(&self, fingerprint: u64, sleep_digests: &[u64]) -> Visit;

    /// Bytes currently held in memory (cheap; polled for progress events).
    fn bytes(&self) -> u64;

    /// Snapshot of the store's counters.
    fn stats(&self) -> ExploredStats;

    /// True if this store may *miss* states (bitstate hashing). Lossy
    /// stores never cause spurious violations — any violation reported was
    /// actually executed — but a PASS only means "no violation found in
    /// the states that were covered".
    fn lossy(&self) -> bool {
        false
    }
}

/// Builds the store a [`CheckerConfig`](crate::scenario::CheckerConfig)
/// asks for.
pub(crate) fn build_store(config: &ExploredConfig) -> Box<dyn ExploredStore> {
    match config.mode {
        ExploredMode::Mem => Box::new(MemStore::new()),
        ExploredMode::Tiered => {
            let limit = if config.mem_limit == 0 {
                DEFAULT_TIERED_LIMIT
            } else {
                config.mem_limit
            };
            Box::new(TieredStore::new(limit))
        }
        ExploredMode::Bitstate => {
            let bytes = if config.mem_limit == 0 {
                DEFAULT_BITSTATE_BYTES
            } else {
                config.mem_limit
            };
            Box::new(BitstateStore::new(bytes))
        }
    }
}

/// Lock shards per in-process store.
const STORE_SHARDS: usize = 64;

/// Picks the store-internal lock shard from bits 48..=55 of the
/// fingerprint — deliberately disjoint from the bits 56..=63 the
/// distributed [`shard_of`](crate::shard::shard_of) routes on, so a dist
/// worker's (top-byte-constrained) fingerprints still spread over all
/// [`STORE_SHARDS`] locks.
pub(crate) fn store_shard(fingerprint: u64) -> usize {
    ((fingerprint >> 48) & 0xff) as usize % STORE_SHARDS
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Packed open-addressed table
// ---------------------------------------------------------------------------

/// Slot marker: vacant.
const SLOT_EMPTY: u32 = u32::MAX;
/// Slot marker: occupied with an empty sleep set (the overwhelmingly common
/// case — every state without POR, and most states with it).
const SLOT_NO_SLEEP: u32 = u32::MAX - 1;

/// Smallest table capacity after the first insert; always a power of two.
const MIN_TABLE_CAPACITY: usize = 16;

/// An open-addressed (linear probing) fingerprint table packing each entry
/// into 12 bytes of slot — `fps[i]: u64` plus `refs[i]: u32` — instead of
/// a `HashMap` entry's ~48. `refs[i]` is [`SLOT_EMPTY`], [`SLOT_NO_SLEEP`],
/// or an index into the side table of non-empty sleep-digest lists (rare:
/// only POR states whose sleep set was non-empty at first visit). Probing
/// uses the fingerprint's low bits directly — fingerprints are already
/// uniformly distributed. No deletions, so no tombstones.
pub(crate) struct PackedTable {
    fps: Vec<u64>,
    refs: Vec<u32>,
    digests: Vec<Box<[u64]>>,
    len: usize,
    /// Sum of the lengths of all lists in `digests` (for byte accounting).
    digest_words: u64,
}

impl PackedTable {
    pub(crate) fn new() -> PackedTable {
        PackedTable {
            fps: Vec::new(),
            refs: Vec::new(),
            digests: Vec::new(),
            len: 0,
            digest_words: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Approximate heap footprint in bytes: 12 per slot plus the digest
    /// side table.
    pub(crate) fn bytes(&self) -> u64 {
        (self.fps.len() * 12 + self.digests.capacity() * 16) as u64 + self.digest_words * 8
    }

    /// Index of `fp`'s slot if present, else of the first vacant slot in
    /// its probe chain. Requires at least one vacant slot.
    fn probe(&self, fp: u64) -> usize {
        let mask = self.fps.len() - 1;
        let mut i = fp as usize & mask;
        loop {
            if self.refs[i] == SLOT_EMPTY || self.fps[i] == fp {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Grows (or first-allocates) so at least one insert fits under 3/4
    /// load.
    fn ensure_slot(&mut self) {
        let cap = self.fps.len();
        if cap == 0 || (self.len + 1) * 4 > cap * 3 {
            let new_cap = (cap * 2).max(MIN_TABLE_CAPACITY);
            let old_fps = std::mem::replace(&mut self.fps, vec![0; new_cap]);
            let old_refs = std::mem::replace(&mut self.refs, vec![SLOT_EMPTY; new_cap]);
            for (fp, r) in old_fps.into_iter().zip(old_refs) {
                if r != SLOT_EMPTY {
                    let i = self.probe(fp);
                    self.fps[i] = fp;
                    self.refs[i] = r;
                }
            }
        }
    }

    /// Stores a digest list, returning the slot ref encoding it.
    fn store_list(&mut self, digests: &[u64]) -> u32 {
        if digests.is_empty() {
            return SLOT_NO_SLEEP;
        }
        self.digests.push(digests.into());
        self.digest_words += digests.len() as u64;
        (self.digests.len() - 1) as u32
    }

    fn slot_digests(&self, slot: usize) -> &[u64] {
        match self.refs[slot] {
            SLOT_NO_SLEEP => &[],
            r => &self.digests[r as usize],
        }
    }

    /// Inserts `fp` with `digests`, replacing any existing entry.
    pub(crate) fn insert(&mut self, fp: u64, digests: &[u64]) {
        self.ensure_slot();
        let i = self.probe(fp);
        if self.refs[i] == SLOT_EMPTY {
            self.len += 1;
            self.fps[i] = fp;
            self.refs[i] = self.store_list(digests);
        } else {
            self.replace_list(i, digests);
        }
    }

    /// Replaces the digest list of an occupied slot.
    fn replace_list(&mut self, slot: usize, digests: &[u64]) {
        match self.refs[slot] {
            SLOT_NO_SLEEP => self.refs[slot] = self.store_list(digests),
            r => {
                let list = &mut self.digests[r as usize];
                self.digest_words -= list.len() as u64;
                self.digest_words += digests.len() as u64;
                *list = digests.into();
            }
        }
    }

    /// The full visit protocol against this table alone: exactly
    /// [`visit_explored`]'s semantics.
    pub(crate) fn visit(&mut self, fp: u64, sleep_digests: &[u64]) -> Visit {
        match self.visit_existing(fp, sleep_digests) {
            Some(verdict) => verdict,
            None => {
                self.ensure_slot();
                let i = self.probe(fp);
                self.len += 1;
                self.fps[i] = fp;
                self.refs[i] = self.store_list(sleep_digests);
                Visit::New
            }
        }
    }

    /// The visit protocol, but only if `fp` is already present — a miss
    /// records nothing and returns `None`, so a caller with colder tiers
    /// (the tiered store) can consult them before concluding `New`.
    pub(crate) fn visit_existing(&mut self, fp: u64, sleep_digests: &[u64]) -> Option<Visit> {
        if self.len == 0 {
            return None;
        }
        let i = self.probe(fp);
        if self.refs[i] == SLOT_EMPTY {
            return None;
        }
        let stored = self.slot_digests(i);
        if sorted_subset(stored, sleep_digests) {
            return Some(Visit::Known);
        }
        let narrowed = sorted_intersection(stored, sleep_digests);
        self.replace_list(i, &narrowed);
        Some(Visit::Widen(narrowed))
    }

    /// Every `(fingerprint, sleep digests)` entry, in table order.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u64, &[u64])> {
        self.refs
            .iter()
            .enumerate()
            .filter(|(_, &r)| r != SLOT_EMPTY)
            .map(|(i, _)| (self.fps[i], self.slot_digests(i)))
    }
}

// ---------------------------------------------------------------------------
// mem: exact in-memory store
// ---------------------------------------------------------------------------

/// Byte-accounting shared by the in-memory stores.
#[derive(Default)]
struct MemGauge {
    bytes: AtomicU64,
    peak: AtomicU64,
}

impl MemGauge {
    /// Applies the byte delta of one table mutation and tracks the peak.
    fn adjust(&self, before: u64, after: u64) {
        if after >= before {
            let now = self.bytes.fetch_add(after - before, Ordering::Relaxed) + (after - before);
            self.peak.fetch_max(now, Ordering::Relaxed);
        } else {
            self.bytes.fetch_sub(before - after, Ordering::Relaxed);
        }
    }
}

/// The exact in-memory store: [`STORE_SHARDS`] independently locked
/// [`PackedTable`]s.
struct MemStore {
    shards: Vec<Mutex<PackedTable>>,
    gauge: MemGauge,
}

impl MemStore {
    fn new() -> MemStore {
        MemStore {
            shards: (0..STORE_SHARDS)
                .map(|_| Mutex::new(PackedTable::new()))
                .collect(),
            gauge: MemGauge::default(),
        }
    }
}

impl ExploredStore for MemStore {
    fn visit(&self, fingerprint: u64, sleep_digests: &[u64]) -> Visit {
        let mut table = lock(&self.shards[store_shard(fingerprint)]);
        let before = table.bytes();
        let verdict = table.visit(fingerprint, sleep_digests);
        let after = table.bytes();
        drop(table);
        self.gauge.adjust(before, after);
        verdict
    }

    fn bytes(&self) -> u64 {
        self.gauge.bytes.load(Ordering::Relaxed)
    }

    fn stats(&self) -> ExploredStats {
        ExploredStats {
            bytes: self.gauge.bytes.load(Ordering::Relaxed),
            peak_bytes: self.gauge.peak.load(Ordering::Relaxed),
            ..ExploredStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// tiered: spill cold shards to disk behind a bloom filter
// ---------------------------------------------------------------------------

/// A bloom filter over one segment's fingerprints: `k = 3` hash positions
/// in `~12` bits per key, for a ~1% false-positive rate. A *negative*
/// answer is definitive (no disk probe needed); a positive one falls
/// through to the segment's binary search, which may still miss.
struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

const BLOOM_HASHES: u64 = 3;
const BLOOM_BITS_PER_KEY: usize = 12;

impl Bloom {
    fn for_fingerprints<'a>(fps: impl Iterator<Item = &'a u64>, count: usize) -> Bloom {
        let bits = (count * BLOOM_BITS_PER_KEY).next_power_of_two().max(64);
        let mut bloom = Bloom {
            bits: vec![0; bits / 64],
            mask: bits as u64 - 1,
        };
        for &fp in fps {
            for k in 0..BLOOM_HASHES {
                let bit = splitmix64(fp ^ (k << 56).wrapping_add(k)) & bloom.mask;
                bloom.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        bloom
    }

    /// False means definitely absent; true means "probe the segment".
    fn maybe(&self, fp: u64) -> bool {
        (0..BLOOM_HASHES).all(|k| {
            let bit = splitmix64(fp ^ (k << 56).wrapping_add(k)) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    fn bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }
}

/// SplitMix64: the finalizer used for bloom and bitstate hash positions.
/// Fingerprints are already uniform, but the *same* fingerprint must map to
/// independent positions per hash index, hence a real mixer over `fp ^ k`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One spilled shard generation: a sorted, immutable on-disk run of
/// `(fingerprint, sleep digests)` records plus its bloom filter. The file
/// is unlinked at creation (anonymous scratch space — the OS reclaims it
/// even on a crash); layout is `records × 16 bytes` (`fp: u64le`,
/// `digest_off: u32le` in words, `digest_count: u32le`) followed by the
/// digest heap (`u64le` words).
struct Segment {
    file: File,
    records: u64,
    bloom: Bloom,
}

/// Creates an anonymous scratch file in the OS temp directory.
fn scratch_file() -> io::Result<File> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "nice-explored-{}-{}.seg",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let file = File::options()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)?;
    // Unlink immediately: the handle keeps the data alive, the name never
    // outlives this process even if it aborts.
    let _ = std::fs::remove_file(&path);
    Ok(file)
}

impl Segment {
    /// Writes `entries` (sorted by fingerprint, unique) as a new segment.
    fn write(entries: &[(u64, &[u64])]) -> io::Result<Segment> {
        let mut file = scratch_file()?;
        let mut records = Vec::with_capacity(entries.len() * 16);
        let mut heap = Vec::new();
        let mut off: u32 = 0;
        for &(fp, digests) in entries {
            records.extend_from_slice(&fp.to_le_bytes());
            records.extend_from_slice(&off.to_le_bytes());
            records.extend_from_slice(&(digests.len() as u32).to_le_bytes());
            for &d in digests {
                heap.extend_from_slice(&d.to_le_bytes());
            }
            off += digests.len() as u32;
        }
        file.write_all(&records)?;
        file.write_all(&heap)?;
        Ok(Segment {
            file,
            records: entries.len() as u64,
            bloom: Bloom::for_fingerprints(entries.iter().map(|(fp, _)| fp), entries.len()),
        })
    }

    /// Binary-searches the segment for `fp`; `Ok(None)` if absent. An I/O
    /// error is reported so the caller can decide (the store treats it as
    /// absent: re-exploring a state is always sound, merely redundant).
    fn find(&self, fp: u64) -> io::Result<Option<Vec<u64>>> {
        let (mut lo, mut hi) = (0u64, self.records);
        let mut rec = [0u8; 16];
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.file.read_exact_at(&mut rec, mid * 16)?;
            let stored = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            match stored.cmp(&fp) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let off = u64::from(u32::from_le_bytes(rec[8..12].try_into().unwrap()));
                    let count = u32::from_le_bytes(rec[12..16].try_into().unwrap()) as usize;
                    if count == 0 {
                        return Ok(Some(Vec::new()));
                    }
                    let mut words = vec![0u8; count * 8];
                    self.file
                        .read_exact_at(&mut words, self.records * 16 + off * 8)?;
                    return Ok(Some(
                        words
                            .chunks_exact(8)
                            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                            .collect(),
                    ));
                }
            }
        }
        Ok(None)
    }
}

/// One lock shard of the tiered store: the hot delta table plus the
/// spilled generations, oldest first.
struct TierShard {
    table: PackedTable,
    segments: Vec<Segment>,
}

/// Don't spill a shard below this many entries: with a pathologically
/// small `--mem-limit` the limit check is permanently "over", and
/// per-insert spills would produce one segment per state.
const SPILL_MIN_ENTRIES: usize = 8;

/// The exact spill-to-disk store. Visits consult the hot delta table
/// first (newest narrowing wins), then segment blooms newest-first; a
/// fingerprint found only on disk that needs widening is re-inserted into
/// the delta, shadowing the stale segment record. When the total
/// in-memory footprint passes `mem_limit`, the shard holding the current
/// visit is spilled — a deliberately local policy: it needs no cross-shard
/// lock order, and under a uniform fingerprint distribution every shard
/// is visited (and thus spilled) at the same rate.
struct TieredStore {
    shards: Vec<Mutex<TierShard>>,
    mem_limit: u64,
    gauge: MemGauge,
    spilled: AtomicU64,
    filter_hits: AtomicU64,
    disk_probes: AtomicU64,
}

impl TieredStore {
    fn new(mem_limit: u64) -> TieredStore {
        TieredStore {
            shards: (0..STORE_SHARDS)
                .map(|_| {
                    Mutex::new(TierShard {
                        table: PackedTable::new(),
                        segments: Vec::new(),
                    })
                })
                .collect(),
            mem_limit,
            gauge: MemGauge::default(),
            spilled: AtomicU64::new(0),
            filter_hits: AtomicU64::new(0),
            disk_probes: AtomicU64::new(0),
        }
    }

    /// Looks `fp` up in the spilled segments, newest generation first
    /// (later generations hold narrower sleep sets for re-spilled
    /// fingerprints). I/O errors degrade to "absent": re-exploration is
    /// sound, and the record re-enters the (healthy) delta table.
    fn find_on_disk(&self, shard: &TierShard, fp: u64) -> Option<Vec<u64>> {
        for segment in shard.segments.iter().rev() {
            if !segment.bloom.maybe(fp) {
                self.filter_hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.disk_probes.fetch_add(1, Ordering::Relaxed);
            if let Ok(Some(stored)) = segment.find(fp) {
                return Some(stored);
            }
        }
        None
    }

    /// Spills `shard`'s delta table to a new segment. On I/O failure the
    /// table simply stays in memory (the limit becomes advisory).
    fn spill(&self, shard: &mut TierShard) {
        let segment = {
            let mut entries: Vec<(u64, &[u64])> = shard.table.entries().collect();
            entries.sort_unstable_by_key(|&(fp, _)| fp);
            Segment::write(&entries)
        };
        let Ok(segment) = segment else { return };
        let freed = shard.table.bytes();
        let bloom_bytes = segment.bloom.bytes();
        shard.segments.push(segment);
        shard.table = PackedTable::new();
        // The bloom filter stays resident; net in-memory change:
        self.gauge.adjust(freed, bloom_bytes);
        self.spilled.fetch_add(1, Ordering::Relaxed);
    }
}

impl ExploredStore for TieredStore {
    fn visit(&self, fingerprint: u64, sleep_digests: &[u64]) -> Visit {
        let mut shard = lock(&self.shards[store_shard(fingerprint)]);
        let before = shard.table.bytes();
        let verdict = match shard.table.visit_existing(fingerprint, sleep_digests) {
            Some(verdict) => verdict,
            None => match self.find_on_disk(&shard, fingerprint) {
                None => {
                    shard.table.insert(fingerprint, sleep_digests);
                    Visit::New
                }
                Some(stored) => {
                    if sorted_subset(&stored, sleep_digests) {
                        Visit::Known
                    } else {
                        let narrowed = sorted_intersection(&stored, sleep_digests);
                        // Shadow the stale disk record with the narrowed set.
                        shard.table.insert(fingerprint, &narrowed);
                        Visit::Widen(narrowed)
                    }
                }
            },
        };
        let after = shard.table.bytes();
        self.gauge.adjust(before, after);
        if self.gauge.bytes.load(Ordering::Relaxed) > self.mem_limit
            && shard.table.len() >= SPILL_MIN_ENTRIES
        {
            self.spill(&mut shard);
        }
        verdict
    }

    fn bytes(&self) -> u64 {
        self.gauge.bytes.load(Ordering::Relaxed)
    }

    fn stats(&self) -> ExploredStats {
        ExploredStats {
            bytes: self.gauge.bytes.load(Ordering::Relaxed),
            peak_bytes: self.gauge.peak.load(Ordering::Relaxed),
            spilled_shards: self.spilled.load(Ordering::Relaxed),
            filter_hits: self.filter_hits.load(Ordering::Relaxed),
            disk_probes: self.disk_probes.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// bitstate: lossy hash compaction
// ---------------------------------------------------------------------------

/// SPIN-style bitstate hashing: a fixed bit array, two independent hash
/// positions per fingerprint, a state is "known" iff both bits are set.
/// Memory is constant regardless of state count. Lossy in exactly one
/// direction: a double collision marks an unvisited state as known, so
/// states (and violations inside the skipped subtree) may be **missed** —
/// but every state the search *does* execute is real, so a reported
/// violation is always genuine. Sleep digests are ignored (a hit is always
/// `Known`): under POR that may prune more than sleep-set soundness
/// permits, which is just another way this mode can miss states.
struct BitstateStore {
    bits: Vec<AtomicU64>,
    mask: u64,
}

impl BitstateStore {
    fn new(budget_bytes: u64) -> BitstateStore {
        // Largest power-of-two bit count that fits the byte budget (at
        // least one word).
        let bits = (budget_bytes.max(8) * 8 + 1).next_power_of_two() / 2;
        BitstateStore {
            bits: (0..bits / 64).map(|_| AtomicU64::new(0)).collect(),
            mask: bits - 1,
        }
    }

    /// The two bit positions for a fingerprint.
    fn positions(&self, fp: u64) -> [u64; 2] {
        [splitmix64(fp) & self.mask, splitmix64(!fp) & self.mask]
    }
}

impl ExploredStore for BitstateStore {
    fn visit(&self, fingerprint: u64, _sleep_digests: &[u64]) -> Visit {
        let mut any_clear = false;
        for bit in self.positions(fingerprint) {
            let word = &self.bits[(bit / 64) as usize];
            let mask = 1u64 << (bit % 64);
            if word.fetch_or(mask, Ordering::Relaxed) & mask == 0 {
                any_clear = true;
            }
        }
        if any_clear {
            Visit::New
        } else {
            Visit::Known
        }
    }

    fn bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }

    fn stats(&self) -> ExploredStats {
        let bytes = self.bytes();
        ExploredStats {
            bytes,
            peak_bytes: bytes,
            ..ExploredStats::default()
        }
    }

    fn lossy(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_hasher_is_identity_on_u64() {
        let mut h = FingerprintHasher::default();
        h.write_u64(0xdead_beef_cafe_f00d);
        assert_eq!(h.finish(), 0xdead_beef_cafe_f00d);
    }

    /// A tiny deterministic generator for fingerprints and sleep sets.
    struct TestRng(u64);
    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(self.0)
        }

        /// A sorted, deduplicated digest list of length 0..=3 (mostly 0,
        /// like real POR sleep sets).
        fn sleep(&mut self) -> Vec<u64> {
            let n = (self.next() % 5).saturating_sub(2) as usize;
            let mut v: Vec<u64> = (0..n).map(|_| self.next() % 16).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
    }

    /// Drives a visit sequence against a store and the reference
    /// [`visit_explored`] map, asserting verdict-for-verdict agreement.
    fn agrees_with_reference(store: &dyn ExploredStore, visits: usize, seed: u64) {
        let mut rng = TestRng(seed);
        let mut reference = FingerprintMap::default();
        for i in 0..visits {
            // A small fingerprint space forces revisits and widenings.
            let fp = splitmix64(rng.next() % 500);
            let sleep = rng.sleep();
            let expected = visit_explored(&mut reference, fp, &sleep);
            let got = store.visit(fp, &sleep);
            assert_eq!(got, expected, "visit {i}: fp {fp:#x} sleep {sleep:?}");
        }
    }

    #[test]
    fn packed_table_agrees_with_reference_semantics() {
        agrees_with_reference(&MemStore::new(), 5_000, 1);
    }

    #[test]
    fn tiered_store_agrees_with_reference_even_while_spilling_constantly() {
        // A 1-byte limit keeps the store permanently over budget, so every
        // shard spills as soon as it holds SPILL_MIN_ENTRIES — the verdicts
        // must not change.
        let store = TieredStore::new(1);
        agrees_with_reference(&store, 5_000, 2);
        let stats = store.stats();
        assert!(stats.spilled_shards > 0, "tiny limit must force spills");
        assert!(stats.disk_probes > 0, "revisits must have probed disk");
        assert!(stats.peak_bytes > 0);
    }

    #[test]
    fn tiered_store_with_room_never_touches_disk() {
        let store = TieredStore::new(u64::MAX);
        agrees_with_reference(&store, 2_000, 3);
        let stats = store.stats();
        assert_eq!(stats.spilled_shards, 0);
        assert_eq!(stats.disk_probes, 0);
        assert_eq!(stats.filter_hits, 0);
    }

    #[test]
    fn segment_round_trips_every_entry_and_misses_absent_keys() {
        let digests: Vec<Vec<u64>> = (0..100u64).map(|i| (0..i % 4).collect()).collect();
        let entries: Vec<(u64, &[u64])> = digests
            .iter()
            .enumerate()
            .map(|(i, d)| (i as u64 * 3, d.as_slice()))
            .collect();
        let segment = Segment::write(&entries).expect("write segment");
        for &(fp, digests) in &entries {
            assert_eq!(
                segment.find(fp).expect("probe"),
                Some(digests.to_vec()),
                "fp {fp}"
            );
        }
        for absent in [1u64, 2, 299, 301, u64::MAX] {
            assert_eq!(segment.find(absent).expect("probe"), None, "fp {absent}");
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let fps: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        let bloom = Bloom::for_fingerprints(fps.iter(), fps.len());
        for &fp in &fps {
            assert!(bloom.maybe(fp));
        }
    }

    #[test]
    fn filter_false_positives_fall_through_to_the_disk_probe() {
        // Fill a tiered store past its limit so fingerprints live on disk,
        // then visit a large batch of *absent* fingerprints: the bloom
        // filters reject most (filter_hits), a few collide (false
        // positives) and must fall through to a disk probe that correctly
        // concludes New.
        let store = TieredStore::new(1);
        for i in 0..2_000u64 {
            assert_eq!(store.visit(splitmix64(i), &[]), Visit::New);
        }
        assert!(store.stats().spilled_shards > 0);
        let probes_before = store.stats().disk_probes;
        for i in 0..50_000u64 {
            let fp = splitmix64(i + 1_000_000);
            assert_eq!(store.visit(fp, &[]), Visit::New, "absent fp {fp:#x}");
        }
        let stats = store.stats();
        assert!(
            stats.filter_hits > 0,
            "blooms should have rejected most absent fingerprints"
        );
        assert!(
            stats.disk_probes > probes_before,
            "with ~1% FP rate over 50k probes, some must have fallen through"
        );
    }

    #[test]
    fn bitstate_dedups_without_sleep_sets_and_is_flagged_lossy() {
        let store = BitstateStore::new(1 << 16);
        assert!(store.lossy());
        assert_eq!(store.visit(42, &[]), Visit::New);
        assert_eq!(store.visit(42, &[]), Visit::Known);
        assert_eq!(store.visit(42, &[1, 2]), Visit::Known); // sleep ignored
        let bytes = store.bytes();
        for i in 0..10_000u64 {
            store.visit(splitmix64(i), &[]);
        }
        assert_eq!(store.bytes(), bytes, "bitstate memory is constant");
    }

    #[test]
    fn bitstate_respects_its_byte_budget() {
        for budget in [0u64, 1, 100, 1 << 16, (1 << 16) + 1] {
            let store = BitstateStore::new(budget.max(8));
            assert!(store.bytes() <= budget.max(8).max(8));
            assert!(store.bytes().is_power_of_two() || store.bytes() == 8);
        }
    }

    #[test]
    fn store_shard_uses_bits_48_to_55_only() {
        let mut rng = TestRng(7);
        for _ in 0..1000 {
            let fp = rng.next();
            // Flipping the dist-routing byte (56..=63) never moves the
            // store shard...
            assert_eq!(store_shard(fp), store_shard(fp ^ (0xff << 56)));
            // ...and flipping the store byte never leaves it in place.
            assert_ne!(store_shard(fp), store_shard(fp ^ (0x3f << 48)));
        }
    }

    #[test]
    fn build_store_honours_mode_and_lossy_flag() {
        for (mode, lossy) in [
            (ExploredMode::Mem, false),
            (ExploredMode::Tiered, false),
            (ExploredMode::Bitstate, true),
        ] {
            let store = build_store(&ExploredConfig { mode, mem_limit: 0 });
            assert_eq!(store.lossy(), lossy, "{}", mode.name());
            assert_eq!(store.visit(99, &[]), Visit::New);
            assert_eq!(store.visit(99, &[]), Visit::Known);
        }
    }

    #[test]
    fn explored_mode_names_round_trip() {
        for mode in [
            ExploredMode::Mem,
            ExploredMode::Tiered,
            ExploredMode::Bitstate,
        ] {
            assert_eq!(ExploredMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ExploredMode::parse("zram"), None);
    }
}
