//! Partial-order reduction: static independence of transitions.
//!
//! The canonical NICE-MC search enumerates every interleaving of the enabled
//! transitions and only collapses equivalent interleavings *after* execution,
//! when two orders happen to produce the same state fingerprint. But many
//! pairs of transitions are *independent* by construction — `process_pkt` at
//! two switches whose packets cannot reach each other, sends by two
//! different hosts, a pure receive and anything else — and executing them in
//! either order provably yields the same state. This module provides the
//! machinery to recognise such pairs **before** execution:
//!
//! * [`Transition::footprint`] — the set of system components (switches,
//!   channels, hosts, the controller runtime) a transition reads and writes,
//!   over-approximated conservatively from the current state. Channel
//!   resources distinguish the *head* (consumer side) from the *tail*
//!   (producer side), so pushing onto a non-empty FIFO commutes with popping
//!   its head.
//! * [`independent`] — two transitions are independent when their footprints
//!   are disjoint (no write/write or read/write overlap). The controller
//!   runtime is itself a resource: handler executions, symbolic discovery
//!   and statistics injection all read *and* write it, so any two of them
//!   conflict, and so does anything whose enabledness depends on the
//!   controller state (discovery-mode sends read it). A handler execution
//!   and unrelated data-plane activity, by contrast, genuinely commute —
//!   the handler's channel writes are conservatively spread over *every*
//!   controller→switch tail, so reordering it past a `process_of` or a
//!   packet delivery is only permitted when the FIFO head/tail split proves
//!   the pair commutes.
//!
//! Soundness argument, in brief: a transition's footprint is computed in the
//! current state `s` and over-approximates every component the execution can
//! touch. If `t1` and `t2` are independent in `s`, then executing `t1`
//! cannot change anything `t2` reads (so `t2` stays enabled and behaves
//! identically) and vice versa, and their writes land in disjoint
//! components — hence `t1;t2` and `t2;t1` reach the same state. The packet
//! provenance-id allocator is deliberately excluded from footprints: ids are
//! bookkeeping for violation traces and are excluded from all state
//! fingerprints (see `Packet`'s `Fingerprint` impl), so id-allocation order
//! does not distinguish states.
//!
//! The sleep-set search built on this relation lives in
//! [`crate::checker`]; the composable [`Reduction`](crate::strategy::Reduction)
//! layer in [`crate::strategy`].

use crate::scenario::Scenario;
use crate::state::SystemState;
use crate::transition::Transition;
use nice_openflow::{
    ChannelFault, Fingerprint, Fnv64, HostId, OfMessage, PacketFate, PortId, SwitchId,
};

/// Abstract resource identifiers, encoded as `u64`s so footprints are flat
/// sorted vectors with cheap disjointness checks.
mod res {
    use super::{HostId, PortId, SwitchId};

    const fn encode(tag: u64, a: u64, b: u64) -> u64 {
        (tag << 48) | (a << 16) | b
    }

    /// The controller runtime, including the symbolic-discovery caches and
    /// the pending-statistics bookkeeping it owns.
    pub const CONTROLLER: u64 = encode(1, 0, 0);
    /// The global host-attachment map consulted by packet delivery
    /// (`host_at`), written by host moves.
    pub const LOCATIONS: u64 = encode(2, 0, 0);

    /// A switch's own state: flow table, packet buffer, counters.
    pub fn switch(s: SwitchId) -> u64 {
        encode(3, s.0 as u64, 0)
    }
    /// Consumer side of the switch→controller channel.
    pub fn sw2c_head(s: SwitchId) -> u64 {
        encode(4, s.0 as u64, 0)
    }
    /// Producer side of the switch→controller channel.
    pub fn sw2c_tail(s: SwitchId) -> u64 {
        encode(5, s.0 as u64, 0)
    }
    /// Consumer side of the controller→switch channel.
    pub fn c2s_head(s: SwitchId) -> u64 {
        encode(6, s.0 as u64, 0)
    }
    /// Producer side of the controller→switch channel.
    pub fn c2s_tail(s: SwitchId) -> u64 {
        encode(7, s.0 as u64, 0)
    }
    /// Consumer side of a switch ingress channel.
    pub fn ingress_head(s: SwitchId, p: PortId) -> u64 {
        encode(8, s.0 as u64, p.0 as u64)
    }
    /// Producer side of a switch ingress channel.
    pub fn ingress_tail(s: SwitchId, p: PortId) -> u64 {
        encode(9, s.0 as u64, p.0 as u64)
    }
    /// A host's sending state (budget, burst credit, script position).
    pub fn host_tx(h: HostId) -> u64 {
        encode(10, h.0 as u64, 0)
    }
    /// A host's receiving state (delivery counters).
    pub fn host_rx(h: HostId) -> u64 {
        encode(11, h.0 as u64, 0)
    }
    /// A host's attachment point (read by its own sends/replies, written by
    /// moves).
    pub fn host_loc(h: HostId) -> u64 {
        encode(12, h.0 as u64, 0)
    }
    /// Consumer side of a host inbox.
    pub fn inbox_head(h: HostId) -> u64 {
        encode(13, h.0 as u64, 0)
    }
    /// Producer side of a host inbox.
    pub fn inbox_tail(h: HostId) -> u64 {
        encode(14, h.0 as u64, 0)
    }
    /// The shared fault budget. Every budget-consuming fault injection both
    /// reads it (enabledness requires a non-zero budget) and writes it (the
    /// injection decrements it), so any two injections are mutually
    /// dependent — which is exactly what soundness needs, because with one
    /// unit of budget left either injection disables the other.
    pub const BUDGET: u64 = encode(15, 0, 0);
}

/// The components a transition reads and writes, plus whether it involves
/// the controller runtime (which makes it dependent on everything).
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    reads: Vec<u64>,
    writes: Vec<u64>,
    controller: bool,
}

impl Footprint {
    fn read(&mut self, r: u64) {
        self.reads.push(r);
    }

    fn write(&mut self, r: u64) {
        self.writes.push(r);
    }

    fn touch(&mut self, r: u64) {
        self.reads.push(r);
        self.writes.push(r);
    }

    fn involve_controller(&mut self) {
        self.controller = true;
        self.reads.push(res::CONTROLLER);
        self.writes.push(res::CONTROLLER);
    }

    fn normalize(mut self) -> Self {
        self.reads.sort_unstable();
        self.reads.dedup();
        self.writes.sort_unstable();
        self.writes.dedup();
        self
    }

    /// The resources this transition may read, sorted.
    pub fn reads(&self) -> &[u64] {
        &self.reads
    }

    /// The resources this transition may write, sorted.
    pub fn writes(&self) -> &[u64] {
        &self.writes
    }

    /// True if the transition executes controller code or mutates
    /// controller-owned state (discovery caches, pending statistics).
    pub fn involves_controller(&self) -> bool {
        self.controller
    }

    /// True if the two footprints permit commuting the transitions: no
    /// write/write or read/write overlap between them (read/read sharing is
    /// harmless).
    ///
    /// The controller runtime needs no special-casing beyond its resource:
    /// every transition that executes controller code both reads and writes
    /// [`res::CONTROLLER`], so two controller-involving transitions always
    /// conflict, and anything whose enabledness or effect depends on the
    /// controller state (e.g. discovery-mode sends) conflicts with them via
    /// its `CONTROLLER` read. A controller handler and, say, a remote
    /// `process_pkt` genuinely commute: the handler consumes the head of one
    /// switch→controller channel and appends to controller→switch channels,
    /// while the packet processing appends to the *tail* of its own
    /// switch→controller channel — FIFO pushes and pops on disjoint ends
    /// commute.
    pub fn independent_of(&self, other: &Footprint) -> bool {
        !sorted_overlap(&self.writes, &other.writes)
            && !sorted_overlap(&self.writes, &other.reads)
            && !sorted_overlap(&self.reads, &other.writes)
    }
}

/// True if two sorted slices share an element (merge walk, no allocation).
fn sorted_overlap(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Two transitions commute in `state`: executing them in either order yields
/// the same successor, and neither disables the other.
pub fn independent(
    a: &Transition,
    b: &Transition,
    state: &SystemState,
    scenario: &Scenario,
) -> bool {
    a.footprint(state, scenario)
        .independent_of(&b.footprint(state, scenario))
}

/// Appends the delivery resources for a copy emitted by `switch` on `port`:
/// the inbox of the attached host, or the ingress of the peer switch, or
/// nothing (the copy is lost). Mirrors `deliver` in [`crate::transition`].
fn delivery_writes(fp: &mut Footprint, state: &SystemState, switch: SwitchId, port: PortId) {
    if let Some(host) = state.host_at(switch, port) {
        fp.write(res::inbox_tail(host));
    } else if let Some(peer) = state.topology().switch_peer(switch, port) {
        fp.write(res::ingress_tail(peer.switch, peer.port));
    }
}

/// Folds a predicted packet fate into a footprint: deliveries (which consult
/// the global attachment map) and the optional controller notification.
fn fate_writes(fp: &mut Footprint, state: &SystemState, switch: SwitchId, fate: &PacketFate) {
    if fate.to_controller {
        fp.write(res::sw2c_tail(switch));
    }
    if !fate.out_ports.is_empty() {
        // `deliver` / `has_receiver` consult every host's current location.
        fp.read(res::LOCATIONS);
        for &port in &fate.out_ports {
            delivery_writes(fp, state, switch, port);
        }
    }
}

/// Worst-case footprint of a packet-emitting transition at `switch`: it may
/// flood out of every port and notify the controller. Used when the concrete
/// input (head message) cannot be inspected.
fn worst_case_emission(fp: &mut Footprint, state: &SystemState, switch: SwitchId) {
    let ports = state
        .switch(switch)
        .map(|s| s.ports.clone())
        .unwrap_or_default();
    fp.write(res::sw2c_tail(switch));
    fp.read(res::LOCATIONS);
    for port in ports {
        delivery_writes(fp, state, switch, port);
    }
}

impl Transition {
    /// The component footprint of this transition in `state`: which parts of
    /// the system it may read and write when executed, over-approximated
    /// conservatively (see the module docs for the soundness argument).
    pub fn footprint(&self, state: &SystemState, scenario: &Scenario) -> Footprint {
        let mut fp = Footprint::default();
        match self {
            Transition::HostSend { host, .. } => {
                fp.touch(res::host_tx(*host));
                fp.read(res::host_loc(*host));
                if scenario.send_policy.is_discover() {
                    // Which packets are relevant (and hence which send
                    // transitions exist) depends on the controller state.
                    fp.read(res::CONTROLLER);
                }
                if let Some(h) = state.host(*host) {
                    let loc = h.location();
                    fp.write(res::ingress_tail(loc.switch, loc.port));
                }
            }

            Transition::HostReceive { host } => {
                fp.touch(res::host_rx(*host));
                fp.touch(res::inbox_head(*host));
                if let Some(h) = state.host(*host) {
                    if h.receive_replenishes_sends() {
                        fp.write(res::host_tx(*host));
                    }
                    if h.may_reply() {
                        fp.read(res::host_loc(*host));
                        let loc = h.location();
                        fp.write(res::ingress_tail(loc.switch, loc.port));
                    }
                }
            }

            Transition::HostMove { host, .. } => {
                fp.touch(res::host_loc(*host));
                fp.write(res::LOCATIONS);
            }

            Transition::ProcessPacket { switch } => {
                fp.touch(res::switch(*switch));
                let busy = state.busy_ingress_ports(*switch);
                let all_ports = state
                    .switch(*switch)
                    .map(|s| s.ports.clone())
                    .unwrap_or_default();
                for &port in &all_ports {
                    if busy.contains(&port) {
                        fp.touch(res::ingress_head(*switch, port));
                    } else {
                        // The coarse transition services *every* busy port,
                        // so making an idle port busy changes its behaviour:
                        // record an enabling read on the producer side.
                        fp.read(res::ingress_tail(*switch, port));
                    }
                }
                for port in busy {
                    match state.ingress(*switch, port).and_then(|ch| ch.peek()) {
                        Some(packet) => {
                            if let Some(sw) = state.switch(*switch) {
                                let fate = sw.predict_packet_fate(packet, port);
                                fate_writes(&mut fp, state, *switch, &fate);
                            }
                        }
                        None => worst_case_emission(&mut fp, state, *switch),
                    }
                }
            }

            Transition::ProcessPacketOn { switch, port } => {
                fp.touch(res::switch(*switch));
                fp.touch(res::ingress_head(*switch, *port));
                match state.ingress(*switch, *port).and_then(|ch| ch.peek()) {
                    Some(packet) => {
                        if let Some(sw) = state.switch(*switch) {
                            let fate = sw.predict_packet_fate(packet, *port);
                            fate_writes(&mut fp, state, *switch, &fate);
                        }
                    }
                    None => worst_case_emission(&mut fp, state, *switch),
                }
            }

            Transition::ProcessOf { switch } => {
                fp.touch(res::c2s_head(*switch));
                match state.ctrl_to_sw(*switch).and_then(|ch| ch.peek()) {
                    Some(OfMessage::FlowMod { .. }) => {
                        fp.write(res::switch(*switch));
                        fp.read(res::switch(*switch));
                    }
                    Some(OfMessage::BarrierRequest { .. }) => {
                        fp.write(res::sw2c_tail(*switch));
                    }
                    Some(OfMessage::StatsRequest { .. }) => {
                        // Stats replies snapshot the counters, which every
                        // packet-processing step mutates.
                        fp.read(res::switch(*switch));
                        fp.write(res::sw2c_tail(*switch));
                    }
                    Some(OfMessage::PacketOut {
                        buffer_id,
                        packet,
                        in_port,
                        actions,
                    }) => {
                        fp.touch(res::switch(*switch));
                        let resolved = match buffer_id {
                            Some(id) => state
                                .switch(*switch)
                                .and_then(|sw| sw.buffered_packet(*id))
                                .map(|bp| bp.in_port),
                            None => packet.as_ref().map(|_| *in_port),
                        };
                        if let (Some(origin), Some(sw)) = (resolved, state.switch(*switch)) {
                            let fate = sw.predict_actions_fate(actions, origin);
                            fate_writes(&mut fp, state, *switch, &fate);
                        }
                    }
                    // An unexpected (or unobservable) head message: assume
                    // the worst.
                    _ => {
                        fp.touch(res::switch(*switch));
                        worst_case_emission(&mut fp, state, *switch);
                    }
                }
            }

            Transition::ControllerHandle { switch } => {
                fp.involve_controller();
                fp.touch(res::sw2c_head(*switch));
                // The handler may enqueue messages towards any switch.
                for (s, _) in state.switches() {
                    fp.write(res::c2s_tail(s));
                }
            }

            Transition::DiscoverPackets { host } => {
                fp.involve_controller();
                fp.read(res::host_loc(*host));
            }

            Transition::DiscoverStats { switch } => {
                fp.involve_controller();
                fp.read(res::switch(*switch));
            }

            Transition::InjectStats { switch, .. } => {
                fp.involve_controller();
                fp.read(res::switch(*switch));
                for (s, _) in state.switches() {
                    fp.write(res::c2s_tail(s));
                }
            }

            Transition::ExpireRule { switch, .. } => {
                fp.touch(res::switch(*switch));
            }

            Transition::ChannelFault {
                switch,
                port,
                fault,
            } => {
                fp.touch(res::BUDGET);
                // Drop, duplicate and reorder only rearrange the first one or
                // two messages: they commute with a push onto the tail of the
                // same (non-empty) queue. A link failure additionally clears
                // the queue and discards future pushes, so it conflicts with
                // the producer side too.
                fp.touch(res::ingress_head(*switch, *port));
                if matches!(fault, ChannelFault::FailLink) {
                    fp.touch(res::ingress_tail(*switch, *port));
                }
            }

            Transition::SwitchCrash { switch } => {
                fp.touch(res::BUDGET);
                // The crash wipes the switch, drains every attached channel
                // (both ends: queued messages vanish and, while crashed,
                // deliveries towards the switch are discarded), and clears
                // the controller's pending-statistics bookkeeping for it.
                fp.involve_controller();
                fp.touch(res::switch(*switch));
                fp.touch(res::sw2c_head(*switch));
                fp.touch(res::sw2c_tail(*switch));
                fp.touch(res::c2s_head(*switch));
                fp.touch(res::c2s_tail(*switch));
                let ports = state
                    .switch(*switch)
                    .map(|s| s.ports.clone())
                    .unwrap_or_default();
                for port in ports {
                    fp.touch(res::ingress_head(*switch, port));
                    fp.touch(res::ingress_tail(*switch, port));
                }
            }

            Transition::SwitchReconnect { switch } => {
                // Recovery is free (no budget), but it flips the crashed
                // flag — which re-enables deliveries to every ingress port —
                // restores the control channel, and enqueues a fresh join
                // towards the controller.
                fp.touch(res::switch(*switch));
                fp.write(res::sw2c_tail(*switch));
                fp.touch(res::c2s_head(*switch));
                fp.touch(res::c2s_tail(*switch));
                let ports = state
                    .switch(*switch)
                    .map(|s| s.ports.clone())
                    .unwrap_or_default();
                for port in ports {
                    fp.write(res::ingress_tail(*switch, port));
                }
            }

            Transition::ControllerFailover => {
                fp.touch(res::BUDGET);
                // The standby replays (warm) or requests (cold) a join from
                // every live switch, so it reads every switch's state and may
                // append to every control channel in both directions.
                fp.involve_controller();
                for (s, _) in state.switches() {
                    fp.read(res::switch(s));
                    fp.write(res::sw2c_tail(s));
                    fp.write(res::c2s_tail(s));
                }
            }

            Transition::MutateOfHead { switch, .. } => {
                fp.touch(res::BUDGET);
                // The mutation rewrites the head of one controller→switch
                // channel in place; which mutations are enabled also depends
                // on that head message.
                fp.touch(res::c2s_head(*switch));
            }
        }
        fp.normalize()
    }

    /// A 64-bit digest identifying this transition (kind plus every
    /// distinguishing field, packet contents included). Used to store sleep
    /// sets compactly alongside state fingerprints and to match enabled
    /// transitions against inherited sleep-set entries.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::with_seed(0xde_d0c);
        h.write_str(self.kind());
        match self {
            Transition::HostSend { host, packet } => {
                host.fingerprint(&mut h);
                packet.fingerprint(&mut h);
                h.write_u64(packet.id.0);
            }
            Transition::HostReceive { host } => host.fingerprint(&mut h),
            Transition::HostMove { host, to } => {
                host.fingerprint(&mut h);
                to.fingerprint(&mut h);
            }
            Transition::ProcessPacket { switch }
            | Transition::ProcessOf { switch }
            | Transition::ControllerHandle { switch }
            | Transition::DiscoverStats { switch }
            | Transition::SwitchCrash { switch }
            | Transition::SwitchReconnect { switch } => switch.fingerprint(&mut h),
            Transition::ProcessPacketOn { switch, port } => {
                switch.fingerprint(&mut h);
                port.fingerprint(&mut h);
            }
            Transition::DiscoverPackets { host } => host.fingerprint(&mut h),
            Transition::InjectStats { switch, stats } => {
                switch.fingerprint(&mut h);
                h.write_usize(stats.len());
                for entry in stats {
                    entry.fingerprint(&mut h);
                }
            }
            Transition::ExpireRule { switch, rule_index } => {
                switch.fingerprint(&mut h);
                h.write_usize(*rule_index);
            }
            Transition::ChannelFault {
                switch,
                port,
                fault,
            } => {
                switch.fingerprint(&mut h);
                port.fingerprint(&mut h);
                h.write_u64(*fault as u64);
            }
            Transition::ControllerFailover => {}
            Transition::MutateOfHead { switch, mutation } => {
                switch.fingerprint(&mut h);
                h.write_str(mutation.name());
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CheckerConfig;
    use crate::testutil;
    use crate::transition::enabled_transitions;
    use nice_openflow::{MacAddr, Packet};

    fn chain_state() -> (Scenario, SystemState) {
        let scenario = testutil::hub_ping_scenario(1);
        let state = SystemState::initial(&scenario);
        (scenario, state)
    }

    #[test]
    fn sends_by_different_hosts_are_independent() {
        let (scenario, state) = chain_state();
        let a = Transition::HostSend {
            host: HostId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
        };
        let b = Transition::HostSend {
            host: HostId(2),
            packet: Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0),
        };
        assert!(independent(&a, &b, &state, &scenario));
        assert!(!independent(&a, &a, &state, &scenario));
    }

    #[test]
    fn send_to_an_idle_port_conflicts_with_coarse_processing() {
        let (scenario, mut state) = chain_state();
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        // Port 2 of switch 1 is busy, port 1 (where host 1 sits) is idle: a
        // send by host 1 would make port 1 busy, changing what the coarse
        // process_pkt transition services — they must be dependent.
        state.enqueue_ingress(SwitchId(1), PortId(2), pkt);
        let process = Transition::ProcessPacket {
            switch: SwitchId(1),
        };
        let send = Transition::HostSend {
            host: HostId(1),
            packet: pkt,
        };
        assert!(!independent(&process, &send, &state, &scenario));

        // Pushing onto an already-busy port, by contrast, commutes with
        // popping its head: once port 1 is busy too, the send and the
        // coarse processing are independent.
        let mut busy_both = state.clone();
        busy_both.enqueue_ingress(SwitchId(1), PortId(1), pkt);
        let process_fp = process.footprint(&busy_both, &scenario);
        let send_fp = send.footprint(&busy_both, &scenario);
        assert!(process_fp.independent_of(&send_fp));
    }

    #[test]
    fn controller_involving_transitions_conflict_with_each_other() {
        let (scenario, state) = chain_state();
        let a = Transition::ControllerHandle {
            switch: SwitchId(1),
        };
        let b = Transition::ControllerHandle {
            switch: SwitchId(2),
        };
        assert!(a.footprint(&state, &scenario).involves_controller());
        // Two handler executions race on the controller runtime.
        assert!(!independent(&a, &b, &state, &scenario));
        // Statistics injection also executes controller code, so it races
        // with a handler execution too.
        let inject = Transition::InjectStats {
            switch: SwitchId(2),
            stats: vec![],
        };
        assert!(!independent(&a, &inject, &state, &scenario));
        // But a handler execution commutes with delivering an *older*
        // controller→switch message: the handler appends to channel tails,
        // process_of pops an (already present) head.
        let deliver = Transition::ProcessOf {
            switch: SwitchId(1),
        };
        assert!(independent(&a, &deliver, &state, &scenario));
    }

    #[test]
    fn pure_receive_is_independent_of_remote_processing() {
        // Host 1 in the hub scenario is the non-echo ping sender; its
        // receive transition (consuming an echo) is purely local once its
        // burst-free budget cannot be replenished.
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let pkt = Packet::l2_ping(3, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        state.enqueue_host(HostId(1), pkt);
        state.enqueue_ingress(SwitchId(2), PortId(2), pkt);
        let receive = Transition::HostReceive { host: HostId(1) };
        let process = Transition::ProcessPacket {
            switch: SwitchId(2),
        };
        let fp = receive.footprint(&state, &scenario);
        assert!(!fp.involves_controller());
        assert!(independent(&receive, &process, &state, &scenario));
    }

    #[test]
    fn footprints_expose_sorted_resource_sets() {
        let (scenario, state) = chain_state();
        let t = Transition::HostSend {
            host: HostId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
        };
        let fp = t.footprint(&state, &scenario);
        assert!(!fp.reads().is_empty());
        assert!(!fp.writes().is_empty());
        assert!(fp.reads().windows(2).all(|w| w[0] < w[1]));
        assert!(fp.writes().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn digest_distinguishes_transitions() {
        let a = Transition::HostReceive { host: HostId(1) };
        let b = Transition::HostReceive { host: HostId(2) };
        let c = Transition::ProcessPacket {
            switch: SwitchId(1),
        };
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(
            a.digest(),
            Transition::HostReceive { host: HostId(1) }.digest()
        );
    }

    #[test]
    fn fault_injections_conflict_on_the_budget_but_commute_with_remote_work() {
        let (scenario, mut state) = chain_state();
        let drop_head = Transition::ChannelFault {
            switch: SwitchId(1),
            port: PortId(1),
            fault: ChannelFault::DropHead,
        };
        let crash = Transition::SwitchCrash {
            switch: SwitchId(2),
        };
        // Any two budget-consuming injections race on the shared budget.
        assert!(!independent(&drop_head, &crash, &state, &scenario));
        // An ingress fault at switch 1 commutes with packet processing at
        // switch 2...
        let remote = Transition::ProcessPacket {
            switch: SwitchId(2),
        };
        assert!(independent(&drop_head, &remote, &state, &scenario));
        // ...but not with processing on the very queue it corrupts.
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        state.enqueue_ingress(SwitchId(1), PortId(1), pkt);
        let local = Transition::ProcessPacket {
            switch: SwitchId(1),
        };
        assert!(!independent(&drop_head, &local, &state, &scenario));
        // Recovery is budget-free, so it only conflicts with work at the
        // recovering switch itself.
        let reconnect = Transition::SwitchReconnect {
            switch: SwitchId(2),
        };
        assert!(independent(&reconnect, &local, &state, &scenario));
        assert!(!independent(&reconnect, &remote, &state, &scenario));
    }

    #[test]
    fn fault_digests_distinguish_kind_and_site() {
        let a = Transition::ChannelFault {
            switch: SwitchId(1),
            port: PortId(1),
            fault: ChannelFault::DropHead,
        };
        let b = Transition::ChannelFault {
            switch: SwitchId(1),
            port: PortId(1),
            fault: ChannelFault::DuplicateHead,
        };
        let c = Transition::ChannelFault {
            switch: SwitchId(2),
            port: PortId(1),
            fault: ChannelFault::DropHead,
        };
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        let crash = Transition::SwitchCrash {
            switch: SwitchId(1),
        };
        let reconnect = Transition::SwitchReconnect {
            switch: SwitchId(1),
        };
        assert_ne!(crash.digest(), reconnect.digest());
    }

    #[test]
    fn enabled_transitions_all_have_footprints() {
        let scenario = testutil::hub_ping_scenario(2);
        let config = CheckerConfig::default();
        let state = SystemState::initial(&scenario);
        for t in enabled_transitions(&state, &scenario, &config) {
            // Smoke: footprint construction must not panic and must report
            // at least one write for every transition kind.
            let fp = t.footprint(&state, &scenario);
            assert!(!fp.writes().is_empty(), "{t} has an empty write set");
        }
    }
}
