//! # nice-mc
//!
//! The NICE model checker: explicit-state search over the whole system —
//! the controller program, the simplified OpenFlow switches, and the end
//! hosts — combined with symbolic execution of the controller's event
//! handlers (the `discover_packets` / `discover_stats` transitions of
//! Figure 5) and the OpenFlow-specific search strategies of Section 4.
//!
//! The crate is organised as:
//!
//! * [`scenario`] — what to check: topology, controller application, host
//!   models, how clients choose packets (scripted or symbolically
//!   discovered), and the checker configuration (strategy, bounds, state
//!   storage, switch-model options).
//! * [`faults`] — the [`faults::FaultPlan`]: which faults (channel drops /
//!   duplicates / reorders, switch crashes, controller failover, Byzantine
//!   OpenFlow mutations) the checker may inject, under a bounded budget.
//! * [`state`] — the [`state::SystemState`]: every component plus the FIFO
//!   channels between them, with a canonical 64-bit fingerprint.
//! * [`transition`] — the system transitions and their semantics.
//! * [`strategy`] — NICE-MC full search, NO-DELAY, FLOW-IR and UNUSUAL,
//!   plus the composable partial-order [`Reduction`](strategy::Reduction)
//!   layer.
//! * [`por`] — transition footprints and the static independence relation
//!   the reduction is built on.
//! * [`properties`] — the correctness-property library of Section 5.2 plus
//!   the trait for application-specific properties.
//! * [`checker`] — the depth-first search loop of Figure 5, violation
//!   traces, search statistics, and a random-walk simulation mode.
//! * [`explored`] — tiered explored-set storage behind the
//!   [`ExploredStore`] trait: packed in-memory tables, cold-shard spill to
//!   disk behind a bloom filter, and lossy SPIN-style bitstate hashing,
//!   selected with [`ExploredMode`].
//! * [`session`] — observable, cancellable check sessions: streamed
//!   [`CheckEvent`]s, [`CancelToken`]/deadline interruption, and the
//!   [`Outcome`] recorded on every report.
//! * [`trace`] — typed, replayable violation traces and the stable
//!   `nice-trace-v1` JSON schema.
//! * [`replay`] — deterministic step-by-step re-execution of a recorded
//!   trace ([`ModelChecker::replay`]).
//! * [`minimize`] — the counterexample debugging toolkit: ddmin trace
//!   minimization ([`ModelChecker::minimize`]) and first-unavoidable-step
//!   bisection ([`ModelChecker::bisect`]).
//! * [`timeline`] — an ASCII lane-per-component renderer for traces.
//! * [`jsonv`] — a strict, dependency-free JSON well-formedness validator
//!   shared by the CLI, the bench gate, and the `nice-dist-v1` wire
//!   protocol.
//! * [`shard`] — fingerprint-space sharding: [`shard::ShardedSearch`]
//!   explores only the states a shard owns and exports the rest as
//!   replayable frontier nodes, the substrate of the `nice-dist`
//!   coordinator/worker service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod explored;
pub mod faults;
pub mod jsonv;
pub mod minimize;
pub mod por;
pub mod properties;
pub mod replay;
pub mod scenario;
pub mod session;
pub mod shard;
pub mod state;
pub mod strategy;
pub mod testutil;
pub mod timeline;
pub mod trace;
pub mod transition;

pub use checker::{CheckReport, FaultStats, ModelChecker, SearchStats, Violation};
pub use explored::{ExploredConfig, ExploredMode, ExploredStats, ExploredStore};
pub use faults::{FailoverStaleness, FaultPlan};
pub use minimize::{BisectReport, MinimizeReport};
pub use por::{independent, Footprint};
pub use properties::{
    DirectPaths, Event, FlowAffinity, NoAbandonedPackets, NoBlackHoles, NoForgottenPackets,
    NoForwardingLoops, Property, StrictDirectPaths,
};
pub use replay::{ReplayOutcome, ReplayReport, ReplayViolation};
pub use scenario::{
    CheckerConfig, ReductionKind, Scenario, ScenarioBuilder, SchedulerKind, SendPolicy,
    StateStorage, StrategyKind,
};
pub use session::{
    CancelToken, CheckEvent, CheckObserver, CheckSession, InterruptReason, NoopObserver, Outcome,
};
pub use shard::{shard_of, FrontierExport, ShardSpec, ShardedSearch, StepOutcome};
pub use state::SystemState;
pub use strategy::{
    FlowIr, FullDfs, NoDelay, NoReduction, PorReduction, Reduction, ReductionChoice,
    SearchStrategy, Unusual,
};
pub use timeline::{render_timeline, Timeline};
pub use trace::{Trace, TraceEngine, TraceStep, TRACE_SCHEMA};
pub use transition::Transition;
