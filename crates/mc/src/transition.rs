//! System transitions: what can happen in a state and what happens when it
//! does.
//!
//! The transitions mirror Section 2.2 and Figure 5: host `send` / `receive` /
//! `move`, the switch `process_pkt` and `process_of` transitions, controller
//! handler executions, and the special `discover_packets` / `discover_stats`
//! transitions that run the concolic engine to uncover new relevant inputs.

use crate::faults::FailoverStaleness;
use crate::properties::Event;
use crate::scenario::{CheckerConfig, Scenario, SendPolicy};
use crate::state::SystemState;
use nice_controller::{ControllerRuntime, PacketInContext};
use nice_openflow::{
    BufferId, ChannelFault, ForwardingDecision, HostId, Location, OfMessage, OfMutation, Packet,
    PacketId, PortId, PortStatsEntry, SwitchId, SwitchOutput,
};
use nice_sym::{ConcreteEnv, PathExplorer, Solver, SymPacket, SymStats};
use std::collections::BTreeMap;
use std::fmt;

/// A single system transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// A host injects a packet (one of its scripted or discovered packets).
    HostSend {
        /// The sending host.
        host: HostId,
        /// The packet to inject (its provenance id is reassigned on
        /// execution).
        packet: Packet,
    },
    /// A host consumes the packet at the head of its inbox.
    HostReceive {
        /// The receiving host.
        host: HostId,
    },
    /// A mobile host relocates.
    HostMove {
        /// The moving host.
        host: HostId,
        /// Its new attachment point.
        to: Location,
    },
    /// A switch processes the packet at the head of every busy ingress
    /// channel (the paper's coarse `process_pkt` transition).
    ProcessPacket {
        /// The switch.
        switch: SwitchId,
    },
    /// Fine-grained variant: the switch processes only the head packet of a
    /// single ingress channel (used by the generic-model-checker baseline).
    ProcessPacketOn {
        /// The switch.
        switch: SwitchId,
        /// The ingress port to service.
        port: PortId,
    },
    /// A switch processes the next OpenFlow message from the controller
    /// (`process_of`).
    ProcessOf {
        /// The switch.
        switch: SwitchId,
    },
    /// The controller handles the next message from a switch (one atomic
    /// handler execution).
    ControllerHandle {
        /// The switch whose channel is serviced.
        switch: SwitchId,
    },
    /// Symbolically execute the `packet_in` handler to discover the relevant
    /// packets a host can send in the current controller state.
    DiscoverPackets {
        /// The client host.
        host: HostId,
    },
    /// Symbolically execute the statistics handler to discover relevant
    /// statistics replies.
    DiscoverStats {
        /// The switch whose statistics are awaited.
        switch: SwitchId,
    },
    /// Deliver one discovered statistics reply to the controller
    /// (`process_stats` with a symbolic-execution-derived input).
    InjectStats {
        /// The switch the statistics describe.
        switch: SwitchId,
        /// The concrete statistics values.
        stats: Vec<PortStatsEntry>,
    },
    /// A rule with a timeout expires at a switch.
    ExpireRule {
        /// The switch.
        switch: SwitchId,
        /// The canonical index of the expiring rule.
        rule_index: usize,
    },
    /// Inject a channel fault (drop / duplicate / reorder the head, or fail
    /// the link) on a fault-enabled ingress channel. Consumes one unit of
    /// the fault budget.
    ChannelFault {
        /// The switch owning the ingress channel.
        switch: SwitchId,
        /// The ingress port.
        port: PortId,
        /// The fault to apply.
        fault: ChannelFault,
    },
    /// A switch crashes: flow table and buffers wiped, in-flight channels
    /// lost, control channel down until a reconnect. Consumes one unit of
    /// the fault budget.
    SwitchCrash {
        /// The crashing switch.
        switch: SwitchId,
    },
    /// A crashed switch reconnects and re-handshakes with the controller
    /// (queues its `switch_join`). Recovery, not a fault: budget-free.
    SwitchReconnect {
        /// The reconnecting switch.
        switch: SwitchId,
    },
    /// The controller fails over to a standby runtime whose staleness is
    /// set by the scenario's fault plan. Consumes one unit of the fault
    /// budget.
    ControllerFailover,
    /// Byzantine mutation of the OpenFlow message at the head of a
    /// controller→switch channel, before the switch processes it. Consumes
    /// one unit of the fault budget.
    MutateOfHead {
        /// The switch whose inbound control channel is corrupted.
        switch: SwitchId,
        /// The mutation applied to the head message.
        mutation: OfMutation,
    },
}

impl Transition {
    /// A short label naming the transition kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Transition::HostSend { .. } => "host_send",
            Transition::HostReceive { .. } => "host_receive",
            Transition::HostMove { .. } => "host_move",
            Transition::ProcessPacket { .. } => "process_pkt",
            Transition::ProcessPacketOn { .. } => "process_pkt_on",
            Transition::ProcessOf { .. } => "process_of",
            Transition::ControllerHandle { .. } => "ctrl_handle",
            Transition::DiscoverPackets { .. } => "discover_packets",
            Transition::DiscoverStats { .. } => "discover_stats",
            Transition::InjectStats { .. } => "process_stats",
            Transition::ExpireRule { .. } => "expire_rule",
            Transition::ChannelFault { .. } => "channel_fault",
            Transition::SwitchCrash { .. } => "switch_crash",
            Transition::SwitchReconnect { .. } => "switch_reconnect",
            Transition::ControllerFailover => "ctrl_failover",
            Transition::MutateOfHead { .. } => "mutate_of",
        }
    }

    /// Index of the per-kind injected-fault counter this transition bumps
    /// (see [`FaultStats`](crate::checker::FaultStats)), or `None` for
    /// ordinary transitions.
    pub fn fault_counter_index(&self) -> Option<usize> {
        match self {
            Transition::ChannelFault { fault, .. } => Some(match fault {
                ChannelFault::DropHead => 0,
                ChannelFault::DuplicateHead => 1,
                ChannelFault::ReorderHead => 2,
                ChannelFault::FailLink => 3,
            }),
            Transition::SwitchCrash { .. } => Some(4),
            Transition::SwitchReconnect { .. } => Some(5),
            Transition::ControllerFailover => Some(6),
            Transition::MutateOfHead { .. } => Some(7),
            _ => None,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transition::HostSend { host, packet } => write!(f, "{host} send {packet}"),
            Transition::HostReceive { host } => write!(f, "{host} receive"),
            Transition::HostMove { host, to } => write!(f, "{host} move to {to}"),
            Transition::ProcessPacket { switch } => write!(f, "{switch} process_pkt"),
            Transition::ProcessPacketOn { switch, port } => {
                write!(f, "{switch} process_pkt on {port}")
            }
            Transition::ProcessOf { switch } => write!(f, "{switch} process_of"),
            Transition::ControllerHandle { switch } => write!(f, "ctrl handle msg from {switch}"),
            Transition::DiscoverPackets { host } => write!(f, "discover_packets({host})"),
            Transition::DiscoverStats { switch } => write!(f, "discover_stats({switch})"),
            Transition::InjectStats { switch, stats } => {
                write!(f, "process_stats({switch}, {} ports)", stats.len())
            }
            Transition::ExpireRule { switch, rule_index } => {
                write!(f, "expire rule #{rule_index} at {switch}")
            }
            Transition::ChannelFault {
                switch,
                port,
                fault,
            } => write!(f, "inject {fault:?} on {switch}:{port}"),
            Transition::SwitchCrash { switch } => write!(f, "{switch} crash"),
            Transition::SwitchReconnect { switch } => write!(f, "{switch} reconnect"),
            Transition::ControllerFailover => write!(f, "ctrl failover"),
            Transition::MutateOfHead { switch, mutation } => {
                write!(f, "mutate of-head towards {switch} ({mutation})")
            }
        }
    }
}

/// Cross-worker discovery cache: the lock-protected backing store the
/// parallel search threads publish symbolic-execution results to, so a
/// controller state explored by one worker is not re-explored by another.
/// Locked only on local-memo misses and after fresh discoveries — never on
/// the per-transition hot path.
#[derive(Debug, Default)]
pub struct SharedDiscoveryCache {
    packets: std::sync::Mutex<BTreeMap<(u64, SwitchId, PortId), Vec<Packet>>>,
    #[allow(clippy::type_complexity)]
    stats: std::sync::Mutex<BTreeMap<(u64, SwitchId), Vec<Vec<PortStatsEntry>>>>,
}

/// Mutable context shared across transition executions within one search:
/// memoises the results of symbolic execution so that re-visiting the same
/// controller state on a different search branch does not re-run the
/// concolic engine.
///
/// Each search (or each worker of a parallel search) owns one memo; workers
/// additionally attach a [`SharedDiscoveryCache`] so discoveries propagate
/// across threads. Two workers racing on the same key can still both run
/// the concolic engine once (the race is benign — both compute the same
/// deterministic result), so `symbolic_executions` totals are
/// schedule-dependent under `workers > 1`.
#[derive(Debug, Default)]
pub struct DiscoveryMemo {
    packets: BTreeMap<(u64, SwitchId, PortId), Vec<Packet>>,
    stats: BTreeMap<(u64, SwitchId), Vec<Vec<PortStatsEntry>>>,
    shared: Option<std::sync::Arc<SharedDiscoveryCache>>,
    /// Number of concolic explorations actually executed (cache misses).
    pub symbolic_executions: u64,
}

impl DiscoveryMemo {
    /// A memo backed by a cross-worker cache.
    pub fn with_shared(shared: std::sync::Arc<SharedDiscoveryCache>) -> Self {
        DiscoveryMemo {
            shared: Some(shared),
            ..DiscoveryMemo::default()
        }
    }

    /// Looks `key` up in the shared cache (if any), copying a hit into the
    /// local memo so subsequent lookups stay lock-free.
    fn shared_packets(&mut self, key: (u64, SwitchId, PortId)) -> Option<Vec<Packet>> {
        let shared = self.shared.as_ref()?;
        let cached = shared
            .packets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .cloned()?;
        self.packets.insert(key, cached.clone());
        Some(cached)
    }

    /// Publishes a fresh packet discovery to the shared cache (if any).
    fn publish_packets(&self, key: (u64, SwitchId, PortId), packets: &[Packet]) {
        if let Some(shared) = &self.shared {
            shared
                .packets
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(key)
                .or_insert_with(|| packets.to_vec());
        }
    }

    /// Looks `key` up in the shared statistics cache (if any).
    fn shared_stats(&mut self, key: (u64, SwitchId)) -> Option<Vec<Vec<PortStatsEntry>>> {
        let shared = self.shared.as_ref()?;
        let cached = shared
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .cloned()?;
        self.stats.insert(key, cached.clone());
        Some(cached)
    }

    /// Publishes a fresh statistics discovery to the shared cache (if any).
    fn publish_stats(&self, key: (u64, SwitchId), replies: &[Vec<PortStatsEntry>]) {
        if let Some(shared) = &self.shared {
            shared
                .stats
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(key)
                .or_insert_with(|| replies.to_vec());
        }
    }
}

/// Computes the transitions enabled in `state`.
pub fn enabled_transitions(
    state: &SystemState,
    scenario: &Scenario,
    config: &CheckerConfig,
) -> Vec<Transition> {
    let mut out = Vec::new();
    let ctrl_fp = state.controller_fingerprint();

    // Host transitions.
    for (host_id, host) in state.hosts() {
        if host.can_send() {
            match &scenario.send_policy {
                SendPolicy::Scripted(scripts) => {
                    if let Some(script) = scripts.get(&host_id) {
                        let next = host.sent_count() as usize;
                        if next < script.len() {
                            out.push(Transition::HostSend {
                                host: host_id,
                                packet: script[next],
                            });
                        }
                    }
                }
                SendPolicy::Discover => match state.relevant_packets(host_id, ctrl_fp) {
                    Some(packets) => {
                        for packet in packets {
                            out.push(Transition::HostSend {
                                host: host_id,
                                packet: *packet,
                            });
                        }
                    }
                    None => out.push(Transition::DiscoverPackets { host: host_id }),
                },
            }
        }
        if state.host_inbox(host_id).is_some_and(|ch| !ch.is_empty()) {
            out.push(Transition::HostReceive { host: host_id });
        }
        for target in host.move_targets() {
            out.push(Transition::HostMove {
                host: host_id,
                to: target,
            });
        }
    }

    // Switch and controller transitions.
    for (switch_id, switch) in state.switches() {
        let busy_ports = state.busy_ingress_ports(switch_id);
        if !busy_ports.is_empty() {
            if config.coarse_packet_processing {
                out.push(Transition::ProcessPacket { switch: switch_id });
            } else {
                for port in busy_ports {
                    out.push(Transition::ProcessPacketOn {
                        switch: switch_id,
                        port,
                    });
                }
            }
        }
        if state.ctrl_to_sw(switch_id).is_some_and(|ch| !ch.is_empty()) {
            out.push(Transition::ProcessOf { switch: switch_id });
        }
        if state.sw_to_ctrl(switch_id).is_some_and(|ch| !ch.is_empty()) {
            out.push(Transition::ControllerHandle { switch: switch_id });
        }
        if config.explore_rule_expiry {
            for rule_index in switch.expirable_rules() {
                out.push(Transition::ExpireRule {
                    switch: switch_id,
                    rule_index,
                });
            }
        }
        if state.controller().uses_stats() && state.stats_pending(switch_id) {
            match state.discovered_stats(switch_id, ctrl_fp) {
                Some(replies) => {
                    for stats in replies {
                        out.push(Transition::InjectStats {
                            switch: switch_id,
                            stats: stats.clone(),
                        });
                    }
                }
                None => out.push(Transition::DiscoverStats { switch: switch_id }),
            }
        }
    }

    // Fault transitions: generated only when the checker opts in and the
    // scenario plans at least one fault class. With faults off this block
    // costs nothing, keeping the search bit-identical to a fault-unaware
    // checker.
    let plan = &scenario.fault_plan;
    if config.inject_faults && plan.any_enabled() {
        let budget_left = state.fault_budget() > 0;
        for (switch_id, switch) in state.switches() {
            if state.is_crashed(switch_id) {
                // A crashed switch can only come back; recovery is
                // budget-free so a crash can never strand the system.
                out.push(Transition::SwitchReconnect { switch: switch_id });
                continue;
            }
            if !budget_left {
                continue;
            }
            if plan.switch_crash {
                out.push(Transition::SwitchCrash { switch: switch_id });
            }
            if plan.channel.any_enabled() {
                // The per-channel fault models were seeded from the plan at
                // state construction, so out-of-scope channels report none.
                for &port in &switch.ports {
                    let faults = state
                        .ingress(switch_id, port)
                        .map(|ch| ch.enabled_faults())
                        .unwrap_or_default();
                    for fault in faults {
                        out.push(Transition::ChannelFault {
                            switch: switch_id,
                            port,
                            fault,
                        });
                    }
                }
            }
            if plan.of_mutations {
                if let Some(head) = state.ctrl_to_sw(switch_id).and_then(|ch| ch.peek()) {
                    for mutation in head.mutations() {
                        out.push(Transition::MutateOfHead {
                            switch: switch_id,
                            mutation,
                        });
                    }
                }
            }
        }
        if budget_left && plan.failover.is_some() {
            out.push(Transition::ControllerFailover);
        }
    }

    out
}

/// Executes one transition, mutating `state` and appending the observable
/// events to `events`.
pub fn execute(
    state: &mut SystemState,
    transition: &Transition,
    scenario: &Scenario,
    config: &CheckerConfig,
    memo: &mut DiscoveryMemo,
    events: &mut Vec<Event>,
) {
    match transition {
        Transition::HostSend { host, packet } => {
            let id = state.alloc_packet_id();
            let mut packet = *packet;
            packet.id = PacketId(id);
            let location = {
                let h = state.host_mut(*host).expect("unknown host in transition");
                h.note_sent(&packet);
                h.location()
            };
            events.push(Event::PacketInjected {
                host: *host,
                packet,
            });
            state.enqueue_ingress(location.switch, location.port, packet);
        }

        Transition::HostReceive { host } => {
            let packet = state
                .host_inbox_mut(*host)
                .and_then(|ch| ch.pop())
                .expect("host_receive with empty inbox");
            events.push(Event::PacketDeliveredToHost {
                host: *host,
                packet,
            });
            // The host model assigns placeholder reply ids; real provenance
            // ids are allocated from the system state below (the borrow
            // checker will not let the host borrow overlap the allocator).
            let replies = {
                let h = state.host_mut(*host).expect("unknown host");
                let mut placeholder = 0u64;
                h.receive(&packet, &mut || {
                    placeholder += 1;
                    placeholder
                })
            };
            let location = state.host(*host).expect("unknown host").location();
            for mut reply in replies {
                let id = state.alloc_packet_id();
                reply.id = PacketId(id);
                events.push(Event::PacketInjected {
                    host: *host,
                    packet: reply,
                });
                state.enqueue_ingress(location.switch, location.port, reply);
            }
        }

        Transition::HostMove { host, to } => {
            let from = state.host(*host).expect("unknown host").location();
            state.host_mut(*host).expect("unknown host").apply_move(*to);
            events.push(Event::HostMoved {
                host: *host,
                from,
                to: *to,
            });
        }

        Transition::ProcessPacket { switch } => {
            let ports = state.busy_ingress_ports(*switch);
            for port in ports {
                process_one_ingress(state, *switch, port, events);
            }
        }

        Transition::ProcessPacketOn { switch, port } => {
            process_one_ingress(state, *switch, *port, events);
        }

        Transition::ProcessOf { switch } => {
            let msg = state
                .ctrl_to_sw_mut(*switch)
                .and_then(|ch| ch.pop())
                .expect("process_of with empty channel");
            if let OfMessage::FlowMod {
                command,
                pattern,
                priority,
                ..
            } = &msg
            {
                match command {
                    nice_openflow::FlowModCommand::Add => events.push(Event::RuleInstalled {
                        switch: *switch,
                        pattern: *pattern,
                        priority: *priority,
                    }),
                    _ => events.push(Event::RuleDeleted {
                        switch: *switch,
                        pattern: *pattern,
                    }),
                }
            }
            let output = state
                .switch_mut(*switch)
                .expect("unknown switch")
                .apply_of_message(msg);
            handle_switch_output(state, *switch, output, DecisionOrigin::Controller, events);
        }

        Transition::ControllerHandle { switch } => {
            let msg = state
                .sw_to_ctrl_mut(*switch)
                .and_then(|ch| ch.pop())
                .expect("ctrl_handle with empty channel");
            match &msg {
                OfMessage::PacketIn {
                    in_port, packet, ..
                } => {
                    events.push(Event::ControllerHandledPacketIn {
                        switch: *switch,
                        in_port: *in_port,
                        packet: *packet,
                    });
                }
                OfMessage::PortStatsReply { .. } | OfMessage::FlowStatsReply { .. } => {
                    state.clear_stats_pending(*switch);
                    events.push(Event::StatsDeliveredToController { switch: *switch });
                }
                _ => {}
            }
            let produced = state.controller_mut().handle_message(&msg);
            for (target, m) in produced {
                state.enqueue_to_switch(target, m);
            }
        }

        Transition::DiscoverPackets { host } => {
            discover_packets(state, *host, scenario, config, memo);
        }

        Transition::DiscoverStats { switch } => {
            discover_stats(state, *switch, scenario, config, memo);
        }

        Transition::InjectStats { switch, stats } => {
            state.clear_stats_pending(*switch);
            events.push(Event::StatsDeliveredToController { switch: *switch });
            let sym = SymStats::from_concrete(stats);
            let mut env = ConcreteEnv::new();
            let produced = state.controller_mut().run_stats_in(&mut env, *switch, &sym);
            for (target, m) in produced {
                state.enqueue_to_switch(target, m);
            }
        }

        Transition::ExpireRule { switch, rule_index } => {
            let expired = state
                .switch_mut(*switch)
                .expect("unknown switch")
                .expire_rule(*rule_index);
            if let Some(rule) = expired {
                events.push(Event::RuleDeleted {
                    switch: *switch,
                    pattern: rule.pattern,
                });
            }
        }

        Transition::ChannelFault {
            switch,
            port,
            fault,
        } => {
            state.consume_fault_budget();
            state
                .ingress_mut(*switch, *port)
                .expect("unknown ingress channel")
                .apply_fault(*fault);
        }

        Transition::SwitchCrash { switch } => {
            state.consume_fault_budget();
            state.crash_switch(*switch);
        }

        Transition::SwitchReconnect { switch } => {
            state.reconnect_switch(*switch);
        }

        Transition::ControllerFailover => {
            state.consume_fault_budget();
            let staleness = scenario
                .fault_plan
                .failover
                .expect("failover scheduled without a plan");
            let mut standby = ControllerRuntime::new(scenario.app.clone_app());
            let live: Vec<(SwitchId, OfMessage)> = state
                .switches()
                .filter(|(id, _)| !state.is_crashed(*id))
                .map(|(id, sw)| (id, sw.join_message()))
                .collect();
            match staleness {
                FailoverStaleness::Warm => {
                    // The standby's switch registry is warm: joins are
                    // replayed synchronously before it takes over.
                    let mut produced = Vec::new();
                    for (_, join) in &live {
                        produced.extend(standby.handle_message(join));
                    }
                    state.replace_controller(standby);
                    for (target, m) in produced {
                        state.enqueue_to_switch(target, m);
                    }
                }
                FailoverStaleness::Cold => {
                    // Cold standby: switches re-handshake asynchronously,
                    // so the checker explores every interleaving of the
                    // joins with in-flight traffic.
                    state.replace_controller(standby);
                    for (id, join) in live {
                        state.enqueue_to_controller(id, join);
                    }
                }
            }
        }

        Transition::MutateOfHead { switch, mutation } => {
            state.consume_fault_budget();
            state
                .ctrl_to_sw_mut(*switch)
                .and_then(|ch| ch.peek_mut())
                .expect("mutate_of with empty channel")
                .apply_mutation(*mutation);
        }
    }
}

/// Drains the control plane to quiescence within the current transition —
/// the NO-DELAY strategy's "lock step" semantics (Section 4).
pub fn drain_control_plane(
    state: &mut SystemState,
    scenario: &Scenario,
    config: &CheckerConfig,
    memo: &mut DiscoveryMemo,
    events: &mut Vec<Event>,
) {
    // Bounded defensively: a controller that endlessly sends itself messages
    // would otherwise spin forever. The bound is far above anything the
    // modelled applications produce.
    for _ in 0..10_000 {
        let mut progressed = false;
        let switches: Vec<SwitchId> = state.switches().map(|(id, _)| id).collect();
        for switch in switches {
            if state.sw_to_ctrl(switch).is_some_and(|ch| !ch.is_empty()) {
                execute(
                    state,
                    &Transition::ControllerHandle { switch },
                    scenario,
                    config,
                    memo,
                    events,
                );
                progressed = true;
            }
            if state.ctrl_to_sw(switch).is_some_and(|ch| !ch.is_empty()) {
                execute(
                    state,
                    &Transition::ProcessOf { switch },
                    scenario,
                    config,
                    memo,
                    events,
                );
                progressed = true;
            }
        }
        if !progressed {
            return;
        }
    }
    panic!("control plane failed to quiesce under NO-DELAY");
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecisionOrigin {
    /// The packet was being processed in the data plane (flow-table rules).
    DataPlane,
    /// The packet was released on explicit controller instruction
    /// (`packet_out`).
    Controller,
}

fn process_one_ingress(
    state: &mut SystemState,
    switch: SwitchId,
    port: PortId,
    events: &mut Vec<Event>,
) {
    let packet = match state.ingress_mut(switch, port).and_then(|ch| ch.pop()) {
        Some(p) => p,
        None => return,
    };
    events.push(Event::PacketArrivedAtSwitch {
        switch,
        port,
        packet,
    });
    let overflow_before = state
        .switch(switch)
        .map(|s| s.buffer_overflow_drops)
        .unwrap_or(0);
    let output = state
        .switch_mut(switch)
        .expect("unknown switch")
        .process_packet(packet, port);
    let overflow_after = state
        .switch(switch)
        .map(|s| s.buffer_overflow_drops)
        .unwrap_or(0);
    if overflow_after > overflow_before {
        events.push(Event::PacketBufferOverflow { switch, packet });
    }
    handle_switch_output(state, switch, output, DecisionOrigin::DataPlane, events);
}

fn handle_switch_output(
    state: &mut SystemState,
    switch: SwitchId,
    output: SwitchOutput,
    origin: DecisionOrigin,
    events: &mut Vec<Event>,
) {
    for msg in output.to_controller {
        state.enqueue_to_controller(switch, msg);
    }
    for decision in output.decisions {
        match decision {
            ForwardingDecision::Forward { port, packet } => {
                deliver(state, switch, port, packet, events);
            }
            ForwardingDecision::FloodExcept { in_port, packet } => {
                let ports: Vec<PortId> = state
                    .switch(switch)
                    .map(|s| s.ports.clone())
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&p| p != in_port)
                    .filter(|&p| has_receiver(state, switch, p))
                    .collect();
                events.push(Event::PacketFlooded {
                    switch,
                    copies: ports.len(),
                    packet,
                });
                for port in ports {
                    deliver(state, switch, port, packet, events);
                }
            }
            ForwardingDecision::SentToController { packet, reason, .. } => {
                // `reason` is carried in the PacketIn message already queued.
                let _ = reason;
                events.push(Event::PacketSentToController { switch, packet });
            }
            ForwardingDecision::Dropped { packet } => match origin {
                DecisionOrigin::DataPlane => {
                    // Buffer-overflow drops are reported separately by the
                    // caller; a Dropped decision from the data plane here is a
                    // drop action (or empty action list) in an installed rule.
                    events.push(Event::PacketDroppedByRule { switch, packet });
                }
                DecisionOrigin::Controller => {
                    events.push(Event::PacketDroppedByController { switch, packet });
                }
            },
        }
    }
}

fn has_receiver(state: &SystemState, switch: SwitchId, port: PortId) -> bool {
    state.host_at(switch, port).is_some() || state.topology().switch_peer(switch, port).is_some()
}

fn deliver(
    state: &mut SystemState,
    switch: SwitchId,
    port: PortId,
    packet: Packet,
    events: &mut Vec<Event>,
) {
    if let Some(host) = state.host_at(switch, port) {
        state.enqueue_host(host, packet);
    } else if let Some(peer) = state.topology().switch_peer(switch, port) {
        state.enqueue_ingress(peer.switch, peer.port, packet);
    } else {
        events.push(Event::PacketLost {
            switch,
            port,
            packet,
        });
    }
}

fn discover_packets(
    state: &mut SystemState,
    host: HostId,
    scenario: &Scenario,
    config: &CheckerConfig,
    memo: &mut DiscoveryMemo,
) {
    let ctrl_fp = state.controller_fingerprint();
    let location = state.host(host).expect("unknown host").location();
    let key = (ctrl_fp, location.switch, location.port);

    if let Some(cached) = memo.packets.get(&key) {
        state.set_relevant_packets(host, ctrl_fp, cached.clone());
        return;
    }
    if let Some(cached) = memo.shared_packets(key) {
        state.set_relevant_packets(host, ctrl_fp, cached);
        return;
    }

    let domains = scenario.effective_packet_domains();
    let mut solver = Solver::new();
    let (sym_packet, vars) = SymPacket::symbolic(&mut solver, &domains);
    let ctx = PacketInContext {
        switch: location.switch,
        in_port: location.port,
        buffer_id: BufferId(0),
        reason: nice_openflow::PacketInReason::NoMatch,
    };
    let snapshot = state.controller().clone();
    let explorer = PathExplorer::new(config.explore);
    let outcome = explorer.explore(&mut solver, |env| {
        let mut controller = snapshot.clone();
        let _ = controller.run_packet_in_symbolic(env, ctx, &sym_packet);
    });
    memo.symbolic_executions += 1;

    let mut packets: Vec<Packet> = outcome
        .paths
        .iter()
        .map(|path| vars.packet_from(&path.assignment, 0))
        .collect();
    // Two different paths can concretise to the same representative if the
    // distinguishing branch did not involve packet fields; keep one copy.
    packets.sort_by_key(|p| {
        (
            p.src_mac.value(),
            p.dst_mac.value(),
            p.eth_type.value(),
            p.src_ip.value(),
            p.dst_ip.value(),
            p.nw_proto.value(),
            p.src_port,
            p.dst_port,
            p.tcp_flags.0,
            p.arp_op,
            p.payload,
        )
    });
    packets.dedup_by(|a, b| {
        let mut a2 = *a;
        let mut b2 = *b;
        a2.id = PacketId(0);
        b2.id = PacketId(0);
        a2 == b2
    });

    memo.packets.insert(key, packets.clone());
    memo.publish_packets(key, &packets);
    state.set_relevant_packets(host, ctrl_fp, packets);
}

fn discover_stats(
    state: &mut SystemState,
    switch: SwitchId,
    scenario: &Scenario,
    config: &CheckerConfig,
    memo: &mut DiscoveryMemo,
) {
    let ctrl_fp = state.controller_fingerprint();
    let key = (ctrl_fp, switch);
    if let Some(cached) = memo.stats.get(&key) {
        state.set_discovered_stats(switch, ctrl_fp, cached.clone());
        return;
    }
    if let Some(cached) = memo.shared_stats(key) {
        state.set_discovered_stats(switch, ctrl_fp, cached);
        return;
    }

    let ports: Vec<PortId> = state
        .switch(switch)
        .map(|s| s.ports.clone())
        .unwrap_or_default();
    let mut solver = Solver::new();
    let sym_stats = SymStats::symbolic(&mut solver, &ports, &scenario.stats_domains);
    let snapshot = state.controller().clone();
    let explorer = PathExplorer::new(config.explore);
    let outcome = explorer.explore(&mut solver, |env| {
        let mut controller = snapshot.clone();
        let _ = controller.run_stats_in(env, switch, &sym_stats);
    });
    memo.symbolic_executions += 1;

    let mut replies: Vec<Vec<PortStatsEntry>> = outcome
        .paths
        .iter()
        .map(|path| sym_stats.concretize(&path.assignment))
        .collect();
    let reply_key = |reply: &Vec<PortStatsEntry>| -> Vec<(u16, u64, u64, u64, u64)> {
        reply
            .iter()
            .map(|e| {
                (
                    e.port.value(),
                    e.rx_packets,
                    e.tx_packets,
                    e.rx_bytes,
                    e.tx_bytes,
                )
            })
            .collect()
    };
    replies.sort_by_key(|a| reply_key(a));
    replies.dedup();

    memo.stats.insert(key, replies.clone());
    memo.publish_stats(key, &replies);
    state.set_discovered_stats(switch, ctrl_fp, replies);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use nice_openflow::MacAddr;

    fn memo() -> DiscoveryMemo {
        DiscoveryMemo::default()
    }

    #[test]
    fn initial_hub_scenario_enables_only_host_sends() {
        let scenario = testutil::hub_ping_scenario(2);
        let config = CheckerConfig::default();
        let state = SystemState::initial(&scenario);
        let enabled = enabled_transitions(&state, &scenario, &config);
        assert_eq!(
            enabled.len(),
            1,
            "only host 1's first ping is enabled: {enabled:?}"
        );
        assert!(matches!(
            enabled[0],
            Transition::HostSend {
                host: HostId(1),
                ..
            }
        ));
    }

    #[test]
    fn ping_travels_through_the_hub_network() {
        let scenario = testutil::hub_ping_scenario(1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        let mut m = memo();
        let mut events = Vec::new();

        // Drive the single enabled transition until the system quiesces; the
        // hub floods, so the ping reaches host B and the echo reaches host A.
        let mut steps = 0;
        loop {
            let enabled = enabled_transitions(&state, &scenario, &config);
            if enabled.is_empty() {
                break;
            }
            execute(
                &mut state,
                &enabled[0],
                &scenario,
                &config,
                &mut m,
                &mut events,
            );
            steps += 1;
            assert!(steps < 200, "hub ping-pong failed to quiesce");
        }

        let delivered_to_b = events.iter().any(|e| {
            matches!(
                e,
                Event::PacketDeliveredToHost {
                    host: HostId(2),
                    ..
                }
            )
        });
        let delivered_to_a = events.iter().any(|e| {
            matches!(
                e,
                Event::PacketDeliveredToHost {
                    host: HostId(1),
                    ..
                }
            )
        });
        assert!(delivered_to_b, "ping must reach host B");
        assert!(delivered_to_a, "echo must reach host A");
        // The hub never installs rules, so both the ping and the echo visited
        // the controller.
        let controller_hits = events
            .iter()
            .filter(|e| matches!(e, Event::ControllerHandledPacketIn { .. }))
            .count();
        assert!(
            controller_hits >= 2,
            "expected at least two packet_ins, saw {controller_hits}"
        );
        // No packets were lost and no buffers left over.
        assert!(!events.iter().any(|e| matches!(e, Event::PacketLost { .. })));
        assert_eq!(state.total_buffered_packets(), 0);
        assert_eq!(state.total_queued_messages(), 0);
    }

    #[test]
    fn forgetful_app_leaves_buffered_packets() {
        let scenario = testutil::ping_scenario_with_app(Box::new(testutil::ForgetfulApp), 1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        let mut m = memo();
        let mut events = Vec::new();
        loop {
            let enabled = enabled_transitions(&state, &scenario, &config);
            if enabled.is_empty() {
                break;
            }
            execute(
                &mut state,
                &enabled[0],
                &scenario,
                &config,
                &mut m,
                &mut events,
            );
        }
        assert!(
            state.total_buffered_packets() > 0,
            "the forgetful app must forget the packet"
        );
    }

    #[test]
    fn coarse_vs_fine_packet_processing() {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        let pkt1 = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let pkt2 = Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        state.enqueue_ingress(SwitchId(1), PortId(1), pkt1);
        state.enqueue_ingress(SwitchId(1), PortId(2), pkt2);

        let coarse = CheckerConfig::default();
        let enabled = enabled_transitions(&state, &scenario, &coarse);
        let pkt_transitions: Vec<_> = enabled
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    Transition::ProcessPacket { .. } | Transition::ProcessPacketOn { .. }
                )
            })
            .collect();
        assert_eq!(pkt_transitions.len(), 1, "coarse mode merges busy ports");

        let fine = CheckerConfig::generic_baseline();
        let enabled = enabled_transitions(&state, &scenario, &fine);
        let pkt_transitions: Vec<_> = enabled
            .iter()
            .filter(|t| matches!(t, Transition::ProcessPacketOn { .. }))
            .collect();
        assert_eq!(
            pkt_transitions.len(),
            2,
            "fine mode exposes one transition per port"
        );
    }

    #[test]
    fn coarse_process_packet_services_every_busy_port() {
        let scenario = testutil::hub_ping_scenario(1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        let mut m = memo();
        let mut events = Vec::new();
        let pkt1 = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let pkt2 = Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        state.enqueue_ingress(SwitchId(1), PortId(1), pkt1);
        state.enqueue_ingress(SwitchId(1), PortId(2), pkt2);
        execute(
            &mut state,
            &Transition::ProcessPacket {
                switch: SwitchId(1),
            },
            &scenario,
            &config,
            &mut m,
            &mut events,
        );
        assert!(state.busy_ingress_ports(SwitchId(1)).is_empty());
        let arrivals = events
            .iter()
            .filter(|e| matches!(e, Event::PacketArrivedAtSwitch { .. }))
            .count();
        assert_eq!(arrivals, 2);
    }

    #[test]
    fn discover_packets_populates_relevant_packets() {
        let scenario = testutil::discovery_scenario(Box::new(testutil::HubApp::default()), 1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        let mut m = memo();
        let mut events = Vec::new();

        let enabled = enabled_transitions(&state, &scenario, &config);
        assert!(enabled
            .iter()
            .any(|t| matches!(t, Transition::DiscoverPackets { host: HostId(1) })));
        execute(
            &mut state,
            &Transition::DiscoverPackets { host: HostId(1) },
            &scenario,
            &config,
            &mut m,
            &mut events,
        );
        let ctrl_fp = state.controller_fingerprint();
        let packets = state
            .relevant_packets(HostId(1), ctrl_fp)
            .expect("discovery ran");
        // The hub's handler has no data-dependent branches, so a single
        // equivalence class (one relevant packet) is expected.
        assert_eq!(packets.len(), 1);
        assert_eq!(m.symbolic_executions, 1);

        // After discovery the host's send transitions appear.
        let enabled = enabled_transitions(&state, &scenario, &config);
        assert!(enabled.iter().any(|t| matches!(
            t,
            Transition::HostSend {
                host: HostId(1),
                ..
            }
        )));

        // A second discovery for the same controller state hits the memo.
        execute(
            &mut state,
            &Transition::DiscoverPackets { host: HostId(1) },
            &scenario,
            &config,
            &mut m,
            &mut events,
        );
        assert_eq!(
            m.symbolic_executions, 1,
            "memoised discovery must not re-run"
        );
    }

    #[test]
    fn discovery_with_learning_app_finds_multiple_classes() {
        let scenario =
            testutil::discovery_scenario(Box::new(testutil::DstOnlyLearningApp::default()), 1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        let mut m = memo();
        let mut events = Vec::new();
        execute(
            &mut state,
            &Transition::DiscoverPackets { host: HostId(1) },
            &scenario,
            &config,
            &mut m,
            &mut events,
        );
        let ctrl_fp = state.controller_fingerprint();
        let packets = state.relevant_packets(HostId(1), ctrl_fp).unwrap();
        // The learning app branches on whether the destination is known
        // (it never is initially) and implicitly on src==dst via the map
        // overlay, so at least two classes must be discovered.
        assert!(
            packets.len() >= 2,
            "expected several equivalence classes, got {packets:?}"
        );
    }

    #[test]
    fn no_delay_drains_control_plane() {
        let scenario = testutil::hub_ping_scenario(1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        let mut m = memo();
        let mut events = Vec::new();

        // Send the ping and let switch 1 forward it to the controller.
        let enabled = enabled_transitions(&state, &scenario, &config);
        execute(
            &mut state,
            &enabled[0],
            &scenario,
            &config,
            &mut m,
            &mut events,
        );
        execute(
            &mut state,
            &Transition::ProcessPacket {
                switch: SwitchId(1),
            },
            &scenario,
            &config,
            &mut m,
            &mut events,
        );
        assert!(state.control_plane_busy());
        drain_control_plane(&mut state, &scenario, &config, &mut m, &mut events);
        assert!(!state.control_plane_busy());
        // The buffered packet was released (flooded) by the drained
        // packet_out.
        assert_eq!(state.total_buffered_packets(), 0);
    }

    #[test]
    fn transition_display_and_kinds() {
        let t = Transition::HostSend {
            host: HostId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
        };
        assert_eq!(t.kind(), "host_send");
        assert!(t.to_string().contains("send"));
        assert_eq!(
            Transition::ProcessOf {
                switch: SwitchId(1)
            }
            .kind(),
            "process_of"
        );
        assert_eq!(
            Transition::DiscoverPackets { host: HostId(1) }.kind(),
            "discover_packets"
        );
        assert_eq!(
            Transition::InjectStats {
                switch: SwitchId(1),
                stats: vec![]
            }
            .to_string(),
            "process_stats(s1, 0 ports)"
        );
    }
}
