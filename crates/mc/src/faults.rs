//! Fault injection: *what* can go wrong in a scenario.
//!
//! Section 2.2.2 of the paper gives packet channels an optionally-enabled
//! fault model; kimberlite's VOPR platform shows the production version of
//! the same idea — faults are first-class schedulable events, so the model
//! checker explores *when* a loss or crash lands, not just whether it can.
//!
//! A [`FaultPlan`] is attached to a [`Scenario`](crate::scenario::Scenario)
//! and describes which fault classes the checker may schedule:
//!
//! * **channel faults** — drop / duplicate / reorder / fail-link on the
//!   packet ingress channels, reusing the dormant
//!   [`FaultModel`](nice_openflow::FaultModel) machinery on
//!   [`FifoChannel`](nice_openflow::FifoChannel) so the two mechanisms
//!   cannot drift;
//! * **switch crashes** — a crash wipes the flow table, packet buffers and
//!   in-flight channels; a (budget-free) reconnect re-handshakes with the
//!   controller;
//! * **controller failover** — swap to a standby controller runtime with
//!   configurably stale state;
//! * **Byzantine OpenFlow mutations** — bounded mutations of the in-flight
//!   controller-to-switch message at the head of the channel, the
//!   `MessageMutator` pattern.
//!
//! Every injected fault (except the reconnect, which is recovery rather
//! than an adversarial move) consumes one unit of the plan's *budget*, so
//! the faulty state space stays bounded. The empty plan is free: no fault
//! transitions are generated and state fingerprints are bit-identical to a
//! fault-unaware checker.

use nice_openflow::{FaultModel, SwitchId};

/// How stale the standby controller is when a failover lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverStaleness {
    /// The standby starts from scratch: it has seen no switch joins. Live
    /// switches re-handshake *asynchronously* — a `switch_join` message is
    /// queued on each switch-to-controller channel, and the checker
    /// explores every interleaving of the joins with ordinary traffic.
    Cold,
    /// The standby has a warm registry: every live switch's join is
    /// replayed synchronously at failover time, but any application state
    /// learned from traffic (MAC tables, flow assignments) is lost.
    Warm,
}

/// Which fault classes the checker may inject into a scenario, and how
/// many faults it may inject in total along any single execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fault model applied to packet ingress channels (drop / duplicate /
    /// reorder / fail-link). [`FaultModel::RELIABLE`] disables channel
    /// faults entirely.
    pub channel: FaultModel,
    /// Which switches' ingress channels are fault-enabled. Empty means
    /// *all* switches (the common case).
    pub channel_switches: Vec<SwitchId>,
    /// Whether switches may crash (and subsequently reconnect).
    pub switch_crash: bool,
    /// Whether the controller may fail over to a standby runtime, and how
    /// stale that standby is. `None` disables failover.
    pub failover: Option<FailoverStaleness>,
    /// Whether the head of each controller-to-switch channel may be
    /// mutated before delivery (Byzantine OpenFlow mutations).
    pub of_mutations: bool,
    /// Maximum number of injected faults along any single execution path.
    /// A budget of zero disables all fault injection.
    pub budget: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, zero budget. Costs nothing — the checker
    /// generates no fault transitions and fingerprints are unchanged.
    pub fn none() -> Self {
        FaultPlan {
            channel: FaultModel::RELIABLE,
            channel_switches: Vec::new(),
            switch_crash: false,
            failover: None,
            of_mutations: false,
            budget: 0,
        }
    }

    /// A plan enabling every channel fault class ([`FaultModel::LOSSY`])
    /// on all ingress channels, with the given budget.
    pub fn lossy(budget: u32) -> Self {
        FaultPlan {
            channel: FaultModel::LOSSY,
            budget,
            ..FaultPlan::none()
        }
    }

    /// A plan enabling only message *duplication* on all ingress channels,
    /// with the given budget. Duplication never loses information, so it is
    /// the mildest channel fault: apps must merely be idempotent. Scenarios
    /// use it to give `--faults` runs redundant schedules without making
    /// loss-sensitive properties trivially violable.
    pub fn duplicates(budget: u32) -> Self {
        FaultPlan {
            channel: FaultModel {
                allow_duplicate: true,
                ..FaultModel::RELIABLE
            },
            budget,
            ..FaultPlan::none()
        }
    }

    /// A plan enabling switch crashes (and reconnects) with the given
    /// budget.
    pub fn crashes(budget: u32) -> Self {
        FaultPlan {
            switch_crash: true,
            budget,
            ..FaultPlan::none()
        }
    }

    /// A plan enabling controller failover with the given staleness and
    /// budget.
    pub fn failovers(staleness: FailoverStaleness, budget: u32) -> Self {
        FaultPlan {
            failover: Some(staleness),
            budget,
            ..FaultPlan::none()
        }
    }

    /// A plan enabling Byzantine mutations of in-flight OpenFlow messages
    /// with the given budget.
    pub fn of_mutations(budget: u32) -> Self {
        FaultPlan {
            of_mutations: true,
            budget,
            ..FaultPlan::none()
        }
    }

    /// Restricts channel faults to the ingress channels of the given
    /// switches (default: all switches).
    pub fn on_switches(mut self, switches: impl IntoIterator<Item = SwitchId>) -> Self {
        self.channel_switches = switches.into_iter().collect();
        self
    }

    /// Also enables switch crashes.
    pub fn with_switch_crash(mut self) -> Self {
        self.switch_crash = true;
        self
    }

    /// Also enables controller failover with the given staleness.
    pub fn with_failover(mut self, staleness: FailoverStaleness) -> Self {
        self.failover = Some(staleness);
        self
    }

    /// Also enables Byzantine OpenFlow mutations.
    pub fn with_of_mutations(mut self) -> Self {
        self.of_mutations = true;
        self
    }

    /// Replaces the fault budget.
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// True if this plan can inject at least one fault: some fault class
    /// is enabled *and* the budget is positive.
    pub fn any_enabled(&self) -> bool {
        self.budget > 0
            && (self.channel.any_enabled()
                || self.switch_crash
                || self.failover.is_some()
                || self.of_mutations)
    }

    /// The fault model for the ingress channels of `switch` under this
    /// plan: the configured channel model if the switch is in scope,
    /// reliable otherwise.
    pub fn channel_model_for(&self, switch: SwitchId) -> FaultModel {
        if self.budget > 0
            && self.channel.any_enabled()
            && (self.channel_switches.is_empty() || self.channel_switches.contains(&switch))
        {
            self.channel
        } else {
            FaultModel::RELIABLE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_enables_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.any_enabled());
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.channel_model_for(SwitchId(1)).any_enabled());
    }

    #[test]
    fn zero_budget_disables_even_configured_faults() {
        let plan = FaultPlan::lossy(0);
        assert!(!plan.any_enabled());
        assert!(!plan.channel_model_for(SwitchId(1)).any_enabled());
    }

    #[test]
    fn lossy_plan_scopes_channels() {
        let plan = FaultPlan::lossy(2).on_switches([SwitchId(1)]);
        assert!(plan.any_enabled());
        assert_eq!(plan.channel_model_for(SwitchId(1)), FaultModel::LOSSY);
        assert_eq!(plan.channel_model_for(SwitchId(2)), FaultModel::RELIABLE);
        // Empty scope means every switch.
        let broad = FaultPlan::lossy(2);
        assert_eq!(broad.channel_model_for(SwitchId(7)), FaultModel::LOSSY);
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::crashes(3)
            .with_failover(FailoverStaleness::Warm)
            .with_of_mutations()
            .with_budget(5);
        assert!(plan.switch_crash);
        assert_eq!(plan.failover, Some(FailoverStaleness::Warm));
        assert!(plan.of_mutations);
        assert_eq!(plan.budget, 5);
        assert!(plan.any_enabled());
        assert!(!plan.channel_model_for(SwitchId(1)).any_enabled());
    }
}
