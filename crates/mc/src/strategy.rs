//! OpenFlow-specific search strategies (Section 4) and the composable
//! partial-order [`Reduction`] layer.
//!
//! A strategy restricts which of a state's enabled transitions the checker
//! explores, trading completeness for a (much) smaller space of event
//! orderings biased towards the interleavings that uncover bugs:
//!
//! * [`FullDfs`] — NICE-MC: explore everything (PKT-SEQ bounds on host send
//!   budgets still apply; they are part of the scenario, not the strategy).
//! * [`NoDelay`] — controller↔switch communication is atomic ("lock step"):
//!   useful early in development, but blind to rule-installation races.
//! * [`FlowIr`] — flow independence reduction: explore only one relative
//!   ordering between packets the application declares independent.
//! * [`Unusual`] — deliver outstanding controller→switch messages in the
//!   most unusual order (most recently issued first) to expose races like
//!   the Figure 1 example.
//!
//! # How `Reduction` composes with the NICE strategies
//!
//! The two layers answer different questions and stack cleanly:
//!
//! 1. The **strategy** is a *heuristic* filter: it deliberately gives up
//!    completeness (relative to the full interleaving space) to bias the
//!    search towards bug-revealing orderings. It runs first, on the raw
//!    enabled set of each state.
//! 2. The **reduction** is a *sound* filter relative to whatever space the
//!    strategy left: among the strategy-selected transitions it prunes
//!    interleavings of provably independent transitions — orders that are
//!    guaranteed (via [`Transition::footprint`]) to reach states the search
//!    visits anyway through a sibling ordering. `FullDfs` + [`PorReduction`]
//!    therefore finds exactly the violations of `FullDfs` alone while
//!    executing strictly fewer transitions; `NoDelay`/`FlowIr`/`Unusual` +
//!    POR prune the same commuting orders within each strategy's
//!    already-restricted space.
//!
//! Concretely, [`PorReduction`] contributes two mechanisms:
//!
//! * **Sleep sets** (Godefroid): when a state's transitions `t1, t2, …` are
//!   explored in order, the child reached by `t2` inherits `t1` in its
//!   *sleep set* if `t1` and `t2` are independent — the `t2;t1` order is
//!   pruned because `t1;t2` reaches the same state. Sleep sets travel with
//!   frontier nodes (surviving checkpoint/replay reconstruction) and are
//!   stored alongside explored-state fingerprints so that a state revisited
//!   with a *smaller* sleep set is re-expanded (the classic fix that keeps
//!   sleep sets sound under state matching).
//! * **A persistent-set-style selector**: when an enabled `host_receive`
//!   can neither generate replies nor re-enable sending (see
//!   [`HostModel::may_reply`](nice_hosts::HostModel::may_reply)), it is
//!   independent of every other present *and future* transition, so the
//!   singleton `{receive}` is a valid persistent set — the state expands
//!   through that one transition and every sibling interleaving is pruned.
//!
//! The checker threads both through [`CheckerConfig::reduction`]
//! (builder: [`CheckerConfig::with_reduction`]); statistics report the
//! pruned counts as `pruned_by_por`.
//!
//! [`CheckerConfig::reduction`]: crate::scenario::CheckerConfig
//! [`CheckerConfig::with_reduction`]: crate::scenario::CheckerConfig::with_reduction

use crate::por::Footprint;
use crate::scenario::{ReductionKind, Scenario, StrategyKind};
use crate::state::SystemState;
use crate::transition::Transition;
use nice_openflow::Packet;
use std::collections::BTreeSet;

/// A search strategy: filters the enabled transitions of a state.
///
/// `Send + Sync` so each worker thread of the parallel search can hold its
/// own strategy instance (they are stateless filters).
pub trait SearchStrategy: Send + Sync {
    /// The strategy's name (used in reports).
    fn name(&self) -> &str;

    /// Restricts (and possibly reorders) the enabled transitions to the ones
    /// this strategy wants explored from `state`.
    fn select(&self, state: &SystemState, enabled: Vec<Transition>) -> Vec<Transition>;

    /// True if controller↔switch communication should be drained atomically
    /// after every transition (the NO-DELAY semantics).
    fn lock_step_control_plane(&self) -> bool {
        false
    }
}

/// Builds the strategy implementation for a [`StrategyKind`].
pub fn build_strategy(kind: StrategyKind) -> Box<dyn SearchStrategy> {
    match kind {
        StrategyKind::FullDfs => Box::new(FullDfs),
        StrategyKind::NoDelay => Box::new(NoDelay),
        StrategyKind::FlowIr => Box::new(FlowIr),
        StrategyKind::Unusual => Box::new(Unusual),
    }
}

// ---------------------------------------------------------------------------
// The partial-order reduction layer
// ---------------------------------------------------------------------------

/// What a [`Reduction`] decided to explore from one state.
#[derive(Debug, Default)]
pub struct ReductionChoice {
    /// The transitions to actually execute, in exploration order.
    pub explore: Vec<Transition>,
    /// How many strategy-selected transitions the reduction pruned at this
    /// state (sleep-set hits plus persistent-set exclusions).
    pub pruned: u64,
}

/// A partial-order reduction layered *under* a [`SearchStrategy`]: the
/// checker first lets the strategy filter the enabled set, then asks the
/// reduction which of the surviving transitions to execute and which sleep
/// set each child inherits. See the module docs for how the two layers
/// compose and for the soundness argument.
pub trait Reduction: Send + Sync {
    /// The reduction's name (used in reports).
    fn name(&self) -> &str;

    /// Selects which of the strategy-filtered `enabled` transitions to
    /// execute from `state`, given the sleep set the frontier node carried.
    fn select(
        &self,
        state: &SystemState,
        scenario: &Scenario,
        enabled: Vec<Transition>,
        sleep: &[Transition],
    ) -> ReductionChoice;

    /// Computes, for every transition of `explore` (in exploration order),
    /// the sleep set its child inherits: the node's `sleep` entries plus the
    /// siblings explored before it, each kept only while independent of the
    /// executed transition. Batched so an implementation can compute each
    /// transition's footprint once per state instead of once per sibling
    /// pair.
    fn child_sleeps(
        &self,
        state: &SystemState,
        scenario: &Scenario,
        explore: &[Transition],
        sleep: &[Transition],
    ) -> Vec<Vec<Transition>>;
}

/// Builds the reduction implementation for a [`ReductionKind`].
pub fn build_reduction(kind: ReductionKind) -> Box<dyn Reduction> {
    match kind {
        ReductionKind::None => Box::new(NoReduction),
        ReductionKind::Por => Box::new(PorReduction),
    }
}

/// The identity reduction: explore everything, carry no sleep sets. This is
/// the canonical NICE-MC behaviour and the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReduction;

impl Reduction for NoReduction {
    fn name(&self) -> &str {
        "NONE"
    }

    fn select(
        &self,
        _state: &SystemState,
        _scenario: &Scenario,
        enabled: Vec<Transition>,
        _sleep: &[Transition],
    ) -> ReductionChoice {
        ReductionChoice {
            explore: enabled,
            pruned: 0,
        }
    }

    fn child_sleeps(
        &self,
        _state: &SystemState,
        _scenario: &Scenario,
        explore: &[Transition],
        _sleep: &[Transition],
    ) -> Vec<Vec<Transition>> {
        vec![Vec::new(); explore.len()]
    }
}

/// Sleep-set partial-order reduction over [`Transition::footprint`]'s static
/// independence relation, plus a persistent-set-style selector for purely
/// local receives. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PorReduction;

impl PorReduction {
    /// True if `t` is a `host_receive` that can neither inject replies nor
    /// re-enable sending: such a receive is independent of every other
    /// present and future transition, so `{t}` is a valid persistent set.
    fn is_local_receive(t: &Transition, state: &SystemState) -> bool {
        match t {
            Transition::HostReceive { host } => state
                .host(*host)
                .is_some_and(|h| !h.may_reply() && !h.receive_replenishes_sends()),
            _ => false,
        }
    }
}

impl Reduction for PorReduction {
    fn name(&self) -> &str {
        "POR"
    }

    fn select(
        &self,
        state: &SystemState,
        _scenario: &Scenario,
        enabled: Vec<Transition>,
        sleep: &[Transition],
    ) -> ReductionChoice {
        // Sleep-set pruning: a transition in the node's sleep set was
        // already executed on a sibling branch that commutes with the path
        // to this node; re-executing it here would only rediscover states
        // the search reaches anyway.
        let sleeping: BTreeSet<u64> = sleep.iter().map(Transition::digest).collect();
        let before = enabled.len();
        let awake: Vec<Transition> = enabled
            .into_iter()
            .filter(|t| !sleeping.contains(&t.digest()))
            .collect();
        let mut pruned = (before - awake.len()) as u64;

        // Persistent-set-style selector: a purely local receive commutes
        // with everything, so exploring it alone covers the whole state
        // space reachable from here (the deferred siblings stay enabled in
        // the child and are explored there).
        if awake.len() > 1 {
            if let Some(pos) = awake.iter().position(|t| Self::is_local_receive(t, state)) {
                pruned += (awake.len() - 1) as u64;
                let chosen = awake[pos].clone();
                return ReductionChoice {
                    explore: vec![chosen],
                    pruned,
                };
            }
        }

        ReductionChoice {
            explore: awake,
            pruned,
        }
    }

    fn child_sleeps(
        &self,
        state: &SystemState,
        scenario: &Scenario,
        explore: &[Transition],
        sleep: &[Transition],
    ) -> Vec<Vec<Transition>> {
        // One footprint per transition per state; the O(k^2) part is only
        // the cheap sorted-merge disjointness checks.
        let sleep_fps: Vec<Footprint> =
            sleep.iter().map(|t| t.footprint(state, scenario)).collect();
        let explore_fps: Vec<Footprint> = explore
            .iter()
            .map(|t| t.footprint(state, scenario))
            .collect();
        (0..explore.len())
            .map(|i| {
                let executed_fp = &explore_fps[i];
                sleep
                    .iter()
                    .zip(sleep_fps.iter())
                    .chain(explore[..i].iter().zip(explore_fps[..i].iter()))
                    .filter(|(_, fp)| fp.independent_of(executed_fp))
                    .map(|(t, _)| t.clone())
                    .collect()
            })
            .collect()
    }
}

/// NICE-MC: the unrestricted search.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullDfs;

impl SearchStrategy for FullDfs {
    fn name(&self) -> &str {
        "PKT-SEQ"
    }

    fn select(&self, _state: &SystemState, enabled: Vec<Transition>) -> Vec<Transition> {
        enabled
    }
}

/// NO-DELAY: rule installation is instantaneous.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDelay;

impl SearchStrategy for NoDelay {
    fn name(&self) -> &str {
        "NO-DELAY"
    }

    fn select(&self, _state: &SystemState, enabled: Vec<Transition>) -> Vec<Transition> {
        // The control-plane channels are drained atomically after every
        // transition, so ControllerHandle/ProcessOf transitions are never
        // enabled on their own; nothing to filter here.
        enabled
    }

    fn lock_step_control_plane(&self) -> bool {
        true
    }
}

/// FLOW-IR: flow independence reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowIr;

impl FlowIr {
    fn same_flow(state: &SystemState, a: &Packet, b: &Packet) -> bool {
        state.controller().app().is_same_flow(a, b)
    }
}

impl SearchStrategy for FlowIr {
    fn name(&self) -> &str {
        "FLOW-IR"
    }

    fn select(&self, state: &SystemState, enabled: Vec<Transition>) -> Vec<Transition> {
        // Partition the enabled host-send transitions into flow groups using
        // the application's isSameFlow oracle, then keep only the sends of
        // the first group: the relative ordering between independent groups
        // is explored exactly once (group 1 entirely before group 2, ...).
        let mut group_leader: Option<Packet> = None;
        let mut out = Vec::with_capacity(enabled.len());
        for t in enabled {
            match &t {
                Transition::HostSend { packet, .. } => match &group_leader {
                    None => {
                        group_leader = Some(*packet);
                        out.push(t);
                    }
                    Some(leader) => {
                        if Self::same_flow(state, leader, packet) {
                            out.push(t);
                        }
                        // Sends of independent flows are pruned here; they
                        // become enabled again once the leader flow has no
                        // enabled sends left.
                    }
                },
                _ => out.push(t),
            }
        }
        out
    }
}

/// UNUSUAL: uncommon delays and reorderings of control messages.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unusual;

impl SearchStrategy for Unusual {
    fn name(&self) -> &str {
        "UNUSUAL"
    }

    fn select(&self, state: &SystemState, enabled: Vec<Transition>) -> Vec<Transition> {
        // Among the pending controller→switch deliveries, keep only the one
        // for the switch whose message was issued most recently: rule
        // installations are explored in reverse order, the scenario of
        // Figure 1 / BUG-IX.
        let backlog = state.of_backlog();
        let newest = backlog
            .iter()
            .max_by_key(|(_, seq)| *seq)
            .map(|(sw, _)| *sw);
        let multiple_pending = backlog.len() > 1;
        enabled
            .into_iter()
            .filter(|t| match t {
                Transition::ProcessOf { switch } if multiple_pending => Some(*switch) == newest,
                _ => true,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CheckerConfig;
    use crate::testutil;
    use crate::transition::enabled_transitions;
    use nice_openflow::{HostId, MacAddr, OfMessage, PortId, SwitchId};

    fn state_with_backlog() -> SystemState {
        let scenario = testutil::hub_ping_scenario(1);
        let mut state = SystemState::initial(&scenario);
        state.enqueue_to_switch(SwitchId(1), OfMessage::BarrierRequest { request_id: 1 });
        state.enqueue_to_switch(SwitchId(2), OfMessage::BarrierRequest { request_id: 2 });
        state
    }

    #[test]
    fn build_strategy_matches_kind() {
        for kind in StrategyKind::ALL {
            let strategy = build_strategy(kind);
            assert_eq!(strategy.name(), kind.name());
        }
    }

    #[test]
    fn build_reduction_matches_kind() {
        assert_eq!(build_reduction(ReductionKind::None).name(), "NONE");
        assert_eq!(build_reduction(ReductionKind::Por).name(), "POR");
    }

    #[test]
    fn full_dfs_keeps_everything() {
        let scenario = testutil::hub_ping_scenario(1);
        let config = CheckerConfig::default();
        let state = state_with_backlog();
        let enabled = enabled_transitions(&state, &scenario, &config);
        let kept = FullDfs.select(&state, enabled.clone());
        assert_eq!(kept.len(), enabled.len());
        assert!(!FullDfs.lock_step_control_plane());
    }

    #[test]
    fn no_delay_requests_lock_step() {
        assert!(NoDelay.lock_step_control_plane());
        let state = state_with_backlog();
        let kept = NoDelay.select(&state, vec![]);
        assert!(kept.is_empty());
    }

    #[test]
    fn unusual_prefers_the_most_recent_of_message() {
        let scenario = testutil::hub_ping_scenario(1);
        let config = CheckerConfig::default();
        let state = state_with_backlog();
        let enabled = enabled_transitions(&state, &scenario, &config);
        let process_of_before = enabled
            .iter()
            .filter(|t| matches!(t, Transition::ProcessOf { .. }))
            .count();
        assert_eq!(process_of_before, 2);
        let kept = Unusual.select(&state, enabled);
        let remaining: Vec<SwitchId> = kept
            .iter()
            .filter_map(|t| match t {
                Transition::ProcessOf { switch } => Some(*switch),
                _ => None,
            })
            .collect();
        // Only the most recently targeted switch (switch 2) may deliver first.
        assert_eq!(remaining, vec![SwitchId(2)]);
        // Non-ProcessOf transitions survive untouched.
        assert!(kept
            .iter()
            .any(|t| matches!(t, Transition::HostSend { .. })));
    }

    #[test]
    fn unusual_keeps_single_pending_delivery() {
        let scenario = testutil::hub_ping_scenario(1);
        let config = CheckerConfig::default();
        let mut state = SystemState::initial(&scenario);
        state.enqueue_to_switch(SwitchId(1), OfMessage::BarrierRequest { request_id: 1 });
        let enabled = enabled_transitions(&state, &scenario, &config);
        let kept = Unusual.select(&state, enabled.clone());
        assert_eq!(kept.len(), enabled.len());
    }

    #[test]
    fn flow_ir_restricts_sends_to_one_group() {
        // Two clients with sends of *different* flows enabled at once: the
        // default isSameFlow (always true) keeps everything, so use packets
        // that the testutil hub app treats as one flow — FLOW-IR then keeps
        // them all. To observe pruning we use a custom oracle via the
        // DstOnlyLearningApp? That app also uses the default oracle, so this
        // test exercises the "everything same flow" behaviour and the
        // structural pruning path with a hand-built transition list.
        let scenario = testutil::hub_ping_scenario(1);
        let state = SystemState::initial(&scenario);
        let a = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let b = Packet::l2_ping(2, MacAddr::for_host(2), MacAddr::for_host(1), 0);
        let enabled = vec![
            Transition::HostSend {
                host: HostId(1),
                packet: a,
            },
            Transition::HostSend {
                host: HostId(2),
                packet: b,
            },
            Transition::ProcessPacket {
                switch: SwitchId(1),
            },
        ];
        // Default oracle: same flow → both sends kept.
        let kept = FlowIr.select(&state, enabled.clone());
        assert_eq!(kept.len(), 3);
        // The non-send transition is always preserved.
        assert!(kept
            .iter()
            .any(|t| matches!(t, Transition::ProcessPacket { .. })));
        let _ = PortId(1);
    }
}
