//! A Chase-Lev work-stealing deque.
//!
//! One thread — the **owner** — pushes and pops work at the *bottom* of the
//! deque with plain (fence-synchronised) loads and stores; any number of
//! **thieves** steal from the *top* with a single compare-and-swap. Neither
//! side takes a lock, so a worker whose deque is hot never contends with
//! idle siblings, which is the property the parallel model checker's
//! scheduler needs: local depth-first pushes/pops stay as cheap as a `Vec`,
//! and stealing only costs anything when somebody is actually out of work.
//!
//! The memory-ordering discipline follows Lê, Pop, Cohen & Zappa Nardelli,
//! *Correct and Efficient Work-Stealing for Weak Memory Models* (PPoPP'13),
//! which is also the basis of `crossbeam-deque`; this crate exists because
//! the build is offline and the checker crate forbids `unsafe` internally,
//! so the few unavoidable unsafe blocks live here behind a safe API.
//!
//! ```
//! use nice_deque::{Steal, Worker};
//!
//! let worker = Worker::new();
//! let stealer = worker.stealer();
//! worker.push(1);
//! worker.push(2);
//! assert_eq!(stealer.steal(), Steal::Success(1)); // thieves see FIFO order
//! assert_eq!(worker.pop(), Some(2)); // the owner works LIFO (depth-first)
//! ```

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::mem;
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Smallest ring-buffer capacity; always a power of two so indexing is a
/// mask rather than a modulo.
const MIN_CAPACITY: usize = 32;

/// The result of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// The attempt lost a race with the owner or another thief; the deque
    /// may still hold work, so retrying immediately is reasonable.
    Retry,
    /// One element was stolen from the top of the deque.
    Success(T),
}

/// A fixed-capacity ring of `T` slots, indexed by *logical* position (the
/// monotonically increasing top/bottom counters); the physical slot is the
/// logical index masked by `capacity - 1`. Slots are raw memory: the deque
/// protocol, not this struct, decides which slots hold live values.
struct Buffer<T> {
    slots: *mut T,
    capacity: usize,
}

impl<T> Buffer<T> {
    fn alloc(capacity: usize) -> Buffer<T> {
        debug_assert!(capacity.is_power_of_two());
        let slots = if mem::size_of::<T>() == 0 {
            ptr::NonNull::dangling().as_ptr()
        } else {
            let layout = Layout::array::<T>(capacity).expect("deque buffer layout");
            // SAFETY: layout has non-zero size (T is not zero-sized here).
            let raw = unsafe { alloc(layout) };
            if raw.is_null() {
                handle_alloc_error(layout);
            }
            raw.cast::<T>()
        };
        Buffer { slots, capacity }
    }

    /// Frees the slot array only. Values still logically inside the deque
    /// are dropped by `Inner::drop`; values migrated to a larger buffer
    /// were moved bitwise and must not be touched here.
    unsafe fn dealloc(&self) {
        if mem::size_of::<T>() != 0 {
            let layout = Layout::array::<T>(self.capacity).expect("deque buffer layout");
            dealloc(self.slots.cast::<u8>(), layout);
        }
    }

    unsafe fn slot(&self, index: isize) -> *mut T {
        self.slots.offset(index & (self.capacity as isize - 1))
    }

    unsafe fn write(&self, index: isize, value: T) {
        ptr::write(self.slot(index), value);
    }

    /// Reads the value at `index` without invalidating the slot. A thief's
    /// read may race with the owner overwriting the slot after a wrap; the
    /// protocol only *keeps* the value if the subsequent CAS on `top`
    /// succeeds, and forgets it otherwise.
    unsafe fn read(&self, index: isize) -> T {
        ptr::read(self.slot(index))
    }
}

/// State shared between the owner and its thieves.
struct Inner<T> {
    /// Next logical index the owner will push at; only the owner writes it.
    bottom: AtomicIsize,
    /// Logical index of the oldest element; advanced by successful steals
    /// (and by the owner when it takes the last element).
    top: AtomicIsize,
    /// The current ring buffer.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth. Their values were moved to the new
    /// buffer, but in-flight thieves may still be *reading* (and then
    /// forgetting) from them, so the memory is only freed when the whole
    /// deque drops.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: all cross-thread access to the raw buffers goes through the
// Chase-Lev protocol above; the pointers themselves carry `T` values.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let bottom = *self.bottom.get_mut();
        let top = *self.top.get_mut();
        let buffer = *self.buffer.get_mut();
        // SAFETY: we have exclusive access; [top, bottom) are the live slots.
        unsafe {
            for index in top..bottom {
                ptr::drop_in_place((*buffer).slot(index));
            }
            (*buffer).dealloc();
            drop(Box::from_raw(buffer));
            let retired =
                mem::take(&mut *self.retired.lock().unwrap_or_else(PoisonError::into_inner));
            for old in retired {
                (*old).dealloc();
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner's handle: push and pop at the bottom. Deliberately `!Sync` and
/// not `Clone` — exactly one thread owns a deque.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Opts out of `Sync`: the owner-side protocol assumes a single thread.
    _not_sync: PhantomData<*mut ()>,
}

// SAFETY: a Worker may migrate to another thread (e.g. into a spawned
// scope); it just can't be *shared* between threads, which `!Sync` (via the
// raw-pointer PhantomData) already guarantees.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Worker<T> {
    /// Creates an empty deque owned by the calling thread.
    pub fn new() -> Worker<T> {
        let buffer = Box::into_raw(Box::new(Buffer::alloc(MIN_CAPACITY)));
        Worker {
            inner: Arc::new(Inner {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                buffer: AtomicPtr::new(buffer),
                retired: Mutex::new(Vec::new()),
            }),
            _not_sync: PhantomData,
        }
    }

    /// Creates a new thief handle for this deque. Cheap; clone freely.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of elements currently in the deque (a racy snapshot).
    pub fn len(&self) -> usize {
        let bottom = self.inner.bottom.load(Ordering::Relaxed);
        let top = self.inner.top.load(Ordering::Relaxed);
        (bottom - top).max(0) as usize
    }

    /// Whether the deque looked empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a value at the bottom of the deque.
    pub fn push(&self, value: T) {
        let bottom = self.inner.bottom.load(Ordering::Relaxed);
        let top = self.inner.top.load(Ordering::Acquire);
        let mut buffer = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: only the owner mutates `buffer`, so the pointer is stable
        // for the duration of this call.
        unsafe {
            if bottom - top >= (*buffer).capacity as isize {
                self.grow(bottom, top);
                buffer = self.inner.buffer.load(Ordering::Relaxed);
            }
            (*buffer).write(bottom, value);
        }
        // Publish the slot before publishing the new bottom.
        fence(Ordering::Release);
        self.inner.bottom.store(bottom + 1, Ordering::Relaxed);
    }

    /// Pops the most recently pushed value (LIFO — depth-first for the
    /// scheduler). Returns `None` when the deque is empty or a thief won
    /// the race for the last element.
    pub fn pop(&self) -> Option<T> {
        let bottom = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buffer = self.inner.buffer.load(Ordering::Relaxed);
        self.inner.bottom.store(bottom, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let top = self.inner.top.load(Ordering::Relaxed);

        if top > bottom {
            // Already empty; restore bottom.
            self.inner.bottom.store(bottom + 1, Ordering::Relaxed);
            return None;
        }
        if top < bottom {
            // More than one element left: the slot is unambiguously ours.
            // SAFETY: thieves cannot pass `bottom` while they see the store above.
            return Some(unsafe { (*buffer).read(bottom) });
        }
        // Exactly one element: race a pending thief for it via `top`.
        let won = self
            .inner
            .top
            .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.inner.bottom.store(bottom + 1, Ordering::Relaxed);
        if won {
            // SAFETY: winning the CAS gives exclusive claim on slot `bottom`.
            Some(unsafe { (*buffer).read(bottom) })
        } else {
            None
        }
    }

    /// Doubles the buffer, migrating the live range `[top, bottom)`.
    /// The old buffer is retired, not freed: a thief may still be mid-read.
    fn grow(&self, bottom: isize, top: isize) {
        let old = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: owner-only path; values move bitwise to the new buffer and
        // are never dropped from (or re-read out of) the old one by us.
        unsafe {
            let new = Box::into_raw(Box::new(Buffer::alloc((*old).capacity * 2)));
            for index in top..bottom {
                (*new).write(index, (*old).read(index));
            }
            self.inner.buffer.store(new, Ordering::Release);
            self.inner
                .retired
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(old);
        }
    }
}

/// A thief's handle: steal from the top. `Clone + Send + Sync`.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Number of elements currently in the deque (a racy snapshot).
    pub fn len(&self) -> usize {
        let top = self.inner.top.load(Ordering::Relaxed);
        let bottom = self.inner.bottom.load(Ordering::Relaxed);
        (bottom - top).max(0) as usize
    }

    /// Whether the deque looked empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to steal the oldest element (FIFO — breadth-first from the
    /// victim's perspective, which steals the work the owner would reach
    /// last and therefore the biggest unexplored subtrees).
    pub fn steal(&self) -> Steal<T> {
        let top = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let bottom = self.inner.bottom.load(Ordering::Acquire);
        if top >= bottom {
            return Steal::Empty;
        }
        let buffer = self.inner.buffer.load(Ordering::Acquire);
        // SAFETY: the read may race with the owner wrapping the slot; the
        // CAS below detects that and the value is forgotten, never used.
        let value = unsafe { (*buffer).read(top) };
        if self
            .inner
            .top
            .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            mem::forget(value);
            return Steal::Retry;
        }
        Steal::Success(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn owner_pops_lifo() {
        let worker = Worker::new();
        for i in 0..10 {
            worker.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(worker.pop(), Some(i));
        }
        assert_eq!(worker.pop(), None);
        assert_eq!(worker.pop(), None); // repeated pops on empty stay None
    }

    #[test]
    fn thief_steals_fifo() {
        let worker = Worker::new();
        let stealer = worker.stealer();
        for i in 0..10 {
            worker.push(i);
        }
        for i in 0..10 {
            assert_eq!(stealer.steal(), Steal::Success(i));
        }
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn growth_preserves_order_and_values() {
        let worker = Worker::new();
        let stealer = worker.stealer();
        let n = MIN_CAPACITY * 8 + 3; // forces several doublings
        for i in 0..n {
            worker.push(Box::new(i));
        }
        assert_eq!(worker.len(), n);
        assert_eq!(stealer.steal(), Steal::Success(Box::new(0)));
        for i in (2..n).rev() {
            assert_eq!(worker.pop(), Some(Box::new(i)));
        }
        assert_eq!(stealer.steal(), Steal::Success(Box::new(1)));
        assert_eq!(worker.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_wraps_the_ring() {
        let worker = Worker::new();
        // Push/pop more total elements than any buffer capacity while the
        // length stays small: exercises index wrapping without growth.
        for round in 0..1000usize {
            worker.push(round);
            worker.push(round + 1);
            assert_eq!(worker.pop(), Some(round + 1));
            assert_eq!(worker.pop(), Some(round));
        }
        assert!(worker.is_empty());
    }

    /// Counts drops so leak/double-drop bugs show up as wrong counts.
    struct Counted(Arc<AtomicUsize>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn dropping_a_nonempty_deque_drops_each_element_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let worker = Worker::new();
        let n = MIN_CAPACITY * 4; // grown at least once, so retired buffers exist
        for _ in 0..n {
            worker.push(Counted(Arc::clone(&drops)));
        }
        drop(worker.pop()); // one dropped by us...
        drop(worker);
        assert_eq!(drops.load(Ordering::SeqCst), n); // ...the rest by Drop
    }

    #[test]
    fn concurrent_stealing_neither_loses_nor_duplicates_work() {
        const ITEMS: usize = 50_000;
        const THIEVES: usize = 3;

        let worker: Worker<usize> = Worker::new();
        let seen: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();

        thread::scope(|scope| {
            for _ in 0..THIEVES {
                let stealer = worker.stealer();
                let seen = &seen;
                scope.spawn(move || loop {
                    match stealer.steal() {
                        Steal::Success(i) => {
                            seen[i].fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            let total: usize = seen.iter().map(|s| s.load(Ordering::SeqCst)).sum();
                            if total >= ITEMS {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                });
            }
            // The owner pushes everything, popping some of its own work along
            // the way like a real scheduler does.
            for i in 0..ITEMS {
                worker.push(i);
                if i % 7 == 0 {
                    if let Some(j) = worker.pop() {
                        seen[j].fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            while let Some(j) = worker.pop() {
                seen[j].fetch_add(1, Ordering::SeqCst);
            }
        });

        for (i, s) in seen.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::SeqCst),
                1,
                "item {i} seen wrong number of times"
            );
        }
    }
}
