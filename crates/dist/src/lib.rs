//! # nice-dist
//!
//! The distributed checking service: a **coordinator** that shards one
//! check job across a pool of **worker child processes**, with the
//! fingerprint space partitioned by digest prefix
//! ([`nice_mc::ShardSpec`]) so the explored set is distributed — each
//! unique state is expanded by exactly one worker, and states landing in
//! another worker's shard are forwarded (as replayable frontier exports),
//! not re-explored.
//!
//! * [`proto`] — the `nice-dist-v1` wire protocol: length-prefixed
//!   single-line JSON frames, self-validated with [`nice_mc::jsonv`].
//! * [`worker`] — the worker main loop: drives a
//!   [`nice_mc::ShardedSearch`] (the *same* expansion loop as the
//!   in-process sequential engine — a 1-shard run is bit-identical to
//!   `ModelChecker::session()` by construction), streaming forwards,
//!   progress and violations back over stdout.
//! * [`pool`] — spawning and respawning the `nice-dist-worker` child
//!   processes and pumping their stdout frames into one event channel.
//! * [`coordinator`] — job orchestration: routing forwards to shard
//!   owners, distributed-termination detection, per-job budgets and
//!   deadlines, cancellation, and worker-crash recovery (a dead worker's
//!   shard is re-seeded by replaying the coordinator's forward log).
//!
//! Transport is `spawn` + stdin/stdout pipes: multi-process on one host,
//! no network crates needed in the offline build environment. The same
//! frames double as the client protocol of `nice serve` / `nice submit`
//! over a Unix socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod pool;
pub mod proto;
pub mod worker;

pub use coordinator::{Coordinator, JobEvent, JobSpec};
pub use proto::{read_frame, write_frame, Frame, WireViolation, DIST_SCHEMA};
pub use worker::worker_main;

/// Environment variable overriding the worker binary the pool spawns.
pub const WORKER_BIN_ENV: &str = "NICE_DIST_WORKER_BIN";

/// Environment variable (set on a spawned worker) making it abort after
/// executing that many transitions — the crash-recovery test hook. The
/// abort models a SIGKILL'd worker: no flush, no goodbye frame.
pub const DIE_AFTER_ENV: &str = "NICE_DIST_DIE_AFTER";
