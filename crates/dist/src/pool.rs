//! Spawning, supervising and respawning the `nice-dist-worker` children.
//!
//! The pool owns one child process per shard, plus one reader thread per
//! child pumping that child's stdout frames into a single shared event
//! channel. Every event is tagged with the worker index and the worker's
//! *generation* — respawning a crashed worker bumps its generation, so the
//! coordinator can discard frames that a dead process left in the pipe.

use crate::proto::{read_frame, write_frame, Frame};
use crate::{DIE_AFTER_ENV, WORKER_BIN_ENV};
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, Sender};

/// Something a worker process did.
#[derive(Debug)]
pub enum WorkerEvent {
    /// The worker wrote a frame (boxed: a `job` frame carries a whole
    /// [`JobSpec`](crate::JobSpec), which would otherwise dominate the
    /// event size on the channel).
    Frame(Box<Frame>),
    /// The worker's stdout closed (process exit or crash). Emitted once per
    /// generation; a corrupt frame on the pipe is reported the same way,
    /// since a process writing garbage is as dead to the protocol as one
    /// that exited.
    Eof,
}

/// One tagged event from the pool's shared channel.
#[derive(Debug)]
pub struct PoolEvent {
    /// Index of the worker (its shard index).
    pub worker: usize,
    /// The worker's generation when the event was produced. Compare against
    /// [`WorkerPool::generation`] and discard stale events.
    pub generation: u64,
    /// What happened.
    pub event: WorkerEvent,
}

struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    generation: u64,
}

/// A pool of `nice-dist-worker` child processes, one per shard.
pub struct WorkerPool {
    bin: PathBuf,
    workers: Vec<WorkerHandle>,
    events: Receiver<PoolEvent>,
    events_tx: Sender<PoolEvent>,
    /// Crash-test hook parsed from [`DIE_AFTER_ENV`] (`"worker:transitions"`):
    /// applied to that worker's *first* generation only, so the respawned
    /// process survives and the job can complete.
    die_after: Option<(usize, u64)>,
}

/// Locates the worker binary: the [`WORKER_BIN_ENV`] override, else a
/// `nice-dist-worker` sibling of the current executable (also checking the
/// parent directory, because test binaries live in `target/<profile>/deps/`
/// while bins live in `target/<profile>/`).
fn worker_bin() -> io::Result<PathBuf> {
    if let Ok(path) = std::env::var(WORKER_BIN_ENV) {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe()?;
    let name = format!("nice-dist-worker{}", std::env::consts::EXE_SUFFIX);
    // Sibling of the current executable, or of its parent directory (test
    // binaries live in target/<profile>/deps/, bins in target/<profile>/).
    let candidates = [
        exe.parent().map(|d| d.join(&name)),
        exe.parent().and_then(|d| d.parent()).map(|d| d.join(&name)),
    ];
    for candidate in candidates.into_iter().flatten() {
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("worker binary '{name}' not found next to {}; build it (cargo build -p nice-dist) or set {WORKER_BIN_ENV}", exe.display()),
    ))
}

impl WorkerPool {
    /// Spawns `count` workers and their reader threads.
    pub fn spawn(count: usize) -> io::Result<WorkerPool> {
        let bin = worker_bin()?;
        let die_after = std::env::var(DIE_AFTER_ENV).ok().and_then(|v| {
            let (worker, transitions) = v.split_once(':')?;
            Some((worker.parse().ok()?, transitions.parse().ok()?))
        });
        let (events_tx, events) = std::sync::mpsc::channel();
        let mut pool = WorkerPool {
            bin,
            workers: Vec::with_capacity(count),
            events,
            events_tx,
            die_after,
        };
        for index in 0..count {
            let handle = pool.spawn_one(index, 0)?;
            pool.workers.push(handle);
        }
        Ok(pool)
    }

    fn spawn_one(&self, index: usize, generation: u64) -> io::Result<WorkerHandle> {
        let mut cmd = Command::new(&self.bin);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .env_remove(DIE_AFTER_ENV);
        if let Some((victim, transitions)) = self.die_after {
            if victim == index && generation == 0 {
                cmd.env(DIE_AFTER_ENV, transitions.to_string());
            }
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = self.events_tx.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            loop {
                match read_frame(&mut reader) {
                    Ok(Some(frame)) => {
                        if tx
                            .send(PoolEvent {
                                worker: index,
                                generation,
                                event: WorkerEvent::Frame(Box::new(frame)),
                            })
                            .is_err()
                        {
                            return; // pool dropped
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send(PoolEvent {
                            worker: index,
                            generation,
                            event: WorkerEvent::Eof,
                        });
                        return;
                    }
                }
            }
        });
        Ok(WorkerHandle {
            child,
            stdin,
            generation,
        })
    }

    /// Number of workers (= shard count).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True if the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The current generation of `worker`.
    pub fn generation(&self, worker: usize) -> u64 {
        self.workers[worker].generation
    }

    /// The shared event channel (use `recv`/`recv_timeout`).
    pub fn events(&self) -> &Receiver<PoolEvent> {
        &self.events
    }

    /// Sends a frame to one worker. A pipe error is reported as `Ok(false)`
    /// rather than an error: the worker is dead, its reader thread is about
    /// to deliver [`WorkerEvent::Eof`], and the coordinator's crash recovery
    /// — not the send site — decides what happens next.
    pub fn send(&mut self, worker: usize, frame: &Frame) -> io::Result<bool> {
        match write_frame(&mut self.workers[worker].stdin, frame) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Sends a frame to every worker.
    pub fn broadcast(&mut self, frame: &Frame) -> io::Result<()> {
        for worker in 0..self.workers.len() {
            self.send(worker, frame)?;
        }
        Ok(())
    }

    /// Replaces a dead worker with a fresh process (next generation) and
    /// returns the new generation. The caller re-sends the job and replays
    /// the forward log.
    pub fn respawn(&mut self, worker: usize) -> io::Result<u64> {
        let generation = self.workers[worker].generation + 1;
        let fresh = self.spawn_one(worker, generation)?;
        let mut old = std::mem::replace(&mut self.workers[worker], fresh);
        let _ = old.child.kill();
        let _ = old.child.wait();
        Ok(generation)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for handle in &mut self.workers {
            let _ = write_frame(&mut handle.stdin, &Frame::Shutdown);
        }
        for handle in &mut self.workers {
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
            let exited = loop {
                match handle.child.try_wait() {
                    Ok(Some(_)) => break true,
                    Ok(None) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    _ => break false,
                }
            };
            if !exited {
                let _ = handle.child.kill();
                let _ = handle.child.wait();
            }
        }
    }
}
