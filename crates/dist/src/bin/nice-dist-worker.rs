//! The `nice-dist` worker process: speaks `nice-dist-v1` over
//! stdin/stdout and expands one shard of the fingerprint space per job.
//! Spawned by the coordinator's worker pool — not meant to be run by hand.

fn main() -> std::io::Result<()> {
    nice_dist::worker_main()
}
