//! Job orchestration over a [`WorkerPool`].
//!
//! The coordinator shards the fingerprint space over the pool
//! (worker *i* runs [`ShardSpec`] `{index: i, count: N}`), routes each
//! `forward`ed frontier export to the worker that owns its fingerprint, and
//! decides global termination: the frontier is empty exactly when every
//! worker has announced `idle` acknowledging *all* the state records routed
//! to it (workers flush forwards before announcing idle, and pipes are
//! FIFO, so nothing can be in flight when the acknowledgements line up).
//!
//! **Crash recovery.** Every export routed to a worker is also appended to
//! that worker's *forward log*. When a worker's pipe hits EOF mid-job, the
//! coordinator respawns it (bumping its generation — frames a dead process
//! left behind are discarded by generation tag), re-sends the job, and
//! replays the log; the worker re-derives its shard of the frontier by
//! replaying the logged traces, exactly as checkpoint/replay storage
//! rebuilds states. Re-explored work may re-forward states other shards
//! have already seen — those deduplicate at the owner, so the verdict and
//! the violation set are unaffected (per-shard counters may differ from a
//! crash-free run; the equivalence guarantees are for crash-free runs).
//!
//! Determinism: the verdict, the violation set and the summed counters
//! are run-to-run deterministic; the *witness path* recorded for a
//! violation is not (forwarded states arrive in timing-dependent order,
//! so an owner may first reach a violating state along different paths).
//! Every reported trace replays on the deterministic sequential engine.
//!
//! **Budgets.** `max_transitions` is enforced both worker-locally (each
//! shard's own budget) and globally: the coordinator sums `progress`
//! reports and broadcasts `cancel` when the job-wide total crosses the
//! budget. Deadlines (`time_budget_ms`) and caller cancellation are
//! enforced coordinator-side the same way. Cancelled workers stop
//! expanding but keep acknowledging, so termination detection and the
//! final `job_done` collection still converge.

use crate::pool::{PoolEvent, WorkerEvent, WorkerPool};
use crate::proto::{Frame, WireViolation};
use nice_mc::{
    shard_of, CheckReport, CheckerConfig, ExploredConfig, ExploredMode, FaultStats, FrontierExport,
    InterruptReason, Outcome, ReductionKind, ShardSpec, StrategyKind, Trace, TraceEngine,
    TraceStep, Violation,
};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Consecutive no-frame crashes of one worker before the coordinator gives
/// up on the job instead of respawning forever. Genuine mid-job crashes
/// reset the streak with every frame the worker produced; only a process
/// that dies *immediately* on every spawn (stale binary speaking an old
/// protocol, missing shared library, bad [`crate::WORKER_BIN_ENV`]
/// override) climbs past this.
const MAX_CRASH_STREAK: u32 = 5;

/// What to check and how: the distributed analogue of picking a registry
/// scenario and a [`CheckerConfig`]. Serialized inside the `job` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Scenario spec, resolved worker-side by
    /// [`nice_apps::workloads::resolve`]: a registry scenario name
    /// (`bug-v-packets-dropped-in-transition`) or a parameterised workload
    /// (`ping:2`, `chain:5:2`, `chain-faults:3:1`).
    pub scenario: String,
    /// The search strategy.
    pub strategy: StrategyKind,
    /// Partial-order reduction layered on the strategy.
    pub reduction: ReductionKind,
    /// Schedule the scenario's fault plan.
    pub inject_faults: bool,
    /// Stop the whole job at the first violation any shard finds.
    pub stop_at_first_violation: bool,
    /// Job-wide transition budget (0 = unlimited).
    pub max_transitions: u64,
    /// Depth bound, per shard (depth is a path property, so per-shard and
    /// global bounds coincide).
    pub max_depth: usize,
    /// Wall-clock budget for the job in milliseconds (0 = unlimited).
    pub time_budget_ms: u64,
    /// Explored-set storage mode each worker runs its shard with
    /// ([`ExploredMode`]): a `tiered` job spills cold shards to the
    /// worker-local disk exactly like a local tiered run.
    pub explored: ExploredMode,
    /// Per-worker explored-set memory budget in bytes (0 = the mode's
    /// default; ignored by [`ExploredMode::Mem`]).
    pub mem_limit: u64,
}

impl JobSpec {
    /// A spec with the engine defaults (same defaults as
    /// [`CheckerConfig::default`]) for the given scenario.
    pub fn new(scenario: impl Into<String>) -> Self {
        let defaults = CheckerConfig::default();
        JobSpec {
            scenario: scenario.into(),
            strategy: defaults.strategy,
            reduction: defaults.reduction,
            inject_faults: defaults.inject_faults,
            stop_at_first_violation: defaults.stop_at_first_violation,
            max_transitions: defaults.max_transitions,
            max_depth: defaults.max_depth,
            time_budget_ms: 0,
            explored: defaults.explored.mode,
            mem_limit: defaults.explored.mem_limit,
        }
    }

    /// The per-worker engine configuration this spec describes. Each worker
    /// runs the deterministic sequential engine (`workers = 1`) over its
    /// shard; distribution happens *across* processes, not inside one.
    pub fn config(&self) -> CheckerConfig {
        CheckerConfig {
            strategy: self.strategy,
            reduction: self.reduction,
            inject_faults: self.inject_faults,
            stop_at_first_violation: self.stop_at_first_violation,
            max_transitions: self.max_transitions,
            max_depth: self.max_depth,
            workers: 1,
            explored: ExploredConfig {
                mode: self.explored,
                mem_limit: self.mem_limit,
            },
            ..CheckerConfig::default()
        }
    }
}

/// Live events streamed to the job's submitter while it runs. The final
/// [`CheckReport`] — not this stream — is authoritative: a worker crash can
/// replay a `Violation` event, and `Progress` totals are sampled.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The job was dispatched to the pool.
    Started {
        /// Worker process (= shard) count.
        workers: usize,
    },
    /// Sampled job-wide progress (sums of the shards' latest reports).
    Progress {
        /// Transitions executed.
        transitions: u64,
        /// Unique states explored.
        unique_states: u64,
        /// Deepest path reported so far.
        depth: u64,
    },
    /// A shard found (and streamed) a violation.
    Violation(WireViolation),
    /// A worker process died and was respawned; its shard is being
    /// re-derived from the coordinator's forward log.
    WorkerRestarted {
        /// The worker's index.
        worker: usize,
    },
}

/// Per-worker bookkeeping for one job.
struct WorkerJob {
    /// Every export ever routed to this worker, for crash replay.
    log: Vec<FrontierExport>,
    /// The `received` count from this worker's latest `idle`, if it is
    /// currently believed idle. Cleared whenever states are sent to it.
    idle_received: Option<u64>,
    /// The shard's final report, once `job_done` arrives.
    done: Option<(nice_mc::SearchStats, Vec<WireViolation>)>,
}

/// The distributed checking coordinator: a worker pool plus job routing.
pub struct Coordinator {
    pool: WorkerPool,
    next_job: u64,
}

impl Coordinator {
    /// Spawns a coordinator with `workers` worker processes (min 1).
    pub fn new(workers: usize) -> io::Result<Coordinator> {
        Ok(Coordinator {
            pool: WorkerPool::spawn(workers.max(1))?,
            next_job: 1,
        })
    }

    /// Number of worker processes (= shards).
    pub fn workers(&self) -> usize {
        self.pool.len()
    }

    /// Runs one job to completion, streaming [`JobEvent`]s to `on_event`.
    /// `cancel` (when provided) is polled and stops the job early with
    /// [`Outcome::Interrupted`]. Returns the merged job-wide report.
    pub fn run_job(
        &mut self,
        spec: &JobSpec,
        mut on_event: impl FnMut(JobEvent),
        cancel: Option<&AtomicBool>,
    ) -> io::Result<CheckReport> {
        // Validate the spec coordinator-side too: a clean error now beats
        // twelve `error` frames later.
        let scenario_name = nice_apps::workloads::resolve(&spec.scenario)
            .map(|s| s.name)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown scenario spec '{}'", spec.scenario),
                )
            })?;

        let job = self.next_job;
        self.next_job += 1;
        let count = self.pool.len();
        let start = Instant::now();
        let deadline =
            (spec.time_budget_ms > 0).then(|| start + Duration::from_millis(spec.time_budget_ms));

        let mut jobs: Vec<WorkerJob> = (0..count)
            .map(|_| WorkerJob {
                log: Vec::new(),
                idle_received: None,
                done: None,
            })
            .collect();
        let mut progress: Vec<(u64, u64, u64)> = vec![(0, 0, 0); count];
        // Consecutive crashes per worker with no frame in between. A worker
        // that dies deterministically right after spawn (stale or broken
        // binary, protocol mismatch) would otherwise be respawned forever
        // and hang the job.
        let mut crash_streak: Vec<u32> = vec![0; count];
        let mut cancelled = false;
        let mut interrupted: Option<InterruptReason> = None;
        let mut worker_error: Option<String> = None;
        let mut finishing = false;

        for index in 0..count {
            self.pool.send(
                index,
                &Frame::Job {
                    job,
                    shard: ShardSpec {
                        index: index as u32,
                        count: count as u32,
                    },
                    spec: spec.clone(),
                },
            )?;
        }
        on_event(JobEvent::Started { workers: count });

        loop {
            // External stop conditions, polled between events.
            if !cancelled {
                if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                    interrupted = Some(InterruptReason::Cancelled);
                    cancelled = true;
                    self.pool.broadcast(&Frame::Cancel { job })?;
                } else if deadline.is_some_and(|d| Instant::now() >= d) {
                    interrupted = Some(InterruptReason::DeadlineExceeded);
                    cancelled = true;
                    self.pool.broadcast(&Frame::Cancel { job })?;
                }
            }

            // Wind-down: once the global frontier is provably empty, promise
            // the workers no more states and collect their reports.
            if !finishing
                && (0..count).all(|w| jobs[w].idle_received == Some(jobs[w].log.len() as u64))
            {
                finishing = true;
                self.pool.broadcast(&Frame::Finish { job })?;
            }
            if finishing && jobs.iter().all(|j| j.done.is_some()) {
                break;
            }

            let event = match self.pool.events().recv_timeout(Duration::from_millis(50)) {
                Ok(event) => event,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "worker pool event channel closed",
                    ));
                }
            };
            let PoolEvent {
                worker,
                generation,
                event,
            } = event;
            if generation != self.pool.generation(worker) {
                continue; // a dead process's leftovers
            }

            let frame = match event {
                WorkerEvent::Frame(frame) => {
                    if !matches!(*frame, Frame::Hello { .. }) {
                        crash_streak[worker] = 0;
                    }
                    *frame
                }
                WorkerEvent::Eof => {
                    // Crash: respawn, re-send the job, replay the log. The
                    // fresh process re-derives the shard's frontier from the
                    // replayable traces.
                    crash_streak[worker] += 1;
                    if crash_streak[worker] > MAX_CRASH_STREAK {
                        return Err(io::Error::other(format!(
                            "worker {worker} died {} times in a row without \
                             producing a frame; giving up (broken or stale \
                             worker binary?)",
                            crash_streak[worker]
                        )));
                    }
                    on_event(JobEvent::WorkerRestarted { worker });
                    self.pool.respawn(worker)?;
                    jobs[worker].idle_received = None;
                    jobs[worker].done = None;
                    progress[worker] = (0, 0, 0);
                    self.pool.send(
                        worker,
                        &Frame::Job {
                            job,
                            shard: ShardSpec {
                                index: worker as u32,
                                count: count as u32,
                            },
                            spec: spec.clone(),
                        },
                    )?;
                    if !jobs[worker].log.is_empty() {
                        self.pool.send(
                            worker,
                            &Frame::States {
                                job,
                                states: jobs[worker].log.clone(),
                            },
                        )?;
                    }
                    if cancelled {
                        self.pool.send(worker, &Frame::Cancel { job })?;
                    }
                    if finishing {
                        self.pool.send(worker, &Frame::Finish { job })?;
                    }
                    continue;
                }
            };

            match frame {
                // `hello` deliberately does not clear the crash streak: a
                // stale binary still greets before choking on the job frame.
                Frame::Hello { .. } => {}
                Frame::Forward { job: j, states } if j == job => {
                    // After `finish` the global frontier was provably empty,
                    // so anything a crash-recovered worker re-forwards was
                    // already explored by its owner: drop it.
                    if finishing {
                        continue;
                    }
                    let mut batches: Vec<Vec<FrontierExport>> = vec![Vec::new(); count];
                    for export in states {
                        let owner = shard_of(export.fingerprint, count as u32) as usize;
                        jobs[owner].log.push(export.clone());
                        batches[owner].push(export);
                    }
                    for (owner, batch) in batches.into_iter().enumerate() {
                        if batch.is_empty() {
                            continue;
                        }
                        jobs[owner].idle_received = None;
                        self.pool
                            .send(owner, &Frame::States { job, states: batch })?;
                    }
                }
                Frame::Progress {
                    job: j,
                    transitions,
                    unique_states,
                    depth,
                } if j == job => {
                    progress[worker] = (transitions, unique_states, depth);
                    let total_transitions: u64 = progress.iter().map(|p| p.0).sum();
                    on_event(JobEvent::Progress {
                        transitions: total_transitions,
                        unique_states: progress.iter().map(|p| p.1).sum(),
                        depth: progress.iter().map(|p| p.2).max().unwrap_or(0),
                    });
                    if !cancelled
                        && spec.max_transitions > 0
                        && total_transitions >= spec.max_transitions
                    {
                        cancelled = true;
                        self.pool.broadcast(&Frame::Cancel { job })?;
                    }
                }
                Frame::Violation { job: j, violation } if j == job => {
                    if !finishing {
                        on_event(JobEvent::Violation(violation));
                    }
                    if spec.stop_at_first_violation && !cancelled {
                        cancelled = true;
                        self.pool.broadcast(&Frame::Cancel { job })?;
                    }
                }
                // Believe an idle acknowledgement only if it covers every
                // record routed so far; a stale idle (sent before states
                // we've since routed) must not trigger termination.
                Frame::Idle { job: j, received }
                    if j == job && received == jobs[worker].log.len() as u64 =>
                {
                    jobs[worker].idle_received = Some(received);
                }
                Frame::JobDone {
                    job: j,
                    stats,
                    violations,
                } if j == job => {
                    jobs[worker].done = Some((stats, violations));
                }
                Frame::Error { job: j, message } if j == job => {
                    if worker_error.is_none() {
                        worker_error = Some(format!("worker {worker}: {message}"));
                    }
                    // Wind the job down so the pool returns to a clean
                    // idle state before we surface the error.
                    if !finishing {
                        finishing = true;
                        self.pool.broadcast(&Frame::Finish { job })?;
                    }
                }
                _ => {} // frames for other jobs (stale cancels etc.)
            }
        }

        if let Some(message) = worker_error {
            return Err(io::Error::new(io::ErrorKind::InvalidData, message));
        }

        Ok(merge_reports(
            spec,
            &scenario_name,
            jobs.into_iter().map(|j| j.done.unwrap()).collect(),
            start.elapsed(),
            interrupted,
        ))
    }
}

/// Merges the shards' final reports into one job-wide [`CheckReport`].
/// Additive counters sum (exact in crash-free runs — every unique state has
/// one owner), `max_depth` takes the max, `truncated` ORs, and the duration
/// is the job's wall clock. Violations are rebuilt with full replayable
/// traces and sorted into the engine's canonical order.
fn merge_reports(
    spec: &JobSpec,
    scenario_name: &str,
    shards: Vec<(nice_mc::SearchStats, Vec<WireViolation>)>,
    duration: Duration,
    interrupted: Option<InterruptReason>,
) -> CheckReport {
    let mut report = CheckReport::default();
    let engine = TraceEngine::from_config(&spec.config());
    let mut fault_counts = [0u64; FaultStats::KINDS];
    for (stats, violations) in shards {
        report.stats.transitions += stats.transitions;
        report.stats.unique_states += stats.unique_states;
        report.stats.terminal_states += stats.terminal_states;
        report.stats.symbolic_executions += stats.symbolic_executions;
        report.stats.pruned_by_strategy += stats.pruned_by_strategy;
        report.stats.pruned_by_por += stats.pruned_by_por;
        report.stats.dedup_hits += stats.dedup_hits;
        report.stats.work_steals += stats.work_steals;
        // Shards run concurrently, so the job's peak resident footprint is
        // the sum of the shards' peaks.
        report.stats.peak_explored_bytes += stats.peak_explored_bytes;
        report.stats.spilled_shards += stats.spilled_shards;
        report.stats.filter_hits += stats.filter_hits;
        report.stats.disk_probes += stats.disk_probes;
        report.stats.max_depth = report.stats.max_depth.max(stats.max_depth);
        report.stats.truncated |= stats.truncated;
        for (i, (_, count)) in stats.faults.labeled().iter().enumerate() {
            fault_counts[i] += count;
        }
        for v in violations {
            report.violations.push(Violation {
                property: v.property.clone(),
                message: v.message.clone(),
                trace: Trace {
                    scenario: scenario_name.to_string(),
                    engine,
                    steps: v.steps.into_iter().map(TraceStep::Transition).collect(),
                    property: Some(v.property),
                    message: Some(v.message),
                },
                // Shard-local discovery counters don't total meaningfully;
                // report the job-wide figures (filled in below).
                transitions_explored: 0,
                unique_states: 0,
            });
        }
    }
    report.stats.faults = FaultStats::from_counts(fault_counts);
    report.stats.duration = duration;
    report.lossy = spec.explored == ExploredMode::Bitstate;
    for v in &mut report.violations {
        v.transitions_explored = report.stats.transitions;
        v.unique_states = report.stats.unique_states;
    }
    report.outcome = match interrupted {
        Some(reason) => Outcome::Interrupted(reason),
        None => Outcome::Completed,
    };
    report.sort_violations();
    report
}
