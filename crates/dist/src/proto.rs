//! The `nice-dist-v1` wire protocol.
//!
//! Every frame is one line: `<len> <json>\n`, where `<len>` is the byte
//! length of `<json>` and `<json>` is a single-line JSON object carrying
//! `"schema": "nice-dist-v1"` and a `"frame"` discriminant. Frames are
//! hand-rolled (no serde in this offline build) and **self-validated**:
//! [`write_frame`] runs every outgoing document through the strict
//! [`nice_mc::jsonv`] validator before it touches the pipe, so a
//! malformed emitter fails loudly at the sender, not as a parse error at
//! the receiver.
//!
//! Transition sequences reuse the `nice-trace-v1` step objects
//! ([`nice_mc::trace::steps_to_json`]), so a violation streamed by a
//! worker carries the same replayable steps a trace file does.
//!
//! | frame | direction | meaning |
//! |-------|-----------|---------|
//! | `job` | C → W | start a job on a shard (scenario spec + engine config) |
//! | `states` | C → W | frontier exports routed to this worker's shard |
//! | `cancel` | C → W | stop expanding (the job still completes with `job_done`) |
//! | `finish` | C → W | no more states will arrive; finalize and report |
//! | `shutdown` | C → W | exit the worker process |
//! | `hello` | W → C | worker is up (pid) |
//! | `forward` | W → C | frontier exports owned by other shards |
//! | `progress` | W → C | periodic transition/state counters |
//! | `violation` | W → C | a violation, streamed live with its steps |
//! | `idle` | W → C | local frontier drained; `received` acknowledges injected states |
//! | `job_done` | W → C | final per-shard stats + violations |
//! | `error` | W → C | the job could not run (e.g. unknown scenario spec) |

use nice_mc::jsonv::{escape_json, validate_json};
use nice_mc::trace::json::{Json, ObjRef};
use nice_mc::trace::{json, steps_from_value, steps_to_json, TraceStep};
use nice_mc::{
    ExploredMode, FaultStats, FrontierExport, ReductionKind, SearchStats, ShardSpec, StrategyKind,
    Transition,
};
use std::io::{self, BufRead, Write};
use std::time::Duration;

use crate::coordinator::JobSpec;

/// The schema tag every `nice-dist-v1` frame carries.
pub const DIST_SCHEMA: &str = "nice-dist-v1";

/// One violation on the wire: property, message, and the replayable
/// transition steps from the initial state.
#[derive(Debug, Clone, PartialEq)]
pub struct WireViolation {
    /// The violated property.
    pub property: String,
    /// The violation message.
    pub message: String,
    /// The reproducing transition sequence from the initial state.
    pub steps: Vec<Transition>,
}

/// A `nice-dist-v1` frame. See the [module docs](self) for the table.
#[derive(Debug, Clone)]
pub enum Frame {
    /// C → W: start `job` on `shard` with the given spec.
    Job {
        /// Job id (coordinator-assigned, echoed by every worker frame).
        job: u64,
        /// The fingerprint slice this worker owns.
        shard: ShardSpec,
        /// What to check and how.
        spec: JobSpec,
    },
    /// C → W: frontier exports owned by the receiving worker's shard.
    States {
        /// Job id.
        job: u64,
        /// The exported states to inject.
        states: Vec<FrontierExport>,
    },
    /// C → W: stop expanding; keep consuming frames and report on `finish`.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// C → W: no further `states` frames will arrive — finalize the shard
    /// report and answer with `job_done`.
    Finish {
        /// Job id.
        job: u64,
    },
    /// C → W: exit the worker process.
    Shutdown,
    /// W → C: the worker process is up.
    Hello {
        /// The worker's OS process id.
        pid: u64,
    },
    /// W → C: frontier exports owned by other shards; the coordinator
    /// routes each to its owner.
    Forward {
        /// Job id.
        job: u64,
        /// The exported states.
        states: Vec<FrontierExport>,
    },
    /// W → C: periodic per-shard counters (budget/deadline enforcement and
    /// live progress).
    Progress {
        /// Job id.
        job: u64,
        /// Transitions executed by this shard so far.
        transitions: u64,
        /// Unique states owned by this shard so far.
        unique_states: u64,
        /// Depth of the path that triggered this report.
        depth: u64,
    },
    /// W → C: a violation found by this shard, streamed live.
    Violation {
        /// Job id.
        job: u64,
        /// The violation.
        violation: WireViolation,
    },
    /// W → C: the local frontier is empty. `received` acknowledges every
    /// state record injected so far — the coordinator's termination
    /// detector compares it against what it forwarded.
    Idle {
        /// Job id.
        job: u64,
        /// Total state records received for this job so far.
        received: u64,
    },
    /// W → C: the shard's final report.
    JobDone {
        /// Job id.
        job: u64,
        /// Per-shard search statistics.
        stats: SearchStats,
        /// Every violation this shard found.
        violations: Vec<WireViolation>,
    },
    /// W → C: the job could not run.
    Error {
        /// Job id.
        job: u64,
        /// What went wrong.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn steps_json(transitions: &[Transition]) -> String {
    let steps: Vec<TraceStep> = transitions
        .iter()
        .cloned()
        .map(TraceStep::Transition)
        .collect();
    steps_to_json(&steps)
}

fn exports_json(states: &[FrontierExport]) -> String {
    let rendered: Vec<String> = states
        .iter()
        .map(|s| {
            format!(
                "{{\"fingerprint\":{},\"steps\":{},\"sleep\":{}}}",
                s.fingerprint,
                steps_json(&s.trace),
                steps_json(&s.sleep)
            )
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

fn stats_json(stats: &SearchStats) -> String {
    let faults: Vec<String> = stats
        .faults
        .labeled()
        .iter()
        .map(|(name, count)| format!("\"{name}\":{count}"))
        .collect();
    format!(
        "{{\"transitions\":{},\"unique_states\":{},\"terminal_states\":{},\
         \"symbolic_executions\":{},\"pruned_by_strategy\":{},\"pruned_by_por\":{},\
         \"dedup_hits\":{},\"work_steals\":{},\"peak_explored_bytes\":{},\
         \"spilled_shards\":{},\"filter_hits\":{},\"disk_probes\":{},\
         \"max_depth\":{},\"truncated\":{},\"duration_ms\":{},\
         \"faults\":{{{}}}}}",
        stats.transitions,
        stats.unique_states,
        stats.terminal_states,
        stats.symbolic_executions,
        stats.pruned_by_strategy,
        stats.pruned_by_por,
        stats.dedup_hits,
        stats.work_steals,
        stats.peak_explored_bytes,
        stats.spilled_shards,
        stats.filter_hits,
        stats.disk_probes,
        stats.max_depth,
        stats.truncated,
        stats.duration.as_millis(),
        faults.join(",")
    )
}

fn violation_json(v: &WireViolation) -> String {
    format!(
        "{{\"property\":\"{}\",\"message\":\"{}\",\"steps\":{}}}",
        escape_json(&v.property),
        escape_json(&v.message),
        steps_json(&v.steps)
    )
}

fn spec_json(spec: &JobSpec) -> String {
    format!(
        "{{\"scenario\":\"{}\",\"strategy\":\"{}\",\"reduction\":\"{}\",\"faults\":{},\
         \"stop_at_first\":{},\"max_transitions\":{},\"max_depth\":{},\"time_budget_ms\":{},\
         \"explored\":\"{}\",\"mem_limit\":{}}}",
        escape_json(&spec.scenario),
        spec.strategy.name(),
        spec.reduction.name(),
        spec.inject_faults,
        spec.stop_at_first_violation,
        spec.max_transitions,
        spec.max_depth,
        spec.time_budget_ms,
        spec.explored.name(),
        spec.mem_limit,
    )
}

impl Frame {
    /// Renders the frame as its single-line `nice-dist-v1` JSON document.
    pub fn to_json(&self) -> String {
        let body = match self {
            Frame::Job { job, shard, spec } => format!(
                "\"frame\":\"job\",\"job\":{job},\"shard\":{{\"index\":{},\"count\":{}}},\"spec\":{}",
                shard.index,
                shard.count,
                spec_json(spec)
            ),
            Frame::States { job, states } => format!(
                "\"frame\":\"states\",\"job\":{job},\"states\":{}",
                exports_json(states)
            ),
            Frame::Cancel { job } => format!("\"frame\":\"cancel\",\"job\":{job}"),
            Frame::Finish { job } => format!("\"frame\":\"finish\",\"job\":{job}"),
            Frame::Shutdown => "\"frame\":\"shutdown\"".to_string(),
            Frame::Hello { pid } => format!("\"frame\":\"hello\",\"pid\":{pid}"),
            Frame::Forward { job, states } => format!(
                "\"frame\":\"forward\",\"job\":{job},\"states\":{}",
                exports_json(states)
            ),
            Frame::Progress {
                job,
                transitions,
                unique_states,
                depth,
            } => format!(
                "\"frame\":\"progress\",\"job\":{job},\"transitions\":{transitions},\
                 \"unique_states\":{unique_states},\"depth\":{depth}"
            ),
            Frame::Violation { job, violation } => format!(
                "\"frame\":\"violation\",\"job\":{job},\"violation\":{}",
                violation_json(violation)
            ),
            Frame::Idle { job, received } => {
                format!("\"frame\":\"idle\",\"job\":{job},\"received\":{received}")
            }
            Frame::JobDone {
                job,
                stats,
                violations,
            } => {
                let rendered: Vec<String> = violations.iter().map(violation_json).collect();
                format!(
                    "\"frame\":\"job_done\",\"job\":{job},\"stats\":{},\"violations\":[{}]",
                    stats_json(stats),
                    rendered.join(",")
                )
            }
            Frame::Error { job, message } => format!(
                "\"frame\":\"error\",\"job\":{job},\"message\":\"{}\"",
                escape_json(message)
            ),
        };
        format!("{{\"schema\":\"{DIST_SCHEMA}\",{body}}}")
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn need<'a>(obj: &ObjRef<'a>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing '{key}'"))
}

fn need_u64(obj: &ObjRef<'_>, key: &str) -> Result<u64, String> {
    need(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

fn need_bool(obj: &ObjRef<'_>, key: &str) -> Result<bool, String> {
    need(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("'{key}' must be a boolean"))
}

fn need_str<'a>(obj: &ObjRef<'a>, key: &str) -> Result<&'a str, String> {
    need(obj, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' must be a string"))
}

fn transitions_from(value: &Json) -> Result<Vec<Transition>, String> {
    Ok(steps_from_value(value)?
        .into_iter()
        .map(|step| {
            let TraceStep::Transition(t) = step;
            t
        })
        .collect())
}

fn exports_from(value: &Json) -> Result<Vec<FrontierExport>, String> {
    let arr = value.as_arr().ok_or("'states' must be an array")?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            let obj = v.as_obj().ok_or(format!("state {i}: not an object"))?;
            Ok(FrontierExport {
                fingerprint: need_u64(&obj, "fingerprint")
                    .map_err(|e| format!("state {i}: {e}"))?,
                trace: transitions_from(
                    need(&obj, "steps").map_err(|e| format!("state {i}: {e}"))?,
                )
                .map_err(|e| format!("state {i}: {e}"))?,
                sleep: transitions_from(
                    need(&obj, "sleep").map_err(|e| format!("state {i}: {e}"))?,
                )
                .map_err(|e| format!("state {i}: {e}"))?,
            })
        })
        .collect()
}

fn stats_from(value: &Json) -> Result<SearchStats, String> {
    let obj = value.as_obj().ok_or("'stats' must be an object")?;
    let faults_obj = need(&obj, "faults")?
        .as_obj()
        .ok_or("'faults' must be an object")?;
    let mut counts = [0u64; FaultStats::KINDS];
    for (i, (name, _)) in FaultStats::default().labeled().iter().enumerate() {
        counts[i] = need_u64(&faults_obj, name)?;
    }
    Ok(SearchStats {
        transitions: need_u64(&obj, "transitions")?,
        unique_states: need_u64(&obj, "unique_states")?,
        terminal_states: need_u64(&obj, "terminal_states")?,
        symbolic_executions: need_u64(&obj, "symbolic_executions")?,
        pruned_by_strategy: need_u64(&obj, "pruned_by_strategy")?,
        pruned_by_por: need_u64(&obj, "pruned_by_por")?,
        dedup_hits: need_u64(&obj, "dedup_hits")?,
        work_steals: need_u64(&obj, "work_steals")?,
        peak_explored_bytes: need_u64(&obj, "peak_explored_bytes")?,
        spilled_shards: need_u64(&obj, "spilled_shards")?,
        filter_hits: need_u64(&obj, "filter_hits")?,
        disk_probes: need_u64(&obj, "disk_probes")?,
        faults: FaultStats::from_counts(counts),
        max_depth: need_u64(&obj, "max_depth")? as usize,
        truncated: need_bool(&obj, "truncated")?,
        duration: Duration::from_millis(need_u64(&obj, "duration_ms")?),
    })
}

fn violation_from(value: &Json) -> Result<WireViolation, String> {
    let obj = value.as_obj().ok_or("violation must be an object")?;
    Ok(WireViolation {
        property: need_str(&obj, "property")?.to_string(),
        message: need_str(&obj, "message")?.to_string(),
        steps: transitions_from(need(&obj, "steps")?)?,
    })
}

fn spec_from(value: &Json) -> Result<JobSpec, String> {
    let obj = value.as_obj().ok_or("'spec' must be an object")?;
    let strategy = need_str(&obj, "strategy")?;
    let reduction = need_str(&obj, "reduction")?;
    let explored = need_str(&obj, "explored")?;
    Ok(JobSpec {
        scenario: need_str(&obj, "scenario")?.to_string(),
        strategy: StrategyKind::parse(strategy)
            .ok_or_else(|| format!("unknown strategy '{strategy}'"))?,
        reduction: ReductionKind::parse(reduction)
            .ok_or_else(|| format!("unknown reduction '{reduction}'"))?,
        inject_faults: need_bool(&obj, "faults")?,
        stop_at_first_violation: need_bool(&obj, "stop_at_first")?,
        max_transitions: need_u64(&obj, "max_transitions")?,
        max_depth: need_u64(&obj, "max_depth")? as usize,
        time_budget_ms: need_u64(&obj, "time_budget_ms")?,
        explored: ExploredMode::parse(explored)
            .ok_or_else(|| format!("unknown explored mode '{explored}'"))?,
        mem_limit: need_u64(&obj, "mem_limit")?,
    })
}

impl Frame {
    /// Parses a single-line `nice-dist-v1` JSON document.
    pub fn from_json(input: &str) -> Result<Frame, String> {
        let value = json::parse(input)?;
        let obj = value.as_obj().ok_or("frame must be a JSON object")?;
        let schema = need_str(&obj, "schema")?;
        if schema != DIST_SCHEMA {
            return Err(format!("unknown schema '{schema}' (want '{DIST_SCHEMA}')"));
        }
        let frame = need_str(&obj, "frame")?;
        match frame {
            "job" => {
                let shard_obj = need(&obj, "shard")?
                    .as_obj()
                    .ok_or("'shard' must be an object")?;
                let count = need_u64(&shard_obj, "count")? as u32;
                let index = need_u64(&shard_obj, "index")? as u32;
                if count == 0 || index >= count {
                    return Err(format!("invalid shard {index}/{count}"));
                }
                Ok(Frame::Job {
                    job: need_u64(&obj, "job")?,
                    shard: ShardSpec { index, count },
                    spec: spec_from(need(&obj, "spec")?)?,
                })
            }
            "states" => Ok(Frame::States {
                job: need_u64(&obj, "job")?,
                states: exports_from(need(&obj, "states")?)?,
            }),
            "cancel" => Ok(Frame::Cancel {
                job: need_u64(&obj, "job")?,
            }),
            "finish" => Ok(Frame::Finish {
                job: need_u64(&obj, "job")?,
            }),
            "shutdown" => Ok(Frame::Shutdown),
            "hello" => Ok(Frame::Hello {
                pid: need_u64(&obj, "pid")?,
            }),
            "forward" => Ok(Frame::Forward {
                job: need_u64(&obj, "job")?,
                states: exports_from(need(&obj, "states")?)?,
            }),
            "progress" => Ok(Frame::Progress {
                job: need_u64(&obj, "job")?,
                transitions: need_u64(&obj, "transitions")?,
                unique_states: need_u64(&obj, "unique_states")?,
                depth: need_u64(&obj, "depth")?,
            }),
            "violation" => Ok(Frame::Violation {
                job: need_u64(&obj, "job")?,
                violation: violation_from(need(&obj, "violation")?)?,
            }),
            "idle" => Ok(Frame::Idle {
                job: need_u64(&obj, "job")?,
                received: need_u64(&obj, "received")?,
            }),
            "job_done" => {
                let violations = need(&obj, "violations")?
                    .as_arr()
                    .ok_or("'violations' must be an array")?
                    .iter()
                    .map(violation_from)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Frame::JobDone {
                    job: need_u64(&obj, "job")?,
                    stats: stats_from(need(&obj, "stats")?)?,
                    violations,
                })
            }
            "error" => Ok(Frame::Error {
                job: need_u64(&obj, "job")?,
                message: need_str(&obj, "message")?.to_string(),
            }),
            other => Err(format!("unknown frame kind '{other}'")),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame (`<len> <json>\n`) and flushes. The
/// JSON is run through the strict [`nice_mc::jsonv`] validator first —
/// the emitters are hand-rolled, so every frame proves its own
/// well-formedness before it crosses the process boundary.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let json = frame.to_json();
    validate_json(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("outgoing frame: {e}")))?;
    w.write_all(format!("{} {json}\n", json.len()).as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF (the
/// peer closed the pipe); a truncated or corrupt frame is an
/// `InvalidData` error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Frame>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end_matches('\n');
    let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    let (len, json) = line
        .split_once(' ')
        .ok_or_else(|| bad("frame missing length prefix".to_string()))?;
    let len: usize = len
        .parse()
        .map_err(|_| bad(format!("bad frame length '{len}'")))?;
    if json.len() != len {
        return Err(bad(format!(
            "frame length mismatch: prefix says {len}, got {} bytes",
            json.len()
        )));
    }
    Frame::from_json(json).map(Some).map_err(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_mc::CheckerConfig;

    fn sample_exports() -> Vec<FrontierExport> {
        // Real transitions from a real scenario so the steps on the wire are
        // representative of every transition kind's fields.
        let scenario = nice_apps::workloads::ping_workload(1, true);
        let state = nice_mc::SystemState::initial(&scenario);
        let steps =
            nice_mc::transition::enabled_transitions(&state, &scenario, &CheckerConfig::default());
        vec![FrontierExport {
            fingerprint: state.fingerprint(),
            trace: steps.clone(),
            sleep: steps,
        }]
    }

    fn round_trip(frame: Frame) {
        let json = frame.to_json();
        validate_json(&json).expect("frame validates");
        // Decode → re-encode must be the identity on the wire form (frames
        // hold types without PartialEq, so equality is checked on the JSON).
        assert_eq!(
            Frame::from_json(&json).expect("frame parses").to_json(),
            json
        );
        // And through the length-prefixed pipe framing.
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("write");
        let mut r = io::BufReader::new(buf.as_slice());
        let read = read_frame(&mut r).expect("read").expect("one frame");
        assert_eq!(read.to_json(), json);
        assert!(read_frame(&mut r).expect("eof").is_none());
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let spec = JobSpec {
            scenario: "chain:5:2".to_string(),
            strategy: StrategyKind::NoDelay,
            reduction: ReductionKind::Por,
            inject_faults: true,
            stop_at_first_violation: false,
            max_transitions: 12345,
            max_depth: 400,
            time_budget_ms: 60_000,
            explored: ExploredMode::Tiered,
            mem_limit: 1 << 20,
        };
        let stats = SearchStats {
            transitions: 11,
            unique_states: 7,
            terminal_states: 2,
            symbolic_executions: 1,
            pruned_by_strategy: 3,
            pruned_by_por: 4,
            dedup_hits: 5,
            work_steals: 6,
            peak_explored_bytes: 4096,
            spilled_shards: 2,
            filter_hits: 13,
            disk_probes: 8,
            faults: FaultStats {
                drops: 1,
                crashes: 2,
                ..FaultStats::default()
            },
            max_depth: 9,
            truncated: true,
            duration: Duration::from_millis(250),
        };
        let violation = WireViolation {
            property: "NoBlackHoles".to_string(),
            message: "packet \"lost\"\nat sw1".to_string(),
            steps: sample_exports().remove(0).trace,
        };
        for frame in [
            Frame::Job {
                job: 1,
                shard: ShardSpec { index: 1, count: 4 },
                spec: spec.clone(),
            },
            Frame::States {
                job: 1,
                states: sample_exports(),
            },
            Frame::Cancel { job: 1 },
            Frame::Finish { job: 1 },
            Frame::Shutdown,
            Frame::Hello { pid: 4242 },
            Frame::Forward {
                job: 1,
                states: sample_exports(),
            },
            Frame::Progress {
                job: 1,
                transitions: 100,
                unique_states: 60,
                depth: 12,
            },
            Frame::Violation {
                job: 1,
                violation: violation.clone(),
            },
            Frame::Idle {
                job: 1,
                received: 17,
            },
            Frame::JobDone {
                job: 1,
                stats,
                violations: vec![violation],
            },
            Frame::Error {
                job: 1,
                message: "unknown scenario 'nope'".to_string(),
            },
        ] {
            round_trip(frame);
        }
    }

    #[test]
    fn rejects_foreign_schemas_and_corrupt_framing() {
        assert!(Frame::from_json("{\"schema\":\"nice-trace-v1\",\"frame\":\"job\"}").is_err());
        assert!(Frame::from_json("{\"frame\":\"cancel\",\"job\":1}").is_err());
        let mut r = io::BufReader::new(&b"9 {\"a\":1}\n"[..]);
        assert!(read_frame(&mut r).is_err(), "length mismatch must fail");
        let mut r = io::BufReader::new(&b"nolength\n"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn u64_fingerprints_survive_the_wire() {
        let frame = Frame::States {
            job: 1,
            states: vec![FrontierExport {
                fingerprint: u64::MAX,
                trace: Vec::new(),
                sleep: Vec::new(),
            }],
        };
        round_trip(frame);
    }
}
