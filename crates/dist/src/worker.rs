//! The worker main loop: one `nice-dist-worker` process.
//!
//! A worker owns one shard of the fingerprint space per job. Its expansion
//! loop is a [`nice_mc::ShardedSearch`] — the *same* loop the in-process
//! sequential engine runs (a solo shard **is** the sequential engine), so
//! a 1-worker distributed run is bit-identical to `ModelChecker::session()`
//! by construction.
//!
//! Protocol, per job:
//!
//! 1. coordinator sends `job` (scenario spec + shard assignment);
//! 2. the worker steps its shard, emitting `forward` frames for successors
//!    owned by other shards, `violation` frames as they are found, and
//!    `progress` frames every [`PROGRESS_EVERY`] transitions;
//! 3. whenever the local frontier drains it announces `idle` carrying the
//!    number of state records received so far (the coordinator's
//!    termination detector compares that against what it routed here);
//! 4. `states` frames re-open the frontier; `cancel` stops expansion but
//!    keeps the worker consuming (and acknowledging) frames;
//! 5. `finish` promises no more states: the worker replies `job_done` with
//!    its shard's final stats and violations, then waits for the next job.
//!
//! Stdin is drained by a dedicated reader thread into a channel so the
//! expansion loop can poll for `cancel`/`states` between steps without
//! blocking.

use crate::proto::{read_frame, write_frame, Frame, WireViolation};
use crate::DIE_AFTER_ENV;
use nice_mc::{ModelChecker, ShardSpec, ShardedSearch, StepOutcome, Violation};
use std::io::{self, BufWriter, Write};
use std::sync::mpsc::{Receiver, TryRecvError};

/// Emit a `progress` frame every this many locally-executed transitions.
pub const PROGRESS_EVERY: u64 = 2048;

/// What the per-job loop asks the process loop to do next.
enum After {
    /// Job finished (or was refused); wait for the next `job` frame.
    NextJob,
    /// `shutdown` arrived or stdin closed: exit the process loop.
    Exit,
}

/// Runs the worker protocol over `stdin`/`stdout` until `shutdown` or EOF.
/// This is the whole body of the `nice-dist-worker` binary; it is a library
/// function so in-process tests can drive it over arbitrary pipes.
pub fn worker_main() -> io::Result<()> {
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    write_frame(
        &mut out,
        &Frame::Hello {
            pid: u64::from(std::process::id()),
        },
    )?;

    let die_after: Option<u64> = std::env::var(DIE_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());

    // Reader thread: stdin → channel. Closing the channel (EOF or a broken
    // pipe) tells the main loop the coordinator is gone.
    let (tx, rx) = std::sync::mpsc::channel::<Frame>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        let mut input = stdin.lock();
        while let Ok(Some(frame)) = read_frame(&mut input) {
            if tx.send(frame).is_err() {
                break;
            }
        }
    });

    loop {
        let Ok(frame) = rx.recv() else {
            return Ok(());
        };
        match frame {
            Frame::Job { job, shard, spec } => {
                let after = match nice_apps::workloads::resolve(&spec.scenario) {
                    Some(scenario) => {
                        let checker = ModelChecker::new(scenario, spec.config());
                        run_job(job, &checker, shard, &rx, &mut out, die_after)?
                    }
                    None => {
                        write_frame(
                            &mut out,
                            &Frame::Error {
                                job,
                                message: format!("unknown scenario spec '{}'", spec.scenario),
                            },
                        )?;
                        refuse_job(job, &rx, &mut out)?
                    }
                };
                if matches!(after, After::Exit) {
                    return Ok(());
                }
            }
            Frame::Shutdown => return Ok(()),
            // A `finish` outside a job (e.g. re-sent while this worker was
            // respawning) still deserves its `job_done` so the coordinator's
            // collection loop never hangs; stale `states`/`cancel` frames
            // for a job this process never started are dropped.
            Frame::Finish { job } => write_frame(
                &mut out,
                &Frame::JobDone {
                    job,
                    stats: Default::default(),
                    violations: Vec::new(),
                },
            )?,
            _ => {}
        }
    }
}

/// After refusing a job (`error` sent), keep consuming its frames until the
/// coordinator winds it down with `finish` — answered with an empty
/// `job_done` so every `finish` gets exactly one reply.
fn refuse_job(job: u64, rx: &Receiver<Frame>, out: &mut impl Write) -> io::Result<After> {
    loop {
        let Ok(frame) = rx.recv() else {
            return Ok(After::Exit);
        };
        match frame {
            Frame::Finish { job: j } if j == job => {
                write_frame(
                    out,
                    &Frame::JobDone {
                        job,
                        stats: Default::default(),
                        violations: Vec::new(),
                    },
                )?;
                return Ok(After::NextJob);
            }
            Frame::Shutdown => return Ok(After::Exit),
            _ => {}
        }
    }
}

fn wire_violation(v: &Violation) -> WireViolation {
    WireViolation {
        property: v.property.clone(),
        message: v.message.clone(),
        steps: v.trace.transitions().into_iter().cloned().collect(),
    }
}

/// Drives one job on one shard. Returns when the job is wound down with
/// `finish` (reply: `job_done`) or the process should exit.
fn run_job(
    job: u64,
    checker: &ModelChecker,
    shard: ShardSpec,
    rx: &Receiver<Frame>,
    out: &mut impl Write,
    die_after: Option<u64>,
) -> io::Result<After> {
    let mut search = ShardedSearch::new(checker, shard);
    let mut received: u64 = 0;
    let mut finish = false;
    let mut idle_at: Option<u64> = None;
    let mut sent_violations = 0usize;
    let mut last_progress: u64 = 0;

    loop {
        // Drain control frames without blocking between steps.
        loop {
            match rx.try_recv() {
                Ok(frame) => {
                    if let Some(after) = handle_frame(
                        frame,
                        job,
                        &mut search,
                        &mut received,
                        &mut finish,
                        &mut idle_at,
                        out,
                    )? {
                        return Ok(after);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Ok(After::Exit),
            }
        }

        let outcome = search.step();

        // Stream exports, new violations, and progress.
        let forwards = search.take_forwards();
        if !forwards.is_empty() {
            write_frame(
                out,
                &Frame::Forward {
                    job,
                    states: forwards,
                },
            )?;
        }
        let report = search.report();
        while sent_violations < report.violations.len() {
            write_frame(
                out,
                &Frame::Violation {
                    job,
                    violation: wire_violation(&report.violations[sent_violations]),
                },
            )?;
            sent_violations += 1;
        }
        let stats = &search.report().stats;
        if stats.transitions - last_progress >= PROGRESS_EVERY {
            last_progress = stats.transitions;
            write_frame(
                out,
                &Frame::Progress {
                    job,
                    transitions: stats.transitions,
                    unique_states: stats.unique_states,
                    depth: stats.max_depth as u64,
                },
            )?;
        }
        if let Some(limit) = die_after {
            if stats.transitions >= limit {
                // Crash-recovery hook: die the way a SIGKILL'd worker dies —
                // no flush, no goodbye frame. The coordinator must detect
                // the EOF and re-derive this shard's work.
                std::process::abort();
            }
        }

        if outcome == StepOutcome::Expanded {
            continue;
        }

        // Frontier drained (or search stopped). Finalize if the coordinator
        // already promised no more states; otherwise announce idle once per
        // acknowledgement level and block for the next frame.
        if finish {
            let report = search.finish();
            let violations = report.violations.iter().map(wire_violation).collect();
            write_frame(
                out,
                &Frame::JobDone {
                    job,
                    stats: report.stats,
                    violations,
                },
            )?;
            return Ok(After::NextJob);
        }
        if idle_at != Some(received) {
            idle_at = Some(received);
            write_frame(out, &Frame::Idle { job, received })?;
        }
        let Ok(frame) = rx.recv() else {
            return Ok(After::Exit);
        };
        if let Some(after) = handle_frame(
            frame,
            job,
            &mut search,
            &mut received,
            &mut finish,
            &mut idle_at,
            out,
        )? {
            return Ok(after);
        }
    }
}

/// Applies one control frame to the running job. `Some(after)` means the
/// job loop should return.
fn handle_frame(
    frame: Frame,
    job: u64,
    search: &mut ShardedSearch<'_>,
    received: &mut u64,
    finish: &mut bool,
    idle_at: &mut Option<u64>,
    out: &mut impl Write,
) -> io::Result<Option<After>> {
    match frame {
        Frame::States { job: j, states } if j == job => {
            *received += states.len() as u64;
            // New acknowledgement level: the next drain must re-announce.
            *idle_at = None;
            for export in states {
                search.inject(export);
            }
        }
        Frame::Cancel { job: j } if j == job => search.cancel(),
        Frame::Finish { job: j } if j == job => *finish = true,
        Frame::Shutdown => return Ok(Some(After::Exit)),
        // Stale frames for earlier jobs (e.g. a cancel that raced our
        // job_done) are dropped; the coordinator filters by job id too.
        Frame::States { .. } | Frame::Cancel { .. } | Frame::Finish { .. } => {}
        other => {
            write_frame(
                out,
                &Frame::Error {
                    job,
                    message: format!("unexpected frame mid-job: {other:?}"),
                },
            )?;
        }
    }
    Ok(None)
}
