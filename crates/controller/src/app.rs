//! The controller-application trait.
//!
//! Applications implement the same event handlers a NOX Python program
//! defines (Figure 3): `packet_in`, `switch_join`, `switch_leave`, plus the
//! statistics, barrier and port-status handlers used by the load balancer and
//! traffic-engineering applications. Handlers execute atomically (one handler
//! invocation is one model-checker transition) and interact with the network
//! only through [`crate::ops::ControllerOps`].
//!
//! Handlers receive their data-dependent inputs as possibly-symbolic values
//! and route any branching on them through [`nice_sym::Env`]. The model
//! checker calls them with concrete inputs and a [`nice_sym::ConcreteEnv`];
//! the `discover_packets` / `discover_stats` transitions call the *same
//! handler code* with symbolic inputs and a [`nice_sym::SymExecEnv`] — the
//! Rust equivalent of NICE testing unmodified applications.

use crate::ops::ControllerOps;
use nice_openflow::{BufferId, Fnv64, PacketInReason, PortId, SwitchId};
use nice_sym::{Env, SymPacket, SymStats};

/// The context of a `packet_in` event: where the packet showed up and which
/// switch buffer holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInContext {
    /// The switch that sent the packet to the controller.
    pub switch: SwitchId,
    /// The port the packet arrived on.
    pub in_port: PortId,
    /// The buffer slot holding the packet at the switch.
    pub buffer_id: BufferId,
    /// Why the switch sent the packet up (table miss or an explicit
    /// send-to-controller action). The load balancer of Section 8.2 branches
    /// on this "reason code", which is exactly what BUG-V gets wrong.
    pub reason: PacketInReason,
}

/// A controller application (the system under test).
///
/// `Send + Sync` is required because system states (which own a clone of the
/// application) migrate between the worker threads of the parallel search.
/// Applications are plain data — the bound is satisfied automatically unless
/// an implementation reaches for `Rc`/`RefCell`.
pub trait ControllerApp: Send + Sync {
    /// A short name used in traces and reports.
    fn name(&self) -> &str;

    /// Handles a packet arriving at the controller.
    fn packet_in(
        &mut self,
        ops: &mut dyn ControllerOps,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    );

    /// Handles a switch joining the network.
    fn switch_join(&mut self, _ops: &mut dyn ControllerOps, _switch: SwitchId, _ports: &[PortId]) {}

    /// Handles a switch leaving the network.
    fn switch_leave(&mut self, _ops: &mut dyn ControllerOps, _switch: SwitchId) {}

    /// Handles a port-statistics reply.
    fn port_stats_in(
        &mut self,
        _ops: &mut dyn ControllerOps,
        _env: &mut dyn Env,
        _switch: SwitchId,
        _stats: &SymStats,
    ) {
    }

    /// Handles a barrier reply.
    fn barrier_reply(&mut self, _ops: &mut dyn ControllerOps, _switch: SwitchId, _request_id: u64) {
    }

    /// Handles a port status change (link up/down).
    fn port_status(
        &mut self,
        _ops: &mut dyn ControllerOps,
        _switch: SwitchId,
        _port: PortId,
        _link_up: bool,
    ) {
    }

    /// Clones the application, including all controller state. The model
    /// checker clones applications when storing states on the search frontier
    /// and before every symbolic handler execution.
    fn clone_app(&self) -> Box<dyn ControllerApp>;

    /// Type-erased access to the concrete application, used by
    /// application-specific correctness properties (the Python-snippet
    /// properties of Section 5.1) to inspect controller state.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Absorbs the controller's global state into the system fingerprint.
    /// This is the `state(ctrl)` serialisation of Figure 5.
    fn fingerprint(&self, hasher: &mut Fnv64);

    /// True if the application issues statistics requests and therefore wants
    /// the model checker to explore symbolic statistics replies
    /// (`discover_stats`).
    fn uses_stats(&self) -> bool {
        false
    }

    /// Provenance ids of packets the application itself is holding for later
    /// re-delivery (for example a crash-recovery buffer of unconfirmed
    /// packet-outs). Liveness-style properties treat held packets as still in
    /// flight: the application can — and has promised to — resend them.
    fn held_packets(&self) -> Vec<nice_openflow::PacketId> {
        Vec::new()
    }

    /// Optional flow-independence oracle used by the FLOW-IR search strategy
    /// (Section 4): returns `true` if the two packets belong to the same
    /// logical flow, i.e. their relative ordering matters. Applications that
    /// do not care can keep the default (every pair is considered dependent,
    /// which makes FLOW-IR a no-op for them).
    fn is_same_flow(&self, _a: &nice_openflow::Packet, _b: &nice_openflow::Packet) -> bool {
        true
    }
}

impl Clone for Box<dyn ControllerApp> {
    fn clone(&self) -> Self {
        self.clone_app()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MessageSink;
    use nice_openflow::{MacAddr, Packet};
    use nice_sym::ConcreteEnv;

    /// A trivial hub application used to exercise the trait plumbing.
    #[derive(Debug, Clone, Default)]
    struct Hub {
        packets_seen: u64,
    }

    impl ControllerApp for Hub {
        fn name(&self) -> &str {
            "hub"
        }

        fn packet_in(
            &mut self,
            ops: &mut dyn ControllerOps,
            _env: &mut dyn Env,
            ctx: PacketInContext,
            _packet: &SymPacket,
        ) {
            self.packets_seen += 1;
            ops.flood_packet(ctx.switch, ctx.buffer_id, ctx.in_port);
        }

        fn clone_app(&self) -> Box<dyn ControllerApp> {
            Box::new(self.clone())
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn fingerprint(&self, hasher: &mut Fnv64) {
            hasher.write_u64(self.packets_seen);
        }
    }

    #[test]
    fn hub_floods_every_packet_and_default_handlers_are_noops() {
        let mut app = Hub::default();
        let mut sink = MessageSink::new(0);
        let mut env = ConcreteEnv::new();
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let ctx = PacketInContext {
            switch: SwitchId(1),
            in_port: PortId(1),
            buffer_id: BufferId(3),
            reason: PacketInReason::NoMatch,
        };
        app.packet_in(&mut sink, &mut env, ctx, &SymPacket::from_concrete(&pkt));
        assert_eq!(sink.messages().len(), 1);
        assert_eq!(app.packets_seen, 1);

        // Default handlers do nothing.
        app.switch_join(&mut sink, SwitchId(1), &[PortId(1)]);
        app.switch_leave(&mut sink, SwitchId(1));
        app.barrier_reply(&mut sink, SwitchId(1), 0);
        app.port_status(&mut sink, SwitchId(1), PortId(1), false);
        assert_eq!(sink.messages().len(), 1);
        assert!(!app.uses_stats());
        assert!(app.is_same_flow(&pkt, &pkt));
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut app = Hub { packets_seen: 9 };
        let boxed: Box<dyn ControllerApp> = app.clone_app();
        let cloned = boxed.clone();
        let mut h1 = Fnv64::new();
        let mut h2 = Fnv64::new();
        app.fingerprint(&mut h1);
        cloned.fingerprint(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        // Mutating the original does not affect the clone.
        app.packets_seen += 1;
        let mut h3 = Fnv64::new();
        app.fingerprint(&mut h3);
        assert_ne!(h2.finish(), h3.finish());
    }
}
