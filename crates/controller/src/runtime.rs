//! The controller runtime: owns the application, dispatches OpenFlow
//! messages to its handlers, and exposes the state fingerprint used for
//! state matching.

use crate::app::{ControllerApp, PacketInContext};
use crate::ops::MessageSink;
use nice_openflow::{Fingerprint, Fnv64, OfMessage, PortId, SwitchId};
use nice_sym::{ConcreteEnv, Env, SymPacket, SymStats};

/// The controller side of the modelled system.
///
/// One call to [`ControllerRuntime::handle_message`] is one atomic handler
/// execution (one `ctrl` transition in the model checker); the messages it
/// returns are then queued on the controller→switch channels by the caller.
pub struct ControllerRuntime {
    app: Box<dyn ControllerApp>,
    next_request_id: u64,
    /// Number of handler invocations executed so far (diagnostic only, not
    /// part of the semantic state, but included in the fingerprint to stay
    /// faithful to hashing "the controller program's global variables plus
    /// its execution history" — two states that differ only here have
    /// necessarily processed different message sequences).
    handled_events: u64,
}

impl Clone for ControllerRuntime {
    fn clone(&self) -> Self {
        ControllerRuntime {
            app: self.app.clone_app(),
            next_request_id: self.next_request_id,
            handled_events: self.handled_events,
        }
    }
}

impl std::fmt::Debug for ControllerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerRuntime")
            .field("app", &self.app.name())
            .field("next_request_id", &self.next_request_id)
            .field("handled_events", &self.handled_events)
            .finish()
    }
}

impl ControllerRuntime {
    /// Creates a runtime around an application.
    pub fn new(app: Box<dyn ControllerApp>) -> Self {
        ControllerRuntime {
            app,
            next_request_id: 1,
            handled_events: 0,
        }
    }

    /// The application's name.
    pub fn app_name(&self) -> &str {
        self.app.name()
    }

    /// Read-only access to the application (used by correctness properties
    /// that need application-specific state, and by FLOW-IR's
    /// `is_same_flow`).
    pub fn app(&self) -> &dyn ControllerApp {
        self.app.as_ref()
    }

    /// Downcasts the application to a concrete type; application-specific
    /// correctness properties use this to inspect controller state.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    /// Number of handler invocations executed so far.
    pub fn handled_events(&self) -> u64 {
        self.handled_events
    }

    /// True if the application uses statistics (enables `discover_stats`).
    pub fn uses_stats(&self) -> bool {
        self.app.uses_stats()
    }

    /// Dispatches one switch-to-controller message to the appropriate handler
    /// with concrete inputs. Returns the OpenFlow messages the handler
    /// produced, in call order.
    pub fn handle_message(&mut self, msg: &OfMessage) -> Vec<(SwitchId, OfMessage)> {
        let mut sink = MessageSink::new(self.next_request_id);
        let mut env = ConcreteEnv::new();
        self.dispatch(msg, &mut sink, &mut env);
        self.handled_events += 1;
        let (messages, next_id) = sink.into_parts();
        self.next_request_id = next_id;
        messages
    }

    /// Runs the `packet_in` handler with an explicitly-provided (possibly
    /// symbolic) packet and environment, without recording the invocation in
    /// the runtime's counters. The `discover_packets` transition clones the
    /// runtime and calls this once per concolic execution.
    pub fn run_packet_in_symbolic(
        &mut self,
        env: &mut dyn Env,
        ctx: PacketInContext,
        packet: &SymPacket,
    ) -> Vec<(SwitchId, OfMessage)> {
        let mut sink = MessageSink::new(self.next_request_id);
        self.app.packet_in(&mut sink, env, ctx, packet);
        let (messages, _) = sink.into_parts();
        messages
    }

    /// Runs the statistics handler with explicitly-provided (possibly
    /// symbolic) statistics; used both by `discover_stats` and by the model
    /// checker when delivering a synthesised statistics reply.
    pub fn run_stats_in(
        &mut self,
        env: &mut dyn Env,
        switch: SwitchId,
        stats: &SymStats,
    ) -> Vec<(SwitchId, OfMessage)> {
        let mut sink = MessageSink::new(self.next_request_id);
        self.app.port_stats_in(&mut sink, env, switch, stats);
        self.handled_events += 1;
        let (messages, next_id) = sink.into_parts();
        self.next_request_id = next_id;
        messages
    }

    fn dispatch(&mut self, msg: &OfMessage, sink: &mut MessageSink, env: &mut dyn Env) {
        match msg {
            OfMessage::PacketIn {
                switch,
                in_port,
                packet,
                buffer_id,
                reason,
            } => {
                let ctx = PacketInContext {
                    switch: *switch,
                    in_port: *in_port,
                    buffer_id: *buffer_id,
                    reason: *reason,
                };
                let sym = SymPacket::from_concrete(packet);
                self.app.packet_in(sink, env, ctx, &sym);
            }
            OfMessage::SwitchJoin { switch, ports } => {
                self.app.switch_join(sink, *switch, ports);
            }
            OfMessage::SwitchLeave { switch } => {
                self.app.switch_leave(sink, *switch);
            }
            OfMessage::PortStatsReply {
                switch, entries, ..
            } => {
                let stats = SymStats::from_concrete(entries);
                self.app.port_stats_in(sink, env, *switch, &stats);
            }
            OfMessage::FlowStatsReply { switch, .. } => {
                // Flow-stats replies are delivered as an empty port-stats set;
                // none of the modelled applications distinguish them. Kept as
                // an explicit arm so extending it later is a local change.
                let stats = SymStats::from_concrete(&[]);
                self.app.port_stats_in(sink, env, *switch, &stats);
            }
            OfMessage::BarrierReply { switch, request_id } => {
                self.app.barrier_reply(sink, *switch, *request_id);
            }
            OfMessage::PortStatus {
                switch,
                port,
                link_up,
            } => {
                self.app.port_status(sink, *switch, *port, *link_up);
            }
            other => {
                debug_assert!(
                    other.is_switch_to_controller(),
                    "controller received a controller-to-switch message: {other}"
                );
            }
        }
    }

    /// Notifies the application of a port-status change directly (used by the
    /// model checker's link-failure transitions).
    pub fn notify_port_status(
        &mut self,
        switch: SwitchId,
        port: PortId,
        link_up: bool,
    ) -> Vec<(SwitchId, OfMessage)> {
        let mut sink = MessageSink::new(self.next_request_id);
        self.app.port_status(&mut sink, switch, port, link_up);
        self.handled_events += 1;
        let (messages, next_id) = sink.into_parts();
        self.next_request_id = next_id;
        messages
    }
}

impl Fingerprint for ControllerRuntime {
    fn fingerprint(&self, hasher: &mut Fnv64) {
        hasher.write_str(self.app.name());
        self.app.fingerprint(hasher);
        hasher.write_u64(self.next_request_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ControllerApp;
    use crate::ops::{ControllerOps, RuleSpec};
    use nice_openflow::{
        fingerprint_of, Action, BufferId, MacAddr, MatchPattern, Packet, PacketInReason,
        PortStatsEntry, StatsKind,
    };

    /// Minimal learning-style app used to exercise dispatch.
    #[derive(Debug, Clone, Default)]
    struct Recorder {
        packet_ins: u64,
        joins: u64,
        leaves: u64,
        stats: u64,
        barriers: u64,
        port_events: u64,
    }

    impl ControllerApp for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn packet_in(
            &mut self,
            ops: &mut dyn ControllerOps,
            _env: &mut dyn Env,
            ctx: PacketInContext,
            _packet: &SymPacket,
        ) {
            self.packet_ins += 1;
            ops.install_rule(
                ctx.switch,
                RuleSpec::new(MatchPattern::any(), vec![Action::Flood]),
            );
            ops.request_stats(ctx.switch, StatsKind::Port);
        }
        fn switch_join(
            &mut self,
            _ops: &mut dyn ControllerOps,
            _switch: SwitchId,
            _ports: &[PortId],
        ) {
            self.joins += 1;
        }
        fn switch_leave(&mut self, _ops: &mut dyn ControllerOps, _switch: SwitchId) {
            self.leaves += 1;
        }
        fn port_stats_in(
            &mut self,
            _ops: &mut dyn ControllerOps,
            _env: &mut dyn Env,
            _switch: SwitchId,
            _stats: &SymStats,
        ) {
            self.stats += 1;
        }
        fn barrier_reply(
            &mut self,
            _ops: &mut dyn ControllerOps,
            _switch: SwitchId,
            _request_id: u64,
        ) {
            self.barriers += 1;
        }
        fn port_status(
            &mut self,
            _ops: &mut dyn ControllerOps,
            _switch: SwitchId,
            _port: PortId,
            _link_up: bool,
        ) {
            self.port_events += 1;
        }
        fn clone_app(&self) -> Box<dyn ControllerApp> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn fingerprint(&self, hasher: &mut Fnv64) {
            hasher.write_u64(self.packet_ins);
            hasher.write_u64(self.joins);
            hasher.write_u64(self.leaves);
            hasher.write_u64(self.stats);
            hasher.write_u64(self.barriers);
            hasher.write_u64(self.port_events);
        }
        fn uses_stats(&self) -> bool {
            true
        }
    }

    fn packet_in_msg() -> OfMessage {
        OfMessage::PacketIn {
            switch: SwitchId(1),
            in_port: PortId(1),
            packet: Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0),
            buffer_id: BufferId(1),
            reason: PacketInReason::NoMatch,
        }
    }

    #[test]
    fn dispatch_routes_messages_to_handlers() {
        let mut rt = ControllerRuntime::new(Box::new(Recorder::default()));
        assert_eq!(rt.app_name(), "recorder");
        assert!(rt.uses_stats());

        let out = rt.handle_message(&packet_in_msg());
        assert_eq!(out.len(), 2, "install + stats request");
        rt.handle_message(&OfMessage::SwitchJoin {
            switch: SwitchId(1),
            ports: vec![PortId(1)],
        });
        rt.handle_message(&OfMessage::SwitchLeave {
            switch: SwitchId(1),
        });
        rt.handle_message(&OfMessage::PortStatsReply {
            switch: SwitchId(1),
            request_id: 1,
            entries: vec![PortStatsEntry::zero(PortId(1))],
        });
        rt.handle_message(&OfMessage::FlowStatsReply {
            switch: SwitchId(1),
            request_id: 2,
            entries: vec![],
        });
        rt.handle_message(&OfMessage::BarrierReply {
            switch: SwitchId(1),
            request_id: 3,
        });
        rt.handle_message(&OfMessage::PortStatus {
            switch: SwitchId(1),
            port: PortId(1),
            link_up: false,
        });
        assert_eq!(rt.handled_events(), 7);
    }

    #[test]
    fn request_ids_persist_across_handler_invocations() {
        let mut rt = ControllerRuntime::new(Box::new(Recorder::default()));
        let first = rt.handle_message(&packet_in_msg());
        let second = rt.handle_message(&packet_in_msg());
        let id_of = |msgs: &[(SwitchId, OfMessage)]| {
            msgs.iter()
                .find_map(|(_, m)| match m {
                    OfMessage::StatsRequest { request_id, .. } => Some(*request_id),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(id_of(&first), id_of(&second));
    }

    #[test]
    fn clone_is_independent_and_fingerprint_tracks_state() {
        let mut rt = ControllerRuntime::new(Box::new(Recorder::default()));
        let baseline = fingerprint_of(&rt);
        let clone = rt.clone();
        assert_eq!(baseline, fingerprint_of(&clone));
        rt.handle_message(&packet_in_msg());
        assert_ne!(fingerprint_of(&rt), fingerprint_of(&clone));
        // The clone did not observe the event.
        assert_eq!(fingerprint_of(&clone), baseline);
    }

    #[test]
    fn symbolic_packet_in_does_not_mutate_counters() {
        let rt = ControllerRuntime::new(Box::new(Recorder::default()));
        let mut clone = rt.clone();
        let mut env = ConcreteEnv::new();
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        let ctx = PacketInContext {
            switch: SwitchId(1),
            in_port: PortId(1),
            buffer_id: BufferId(1),
            reason: PacketInReason::NoMatch,
        };
        let msgs = clone.run_packet_in_symbolic(&mut env, ctx, &SymPacket::from_concrete(&pkt));
        assert_eq!(msgs.len(), 2);
        // The original runtime is untouched; the clone recorded no "handled
        // event" because symbolic exploration is not a system transition.
        assert_eq!(rt.handled_events(), 0);
        assert_eq!(clone.handled_events(), 0);
    }

    #[test]
    fn stats_and_port_status_direct_entry_points() {
        let mut rt = ControllerRuntime::new(Box::new(Recorder::default()));
        let mut env = ConcreteEnv::new();
        let stats = SymStats::from_concrete(&[PortStatsEntry::zero(PortId(1))]);
        rt.run_stats_in(&mut env, SwitchId(1), &stats);
        rt.notify_port_status(SwitchId(1), PortId(2), true);
        assert_eq!(rt.handled_events(), 2);
    }
}
