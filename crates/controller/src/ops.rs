//! The controller-to-switch API surface (the NOX operations the evaluated
//! applications call) and the message sink that records the resulting
//! OpenFlow messages.

use nice_openflow::{
    Action, BufferId, FlowModCommand, MatchPattern, OfMessage, Packet, PortId, StatsKind, SwitchId,
    Timeouts,
};

/// Everything needed to install one flow rule — the arguments of NOX's
/// `install_datapath_flow`, i.e. `install_rule` in Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpec {
    /// The match pattern.
    pub pattern: MatchPattern,
    /// The priority (higher wins).
    pub priority: u16,
    /// The action list.
    pub actions: Vec<Action>,
    /// Idle/hard timeouts.
    pub timeouts: Timeouts,
    /// Opaque cookie recorded on the rule (handy for tracing which handler
    /// installed it).
    pub cookie: u64,
}

impl RuleSpec {
    /// A permanent rule with default priority 100.
    pub fn new(pattern: MatchPattern, actions: Vec<Action>) -> Self {
        RuleSpec {
            pattern,
            priority: 100,
            actions,
            timeouts: Timeouts::PERMANENT,
            cookie: 0,
        }
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: u16) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the timeouts (builder style).
    pub fn with_timeouts(mut self, timeouts: Timeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Sets the cookie (builder style).
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }
}

/// The operations a controller application can invoke on the platform.
///
/// Every call is turned into one OpenFlow message addressed to a switch. The
/// platform does **not** deliver the message immediately: the model checker
/// enqueues it on the controller→switch channel, and a separate `process_of`
/// transition applies it — installing rules is therefore *not atomic* across
/// switches, exactly the source of the race conditions NICE uncovers.
pub trait ControllerOps {
    /// Installs a rule at `switch`.
    fn install_rule(&mut self, switch: SwitchId, rule: RuleSpec);

    /// Removes all rules at `switch` overlapping `pattern` (non-strict
    /// delete).
    fn delete_rule(&mut self, switch: SwitchId, pattern: MatchPattern);

    /// Removes the rule with exactly `pattern` and `priority`.
    fn delete_rule_strict(&mut self, switch: SwitchId, pattern: MatchPattern, priority: u16);

    /// Tells `switch` what to do with a buffered packet
    /// (`send_packet_out` in Figure 3 when combined with a buffer id).
    fn send_packet_out(
        &mut self,
        switch: SwitchId,
        buffer_id: BufferId,
        in_port: PortId,
        actions: Vec<Action>,
    );

    /// Injects a packet carried inline (no switch buffer reference).
    fn send_packet(
        &mut self,
        switch: SwitchId,
        packet: Packet,
        in_port: PortId,
        actions: Vec<Action>,
    );

    /// Convenience: release a buffered packet with a flood action
    /// (`flood_packet` in Figure 3).
    fn flood_packet(&mut self, switch: SwitchId, buffer_id: BufferId, in_port: PortId) {
        self.send_packet_out(switch, buffer_id, in_port, vec![Action::Flood]);
    }

    /// Requests statistics from `switch`; the reply arrives later as a
    /// `port_stats_in` / flow-stats handler invocation.
    fn request_stats(&mut self, switch: SwitchId, kind: StatsKind);

    /// Sends a barrier request to `switch`; the reply arrives later as a
    /// `barrier_reply` handler invocation.
    fn send_barrier(&mut self, switch: SwitchId);
}

/// The default [`ControllerOps`] implementation: records each operation as an
/// `(switch, message)` pair, in call order.
#[derive(Debug, Clone, Default)]
pub struct MessageSink {
    messages: Vec<(SwitchId, OfMessage)>,
    next_request_id: u64,
}

impl MessageSink {
    /// Creates a sink. `next_request_id` seeds the id allocator for stats and
    /// barrier requests so that ids stay unique across handler invocations
    /// (the runtime passes its persistent counter in).
    pub fn new(next_request_id: u64) -> Self {
        MessageSink {
            messages: Vec::new(),
            next_request_id,
        }
    }

    /// The recorded messages, in call order.
    pub fn messages(&self) -> &[(SwitchId, OfMessage)] {
        &self.messages
    }

    /// Consumes the sink, returning the recorded messages and the advanced
    /// request-id counter.
    pub fn into_parts(self) -> (Vec<(SwitchId, OfMessage)>, u64) {
        (self.messages, self.next_request_id)
    }

    /// The id the next stats/barrier request will use.
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id
    }

    fn alloc_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }
}

impl ControllerOps for MessageSink {
    fn install_rule(&mut self, switch: SwitchId, rule: RuleSpec) {
        self.messages.push((
            switch,
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                pattern: rule.pattern,
                priority: rule.priority,
                actions: rule.actions,
                timeouts: rule.timeouts,
                cookie: rule.cookie,
            },
        ));
    }

    fn delete_rule(&mut self, switch: SwitchId, pattern: MatchPattern) {
        self.messages.push((
            switch,
            OfMessage::FlowMod {
                command: FlowModCommand::Delete,
                pattern,
                priority: 0,
                actions: Vec::new(),
                timeouts: Timeouts::PERMANENT,
                cookie: 0,
            },
        ));
    }

    fn delete_rule_strict(&mut self, switch: SwitchId, pattern: MatchPattern, priority: u16) {
        self.messages.push((
            switch,
            OfMessage::FlowMod {
                command: FlowModCommand::DeleteStrict,
                pattern,
                priority,
                actions: Vec::new(),
                timeouts: Timeouts::PERMANENT,
                cookie: 0,
            },
        ));
    }

    fn send_packet_out(
        &mut self,
        switch: SwitchId,
        buffer_id: BufferId,
        in_port: PortId,
        actions: Vec<Action>,
    ) {
        self.messages.push((
            switch,
            OfMessage::PacketOut {
                buffer_id: Some(buffer_id),
                packet: None,
                in_port,
                actions,
            },
        ));
    }

    fn send_packet(
        &mut self,
        switch: SwitchId,
        packet: Packet,
        in_port: PortId,
        actions: Vec<Action>,
    ) {
        self.messages.push((
            switch,
            OfMessage::PacketOut {
                buffer_id: None,
                packet: Some(packet),
                in_port,
                actions,
            },
        ));
    }

    fn request_stats(&mut self, switch: SwitchId, kind: StatsKind) {
        let request_id = self.alloc_request_id();
        self.messages
            .push((switch, OfMessage::StatsRequest { kind, request_id }));
    }

    fn send_barrier(&mut self, switch: SwitchId) {
        let request_id = self.alloc_request_id();
        self.messages
            .push((switch, OfMessage::BarrierRequest { request_id }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_openflow::{MacAddr, Packet};

    #[test]
    fn rule_spec_builders() {
        let spec = RuleSpec::new(MatchPattern::any(), vec![Action::Flood])
            .with_priority(7)
            .with_timeouts(Timeouts::SOFT_5)
            .with_cookie(42);
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.timeouts, Timeouts::SOFT_5);
        assert_eq!(spec.cookie, 42);
    }

    #[test]
    fn install_and_delete_record_flow_mods() {
        let mut sink = MessageSink::new(0);
        sink.install_rule(
            SwitchId(1),
            RuleSpec::new(MatchPattern::any(), vec![Action::Drop]),
        );
        sink.delete_rule(SwitchId(2), MatchPattern::any());
        sink.delete_rule_strict(SwitchId(3), MatchPattern::any(), 9);
        let msgs = sink.messages();
        assert_eq!(msgs.len(), 3);
        assert_eq!(msgs[0].0, SwitchId(1));
        assert!(matches!(
            msgs[0].1,
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                ..
            }
        ));
        assert!(matches!(
            msgs[1].1,
            OfMessage::FlowMod {
                command: FlowModCommand::Delete,
                ..
            }
        ));
        assert!(matches!(
            msgs[2].1,
            OfMessage::FlowMod {
                command: FlowModCommand::DeleteStrict,
                priority: 9,
                ..
            }
        ));
    }

    #[test]
    fn packet_out_variants() {
        let mut sink = MessageSink::new(0);
        sink.send_packet_out(
            SwitchId(1),
            BufferId(5),
            PortId(1),
            vec![Action::Output(PortId(2))],
        );
        sink.flood_packet(SwitchId(1), BufferId(6), PortId(1));
        let pkt = Packet::l2_ping(1, MacAddr::for_host(1), MacAddr::for_host(2), 0);
        sink.send_packet(SwitchId(2), pkt, PortId(3), vec![Action::Flood]);
        let msgs = sink.messages();
        assert!(matches!(
            msgs[0].1,
            OfMessage::PacketOut {
                buffer_id: Some(BufferId(5)),
                ..
            }
        ));
        match &msgs[1].1 {
            OfMessage::PacketOut { actions, .. } => assert_eq!(actions, &vec![Action::Flood]),
            other => panic!("unexpected {other}"),
        }
        assert!(matches!(
            msgs[2].1,
            OfMessage::PacketOut {
                buffer_id: None,
                packet: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn request_ids_are_unique_and_persist() {
        let mut sink = MessageSink::new(10);
        sink.request_stats(SwitchId(1), StatsKind::Port);
        sink.send_barrier(SwitchId(1));
        let (msgs, next) = sink.into_parts();
        assert_eq!(next, 12);
        match (&msgs[0].1, &msgs[1].1) {
            (
                OfMessage::StatsRequest { request_id: a, .. },
                OfMessage::BarrierRequest { request_id: b },
            ) => {
                assert_eq!(*a, 10);
                assert_eq!(*b, 11);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn message_order_is_call_order() {
        let mut sink = MessageSink::new(0);
        sink.install_rule(SwitchId(1), RuleSpec::new(MatchPattern::any(), vec![]));
        sink.send_packet_out(SwitchId(1), BufferId(1), PortId(1), vec![]);
        let kinds: Vec<&str> = sink.messages().iter().map(|(_, m)| m.kind_name()).collect();
        assert_eq!(kinds, vec!["flow_mod_add", "packet_out"]);
    }
}
