//! # nice-controller
//!
//! A NOX-like controller platform for NICE controller applications.
//!
//! An OpenFlow controller program is "structured as a set of event handlers
//! that interact with the switches using a standard interface, and these
//! handlers execute atomically" (Section 2.2.1). This crate provides that
//! interface:
//!
//! * [`app::ControllerApp`] — the handler trait applications implement
//!   (`packet_in`, `switch_join`, `switch_leave`, `port_stats_in`, ...).
//!   Handlers receive possibly-symbolic inputs ([`nice_sym::SymPacket`],
//!   [`nice_sym::SymStats`]) and an execution environment, so *the same
//!   unmodified application code* runs concretely under the model checker and
//!   symbolically under the concolic engine.
//! * [`ops::ControllerOps`] — the NOX API surface the applications use:
//!   `install_rule`, `delete_rule`, `send_packet_out`, `flood_packet`,
//!   `request_stats`, `send_barrier`. Calls are collected as OpenFlow
//!   messages; the model checker delivers them over per-switch FIFO channels,
//!   which is where the rule-installation races the paper targets come from.
//! * [`runtime::ControllerRuntime`] — owns the application state, dispatches
//!   incoming OpenFlow messages to handlers, allocates request ids, and
//!   exposes the state fingerprint the model checker hashes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod ops;
pub mod runtime;

pub use app::{ControllerApp, PacketInContext};
pub use ops::{ControllerOps, MessageSink, RuleSpec};
pub use runtime::ControllerRuntime;
