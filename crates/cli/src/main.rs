//! The `nice` command line.
//!
//! Built on the scenario registry and the session-based checking API:
//!
//! * `nice list` — every bug/fixed scenario the registry knows, with the
//!   application and the property each one is expected to violate (or pass).
//! * `nice run <scenario>` — an observable, cancellable check of one
//!   registry scenario: streams progress to stderr, honours a wall-clock
//!   budget (`--time-budget-ms`), with `--json` emits one machine-readable
//!   object embedding the first counterexample as a typed trace (schema
//!   `nice-cli-run-v4`, documented in `bench/README.md`), and with
//!   `--trace-out FILE` writes that trace as a standalone `nice-trace-v1`
//!   file.
//! * `nice sweep <scenario>` — the strategies × reductions matrix on one
//!   scenario, as a JSON report in the same hand-rolled style as the bench
//!   gate's `BENCH_ci.json` (schema `nice-cli-sweep-v3`).
//! * `nice replay <trace.json>` — re-executes a saved trace step by step on
//!   the deterministic engine, checking every property at every step.
//! * `nice minimize <trace.json>` — ddmin delta debugging: shrinks the
//!   trace while it still violates the same property under replay.
//! * `nice bisect <trace.json>` — reports the first transition after which
//!   the violation becomes unavoidable.
//! * `nice timeline <trace.json>` — renders the trace as an ASCII timeline,
//!   one lane per switch/host/controller.
//! * `nice validate-json` — reads stdin and exits non-zero unless it is one
//!   well-formed JSON value (what CI pipes `--json` output through); input
//!   self-identifying as `nice-trace-v1` is additionally parsed as a typed
//!   trace.
//!
//! Every emitted JSON document is self-checked with the same validator
//! before it is printed, so the CLI can never ship what `validate-json`
//! would reject.

mod serve;

use nice_apps::scenarios::{find_scenario, registry, ScenarioEntry, ScenarioKind};
use nice_bench::jsonv::{escape_json, validate_json, validate_trace_json};
use nice_mc::{
    render_timeline, CheckEvent, CheckReport, CheckerConfig, ExploredMode, ModelChecker,
    ReductionKind, SchedulerKind, StrategyKind, Trace, TRACE_SCHEMA,
};
use std::io::Read;
use std::time::Duration;

const USAGE: &str = "\
nice — model-check OpenFlow controller programs (NICE, NSDI'12)

USAGE:
  nice list [--names|--json]
  nice run <scenario> [OPTIONS]
  nice sweep <scenario> [OPTIONS]
  nice serve --socket <PATH> [--workers <N>] [--max-jobs <N>]
  nice submit --socket <PATH> <scenario> [OPTIONS]
  nice replay <trace.json> [--expect-violation]
  nice minimize <trace.json> [--out <FILE>]
  nice bisect <trace.json> [--max-explored <N>]
  nice timeline <trace.json>
  nice validate-json            (reads stdin)

RUN / SWEEP OPTIONS:
  --strategy <pkt-seq|no-delay|flow-ir|unusual>   search strategy (run only; default pkt-seq)
  --reduction <none|por>                          partial-order reduction (run only; default none)
  --workers <N>                                   search worker threads (default 1)
  --scheduler <work-stealing|donation>            how parallel workers share frontier nodes
                                                  (default work-stealing; needs --workers > 1)
  --explored <mem|tiered|bitstate>                explored-set storage: exact in-memory (default),
                                                  exact with cold-shard spill to disk, or lossy
                                                  SPIN-style bitstate hashing (PASS not exhaustive)
  --mem-limit <BYTES>                             explored-set memory budget (0 = mode default:
                                                  tiered 512 MiB, bitstate 64 MiB; mem ignores it)
  --dist <N>                                      run only: distribute the search over N worker
                                                  processes (fingerprint-sharded explored set)
  --max-transitions <N>                           transition budget (default 500000; 0 = unlimited)
  --max-depth <N>                                 depth bound (default 400)
  --time-budget-ms <N>                            interrupt the search (each sweep cell) after N wall-clock ms
  --progress-every <N>                            Progress event cadence in transitions (run only; default 8192)
  --faults                                        enable the scenario's fault plan (switch crashes,
                                                  channel faults, failover — see README \"Fault injection\")
  --all-violations                                keep searching after the first violation
  --expect                                        exit non-zero unless the registry expectation holds
                                                  (bug found its property / fixed variant passed; run only)
  --matrix strategies-x-reductions                sweep matrix selector (sweep only; the default)
  --json                                          emit machine-readable JSON on stdout
  --quiet                                         suppress streamed progress on stderr
  --trace-out <FILE>                              write the first violation's trace as a
                                                  nice-trace-v1 JSON file (run only)

SERVE / SUBMIT (the distributed checking service — see README \"Serving checks\"):
  serve      bind a Unix socket, spawn a pool of nice-dist-worker processes
             sharding the fingerprint space, and accept check jobs from any
             number of clients (fair round-robin across connections);
             --max-jobs N exits after N jobs (CI smoke)
  submit     send one job to a running server (scenario name or a spec like
             ping:2 / chain:5:2 / chain-faults:3:1) and stream its progress;
             accepts --strategy/--reduction/--faults/--all-violations/
             --max-transitions/--max-depth/--time-budget-ms/--expect/--quiet/
             --explored/--mem-limit (each worker shard spills independently)

TRACE COMMANDS (operate on nice-trace-v1 files, produced by `nice run --trace-out`):
  replay     re-execute the trace on the deterministic engine, checking every
             property at every step; --expect-violation exits non-zero unless
             replay reproduces the trace's recorded violation
  minimize   ddmin delta debugging: emit the shortest sub-trace found that
             still violates the same property under replay (stdout, or --out)
  bisect     binary-search the first step after which the violation is
             unavoidable; --max-explored bounds each probe's state exploration
             (default 2000000, 0 = unlimited)
  timeline   ASCII timeline: one lane per switch/host/controller, with packet
             sends, flow-mods, barriers, faults and the violation marked

Scenario names come from `nice list`; schemas are documented in bench/README.md.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => serve::cmd_serve(&args[1..]),
        Some("submit") => serve::cmd_submit(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("minimize") => cmd_minimize(&args[1..]),
        Some("bisect") => cmd_bisect(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("validate-json") => cmd_validate_json(),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Option parsing (hand-rolled; the offline build has no clap)
// ---------------------------------------------------------------------------

/// Which subcommand is parsing: `run` rejects sweep-only flags and vice
/// versa, so no option is ever silently ignored.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Run,
    Sweep,
}

struct RunOptions {
    scenario: Option<String>,
    strategy: StrategyKind,
    reduction: ReductionKind,
    workers: usize,
    scheduler: SchedulerKind,
    explored: ExploredMode,
    mem_limit: u64,
    /// Distributed mode: shard the search over this many worker
    /// *processes* (0 = off, the in-process engine).
    dist: usize,
    max_transitions: u64,
    max_depth: usize,
    time_budget: Option<Duration>,
    progress_every: u64,
    faults: bool,
    all_violations: bool,
    expect: bool,
    json: bool,
    quiet: bool,
    trace_out: Option<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scenario: None,
            strategy: StrategyKind::FullDfs,
            reduction: ReductionKind::None,
            workers: 1,
            scheduler: SchedulerKind::default(),
            explored: ExploredMode::default(),
            mem_limit: 0,
            dist: 0,
            max_transitions: 500_000,
            max_depth: 400,
            time_budget: None,
            progress_every: nice_mc::session::DEFAULT_PROGRESS_EVERY,
            faults: false,
            all_violations: false,
            expect: false,
            json: false,
            quiet: false,
            trace_out: None,
        }
    }
}

fn parse_run_options(args: &[String], mode: Mode) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--strategy" => {
                if mode == Mode::Sweep {
                    return Err("--strategy is run-only; sweep covers every strategy".into());
                }
                let v = take_value(i)?;
                opts.strategy = StrategyKind::parse(v).ok_or_else(|| {
                    format!("unknown strategy '{v}' (pkt-seq, no-delay, flow-ir, unusual)")
                })?;
                i += 2;
            }
            "--reduction" => {
                if mode == Mode::Sweep {
                    return Err("--reduction is run-only; sweep covers every reduction".into());
                }
                let v = take_value(i)?;
                opts.reduction = ReductionKind::parse(v)
                    .ok_or_else(|| format!("unknown reduction '{v}' (none, por)"))?;
                i += 2;
            }
            "--workers" => {
                opts.workers = parse_number(take_value(i)?, "--workers")? as usize;
                i += 2;
            }
            "--scheduler" => {
                let v = take_value(i)?;
                opts.scheduler = SchedulerKind::parse(v)
                    .ok_or_else(|| format!("unknown scheduler '{v}' (work-stealing, donation)"))?;
                i += 2;
            }
            "--explored" => {
                let v = take_value(i)?;
                opts.explored = ExploredMode::parse(v).ok_or_else(|| {
                    format!("unknown explored mode '{v}' (mem, tiered, bitstate)")
                })?;
                i += 2;
            }
            "--mem-limit" => {
                opts.mem_limit = parse_number(take_value(i)?, "--mem-limit")?;
                i += 2;
            }
            "--dist" => {
                if mode == Mode::Sweep {
                    return Err("--dist is run-only (sweep cells stay in-process)".into());
                }
                opts.dist = parse_number(take_value(i)?, "--dist")? as usize;
                i += 2;
            }
            "--max-transitions" => {
                opts.max_transitions = parse_number(take_value(i)?, "--max-transitions")?;
                i += 2;
            }
            "--max-depth" => {
                opts.max_depth = parse_number(take_value(i)?, "--max-depth")? as usize;
                i += 2;
            }
            "--time-budget-ms" => {
                let ms = parse_number(take_value(i)?, "--time-budget-ms")?;
                opts.time_budget = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--progress-every" => {
                if mode == Mode::Sweep {
                    return Err("--progress-every is run-only (sweep streams no progress)".into());
                }
                opts.progress_every = parse_number(take_value(i)?, "--progress-every")?;
                i += 2;
            }
            "--matrix" => {
                if mode == Mode::Run {
                    return Err("--matrix is sweep-only".into());
                }
                let v = take_value(i)?;
                // One matrix is supported today; accept both spellings of ×.
                if v != "strategies-x-reductions" && v != "strategies×reductions" {
                    return Err(format!("unknown matrix '{v}' (strategies-x-reductions)"));
                }
                i += 2;
            }
            "--trace-out" => {
                if mode == Mode::Sweep {
                    return Err("--trace-out is run-only (sweep cells race for the witness)".into());
                }
                opts.trace_out = Some(take_value(i)?.clone());
                i += 2;
            }
            "--faults" => {
                opts.faults = true;
                i += 1;
            }
            "--all-violations" => {
                opts.all_violations = true;
                i += 1;
            }
            "--expect" => {
                if mode == Mode::Sweep {
                    return Err(
                        "--expect is run-only (heuristic sweep cells legitimately miss bugs)"
                            .into(),
                    );
                }
                opts.expect = true;
                i += 1;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            "--quiet" => {
                opts.quiet = true;
                i += 1;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            name => {
                if opts.scenario.replace(name.to_string()).is_some() {
                    return Err("more than one scenario name given".into());
                }
                i += 1;
            }
        }
    }
    Ok(opts)
}

fn parse_number(value: &str, flag: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: '{value}' is not a number"))
}

fn usage_error(message: &str) -> i32 {
    eprintln!("error: {message}\n\n{USAGE}");
    2
}

fn config_from(
    opts: &RunOptions,
    strategy: StrategyKind,
    reduction: ReductionKind,
) -> CheckerConfig {
    CheckerConfig::default()
        .with_strategy(strategy)
        .with_reduction(reduction)
        .with_workers(opts.workers)
        .with_scheduler(opts.scheduler)
        .with_explored(opts.explored)
        .with_mem_limit(opts.mem_limit)
        .with_max_transitions(opts.max_transitions)
        .with_stop_at_first(!opts.all_violations)
        .with_max_depth(opts.max_depth)
        .with_fault_injection(opts.faults)
}

// ---------------------------------------------------------------------------
// nice list
// ---------------------------------------------------------------------------

fn cmd_list(args: &[String]) -> i32 {
    let names_only = args.iter().any(|a| a == "--names");
    let json = args.iter().any(|a| a == "--json");
    if let Some(bad) = args.iter().find(|a| *a != "--names" && *a != "--json") {
        return usage_error(&format!("unknown option '{bad}'"));
    }
    if names_only && json {
        return usage_error("--names and --json are mutually exclusive");
    }
    let entries = registry();
    if json {
        let doc = render_list_json(&entries);
        validate_json(&doc).expect("nice list emitted malformed JSON");
        println!("{doc}");
        return 0;
    }
    if names_only {
        for e in &entries {
            println!("{}", e.name);
        }
        return 0;
    }
    println!(
        "{:<42} {:<14} {:>5}  {:<8} expected violation",
        "scenario", "app", "bug", "kind"
    );
    println!("{}", "-".repeat(100));
    for e in &entries {
        println!(
            "{:<42} {:<14} {:>5}  {:<8} {}",
            e.name,
            e.app,
            e.bug.label(),
            match e.kind {
                ScenarioKind::Buggy => "bug",
                ScenarioKind::Fixed => "fixed",
            },
            match (e.expected_violation, e.requires_faults) {
                (Some(p), true) => format!("{p} (needs --faults)"),
                (Some(p), false) => p.to_string(),
                (None, _) => "none (expected to pass)".to_string(),
            }
        );
    }
    println!("{} scenarios", entries.len());
    0
}

/// The machine-readable registry dump (schema `nice-cli-list-v1`,
/// documented in `bench/README.md`): what CI and scripting consume instead
/// of scraping the human table.
fn render_list_json(entries: &[ScenarioEntry]) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"nice-cli-list-v1\",\n  \"count\": {},\n  \"scenarios\": [\n",
        entries.len()
    );
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"app\": \"{}\", \"bug\": \"{}\", \"kind\": \"{}\", \
             \"expected_violation\": {}, \"requires_faults\": {}}}{}\n",
            escape_json(&e.name),
            escape_json(e.app),
            e.bug.label(),
            match e.kind {
                ScenarioKind::Buggy => "bug",
                ScenarioKind::Fixed => "fixed",
            },
            e.expected_violation
                .map_or("null".to_string(), |p| format!("\"{}\"", escape_json(p))),
            e.requires_faults,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}

// ---------------------------------------------------------------------------
// nice run
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> i32 {
    let opts = match parse_run_options(args, Mode::Run) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let Some(name) = opts.scenario.clone() else {
        return usage_error("run needs a scenario name (see `nice list`)");
    };
    let Some(entry) = find_scenario(&name) else {
        eprintln!("unknown scenario '{name}'; `nice list` enumerates them");
        return 2;
    };

    if opts.dist > 0 && opts.workers > 1 {
        return usage_error(
            "--dist and --workers are mutually exclusive \
             (each dist worker process runs the sequential engine over its shard)",
        );
    }
    if opts.dist > 0 {
        let spec = nice_dist::JobSpec {
            scenario: entry.name.clone(),
            strategy: opts.strategy,
            reduction: opts.reduction,
            inject_faults: opts.faults,
            stop_at_first_violation: !opts.all_violations,
            max_transitions: opts.max_transitions,
            max_depth: opts.max_depth,
            time_budget_ms: opts.time_budget.map_or(0, |d| d.as_millis() as u64),
            explored: opts.explored,
            mem_limit: opts.mem_limit,
        };
        let report = match serve::run_distributed(&spec, opts.dist, opts.quiet) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        return finish_run(&entry, &opts, &report);
    }

    let config = config_from(&opts, opts.strategy, opts.reduction);
    let checker = ModelChecker::new(entry.build(), config);
    let mut session = checker.session().with_progress_every(opts.progress_every);
    if let Some(budget) = opts.time_budget {
        session = session.with_time_budget(budget);
    }

    let stream_to_stderr = !opts.quiet;
    let report = session.run_with(&mut |event: &CheckEvent| {
        if !stream_to_stderr {
            return;
        }
        match event {
            CheckEvent::Started {
                scenario,
                workers,
                strategy,
                reduction,
            } => eprintln!(
                "checking {scenario} (strategy {strategy}, reduction {reduction}, {workers} worker{})",
                if *workers == 1 { "" } else { "s" }
            ),
            CheckEvent::Progress {
                states,
                transitions,
                rate,
                depth,
                explored_bytes,
            } => eprintln!(
                "  {states} states / {transitions} transitions, depth {depth} \
                 ({rate:.0} states/s, explored set {} KiB)",
                explored_bytes >> 10
            ),
            CheckEvent::ViolationFound(v) => {
                eprintln!("  violation: {} — {}", v.property, v.message)
            }
            CheckEvent::Finished(_) => {}
        }
    });

    finish_run(&entry, &opts, &report)
}

/// The shared tail of `nice run`, for both the in-process engines and
/// `--dist`: write `--trace-out`, print the report (or its JSON form), and
/// apply `--expect`.
fn finish_run(entry: &ScenarioEntry, opts: &RunOptions, report: &CheckReport) -> i32 {
    let mut trace_file: Option<String> = None;
    if let Some(path) = &opts.trace_out {
        match report.first_violation() {
            Some(v) => {
                let doc = v.trace.to_json();
                validate_trace_json(&doc).expect("nice run emitted a malformed trace");
                if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                    eprintln!("cannot write trace to '{path}': {e}");
                    return 2;
                }
                if !opts.quiet {
                    eprintln!("trace written to {path} ({} steps)", v.trace.len());
                }
                trace_file = Some(path.clone());
            }
            None => eprintln!("note: no violation found — '{path}' not written"),
        }
    }

    if opts.json {
        let json = render_run_json(entry, opts, report, trace_file.as_deref());
        validate_json(&json).expect("nice run emitted malformed JSON");
        println!("{json}");
    } else {
        print!("{report}");
        match effective_expectation(entry, opts.faults) {
            Some(property) if report.passed() => eprintln!(
                "note: expected a {property} violation but none was found \
                 (budget too small, or an over-restrictive strategy?)"
            ),
            None if !report.passed() => {
                eprintln!("note: this scenario was expected to pass")
            }
            None if entry.requires_faults && !opts.faults => eprintln!(
                "note: this bug only manifests under fault injection — re-run with --faults"
            ),
            _ => {}
        }
    }
    if opts.expect && !expectation_met(entry, report, opts.faults) {
        eprintln!(
            "expectation not met for '{}': {}",
            entry.name,
            match effective_expectation(entry, opts.faults) {
                Some(property) => format!("expected a {property} violation, found none"),
                None => "this scenario was expected to pass".to_string(),
            }
        );
        return 1;
    }
    0
}

/// The violation the registry predicts under the given fault setting:
/// fault-dependent bugs (BUG-XII) are expected to *pass* while fault
/// injection is off — their violation only exists under the fault plan.
fn effective_expectation(entry: &ScenarioEntry, faults: bool) -> Option<&'static str> {
    match entry.expected_violation {
        Some(property) if !entry.requires_faults || faults => Some(property),
        _ => None,
    }
}

/// True if the report matches what the registry entry predicts: the buggy
/// variants find their expected property, the fixed ones pass.
fn expectation_met(entry: &ScenarioEntry, report: &CheckReport, faults: bool) -> bool {
    match effective_expectation(entry, faults) {
        Some(property) => report.violations.iter().any(|v| v.property == property),
        None => report.passed(),
    }
}

fn render_run_json(
    entry: &ScenarioEntry,
    opts: &RunOptions,
    report: &CheckReport,
    trace_file: Option<&str>,
) -> String {
    let mut violated: Vec<&str> = report
        .violations
        .iter()
        .map(|v| v.property.as_str())
        .collect();
    violated.sort_unstable();
    violated.dedup();
    let violated = violated
        .iter()
        .map(|p| format!("\"{}\"", escape_json(p)))
        .collect::<Vec<_>>()
        .join(", ");
    let stats = &report.stats;
    let injected = stats
        .faults
        .labeled()
        .iter()
        .map(|(label, count)| format!("\"{label}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    // Which engine produced the first witness: the trace's own record when
    // there is one, otherwise inferred from the worker count.
    let engine = report
        .first_violation()
        .map(|v| v.trace.engine.label())
        .unwrap_or(if opts.workers.max(1) == 1 {
            "sequential"
        } else {
            "parallel"
        });
    format!(
        "{{\n  \"schema\": \"nice-cli-run-v4\",\n  \"scenario\": \"{}\",\n  \"app\": \"{}\",\n  \
         \"bug\": \"{}\",\n  \"kind\": \"{}\",\n  \"expected_violation\": {},\n  \
         \"strategy\": \"{}\",\n  \"reduction\": \"{}\",\n  \"workers\": {},\n  \"engine\": \"{}\",\n  \
         \"scheduler\": \"{}\",\n  \"explored\": \"{}\",\n  \"lossy\": {},\n  \
         \"faults_enabled\": {},\n  \"injected_faults\": {{{}}},\n  \
         \"outcome\": \"{}\",\n  \"passed\": {},\n  \"expectation_met\": {},\n  \
         \"violated_properties\": [{}],\n  \"first_trace_len\": {},\n  \
         \"trace\": {},\n  \"trace_file\": {},\n  \
         \"states\": {},\n  \"transitions\": {},\n  \"terminal_states\": {},\n  \
         \"pruned_by_strategy\": {},\n  \"pruned_by_por\": {},\n  \"dedup_hits\": {},\n  \
         \"work_steals\": {},\n  \"peak_explored_bytes\": {},\n  \"spilled_shards\": {},\n  \
         \"filter_hits\": {},\n  \"disk_probes\": {},\n  \
         \"max_depth\": {},\n  \"duration_secs\": {:.6},\n  \"states_per_sec\": {:.1}\n}}",
        escape_json(&entry.name),
        escape_json(entry.app),
        entry.bug.label(),
        match entry.kind {
            ScenarioKind::Buggy => "bug",
            ScenarioKind::Fixed => "fixed",
        },
        effective_expectation(entry, opts.faults)
            .map_or("null".to_string(), |p| format!("\"{}\"", escape_json(p))),
        opts.strategy.name(),
        opts.reduction.name(),
        opts.workers.max(1),
        engine,
        opts.scheduler.name(),
        opts.explored.name(),
        report.lossy,
        opts.faults,
        injected,
        report.outcome.label(stats.truncated),
        report.passed(),
        expectation_met(entry, report, opts.faults),
        violated,
        report
            .first_violation()
            .map_or("null".to_string(), |v| v.trace.len().to_string()),
        report
            .first_violation()
            .map_or("null".to_string(), |v| v.trace.to_json()),
        trace_file.map_or("null".to_string(), |p| format!("\"{}\"", escape_json(p))),
        stats.unique_states,
        stats.transitions,
        stats.terminal_states,
        stats.pruned_by_strategy,
        stats.pruned_by_por,
        stats.dedup_hits,
        stats.work_steals,
        stats.peak_explored_bytes,
        stats.spilled_shards,
        stats.filter_hits,
        stats.disk_probes,
        stats.max_depth,
        stats.duration.as_secs_f64(),
        stats.unique_states as f64 / stats.duration.as_secs_f64().max(1e-9),
    )
}

// ---------------------------------------------------------------------------
// nice sweep
// ---------------------------------------------------------------------------

fn cmd_sweep(args: &[String]) -> i32 {
    let opts = match parse_run_options(args, Mode::Sweep) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let Some(name) = opts.scenario.clone() else {
        return usage_error("sweep needs a scenario name (see `nice list`)");
    };
    let Some(entry) = find_scenario(&name) else {
        eprintln!("unknown scenario '{name}'; `nice list` enumerates them");
        return 2;
    };

    let mut cells = Vec::new();
    for strategy in StrategyKind::ALL {
        for reduction in ReductionKind::ALL {
            let config = config_from(&opts, strategy, reduction);
            let checker = ModelChecker::new(entry.build(), config);
            let mut session = checker.session();
            if let Some(budget) = opts.time_budget {
                // Each cell gets its own budget, so one pathological
                // strategy×reduction pair cannot starve the rest of the
                // matrix of their share.
                session = session.with_time_budget(budget);
            }
            let report = session.run();
            if !opts.quiet {
                eprintln!(
                    "  {:<9} × {:<4}: {} states, {} transitions, {}",
                    strategy.name(),
                    reduction.name(),
                    report.stats.unique_states,
                    report.stats.transitions,
                    if report.passed() { "pass" } else { "violation" },
                );
            }
            cells.push((strategy, reduction, report));
        }
    }

    let json = render_sweep_json(&entry, &opts, &cells);
    if opts.json {
        validate_json(&json).expect("nice sweep emitted malformed JSON");
        println!("{json}");
    } else {
        println!(
            "swept {} over {} strategy×reduction cells (re-run with --json for the report)",
            entry.name,
            cells.len()
        );
    }
    0
}

fn render_sweep_json(
    entry: &ScenarioEntry,
    opts: &RunOptions,
    cells: &[(StrategyKind, ReductionKind, CheckReport)],
) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"nice-cli-sweep-v3\",\n  \"scenario\": \"{}\",\n  \
         \"matrix\": \"strategies-x-reductions\",\n  \"workers\": {},\n  \"engine\": \"{}\",\n  \
         \"faults_enabled\": {},\n  \"cells\": [\n",
        escape_json(&entry.name),
        opts.workers.max(1),
        if opts.workers.max(1) == 1 {
            "sequential"
        } else {
            "parallel"
        },
        opts.faults,
    );
    for (i, (strategy, reduction, report)) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"reduction\": \"{}\", \"outcome\": \"{}\", \
             \"passed\": {}, \"expectation_met\": {}, \"states\": {}, \"transitions\": {}, \
             \"pruned_by_por\": {}, \"duration_secs\": {:.6}}}{}\n",
            strategy.name(),
            reduction.name(),
            report.outcome.label(report.stats.truncated),
            report.passed(),
            expectation_met(entry, report, opts.faults),
            report.stats.unique_states,
            report.stats.transitions,
            report.stats.pruned_by_por,
            report.stats.duration.as_secs_f64(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}

// ---------------------------------------------------------------------------
// nice replay / minimize / bisect / timeline
// ---------------------------------------------------------------------------

/// Loads a `nice-trace-v1` file and builds the checker for its scenario —
/// resolved through the registry by the trace's own scenario name, with
/// fault injection matching the recorded engine (so fault transitions in
/// BUG-XII traces replay).
fn load_trace(path: &str) -> Result<(Trace, ModelChecker), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let trace = Trace::from_json(&text).map_err(|e| format!("'{path}': {e}"))?;
    let entry = find_scenario(&trace.scenario).ok_or_else(|| {
        format!(
            "trace names scenario '{}', which the registry does not know \
             (`nice list` enumerates them)",
            trace.scenario
        )
    })?;
    let config = CheckerConfig::default()
        .with_strategy(trace.engine.strategy)
        .with_reduction(trace.engine.reduction)
        .with_fault_injection(trace.engine.faults);
    Ok((trace, ModelChecker::new(entry.build(), config)))
}

/// Parses `<trace.json> [flags...]`: one positional path plus the given
/// boolean flags and valued flags. Returns (path, set flags, flag values).
#[allow(clippy::type_complexity)]
fn parse_trace_args(
    args: &[String],
    bool_flags: &[&str],
    value_flags: &[&str],
) -> Result<(String, Vec<String>, Vec<(String, String)>), String> {
    let mut path: Option<String> = None;
    let mut set = Vec::new();
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if bool_flags.contains(&arg) {
            set.push(arg.to_string());
            i += 1;
        } else if value_flags.contains(&arg) {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{arg} needs a value"))?;
            values.push((arg.to_string(), v.clone()));
            i += 2;
        } else if arg.starts_with('-') {
            return Err(format!("unknown option '{arg}'"));
        } else if path.replace(arg.to_string()).is_some() {
            return Err("more than one trace file given".into());
        } else {
            i += 1;
        }
    }
    let path = path.ok_or_else(|| "a trace file is required".to_string())?;
    Ok((path, set, values))
}

fn cmd_replay(args: &[String]) -> i32 {
    let (path, flags, _) = match parse_trace_args(args, &["--expect-violation"], &[]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let expect_violation = flags.iter().any(|f| f == "--expect-violation");
    let (trace, checker) = match load_trace(&path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let report = checker.replay(&trace);
    print!("{report}");
    if expect_violation {
        if report.completed() && report.reproduces(&trace) {
            0
        } else {
            eprintln!(
                "replay did not reproduce the recorded violation{}",
                trace
                    .property
                    .as_deref()
                    .map(|p| format!(" of {p}"))
                    .unwrap_or_default()
            );
            1
        }
    } else if report.completed() {
        0
    } else {
        1
    }
}

fn cmd_minimize(args: &[String]) -> i32 {
    let (path, _, values) = match parse_trace_args(args, &[], &["--out"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let out = values.iter().find(|(f, _)| f == "--out").map(|(_, v)| v);
    let (trace, checker) = match load_trace(&path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let report = match checker.minimize(&trace) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    // Summary to stderr; the minimized trace (a valid nice-trace-v1
    // document) to stdout or --out, so pipelines stay clean.
    eprint!("{report}");
    let doc = report.minimized.to_json();
    validate_trace_json(&doc).expect("nice minimize emitted a malformed trace");
    match out {
        Some(file) => {
            if let Err(e) = std::fs::write(file, format!("{doc}\n")) {
                eprintln!("cannot write minimized trace to '{file}': {e}");
                return 2;
            }
            eprintln!("minimized trace written to {file}");
        }
        None => println!("{doc}"),
    }
    0
}

fn cmd_bisect(args: &[String]) -> i32 {
    let (path, _, values) = match parse_trace_args(args, &[], &["--max-explored"]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let max_explored = match values.iter().find(|(f, _)| f == "--max-explored") {
        Some((_, v)) => match parse_number(v, "--max-explored") {
            Ok(n) => n,
            Err(e) => return usage_error(&e),
        },
        None => 2_000_000,
    };
    let (trace, checker) = match load_trace(&path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match checker.bisect(&trace, max_explored) {
        Ok(report) => {
            print!("{report}");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_timeline(args: &[String]) -> i32 {
    let (path, _, _) = match parse_trace_args(args, &[], &[]) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let (trace, checker) = match load_trace(&path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match render_timeline(&checker, &trace) {
        Ok(timeline) => {
            print!("{timeline}");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// nice validate-json
// ---------------------------------------------------------------------------

fn cmd_validate_json() -> i32 {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("cannot read stdin: {e}");
        return 2;
    }
    // Trace documents get the stricter typed validation: well-formed JSON
    // that also parses as a `nice-trace-v1` trace. Only the *top-level*
    // schema key counts — a run-v3 report embeds a whole trace document,
    // so a substring match anywhere would mis-route it here. Trace files
    // are canonical compact JSON, so the schema key is the first key with
    // no inner whitespace; tolerate leading whitespace and pretty spacing
    // for hand-edited files.
    let head: String = input
        .trim_start()
        .chars()
        .take(64)
        .filter(|c| !c.is_whitespace())
        .collect();
    let is_trace = head.starts_with(&format!("{{\"schema\":\"{TRACE_SCHEMA}\""));
    let result = if is_trace {
        validate_trace_json(&input)
    } else {
        validate_json(&input)
    };
    match result {
        Ok(()) => {
            eprintln!(
                "valid {} ({} bytes)",
                if is_trace { TRACE_SCHEMA } else { "JSON" },
                input.len()
            );
            0
        }
        Err(message) => {
            eprintln!("{message}");
            1
        }
    }
}
