//! `nice serve` and `nice submit`: the distributed checking service.
//!
//! `serve` binds a Unix socket, spawns one [`nice_dist::Coordinator`] (a
//! pool of `nice-dist-worker` processes sharding the fingerprint space by
//! digest prefix), and accepts check jobs from any number of concurrent
//! client connections. Jobs are serialized over the one worker pool with
//! **fair queuing**: the scheduler round-robins across connections that
//! have jobs pending, so one chatty client cannot starve the others.
//!
//! The client protocol is `nice-dist-v1` itself — the same length-prefixed
//! JSON frames the coordinator speaks to its workers: a client sends a
//! `job` frame (its `shard` field is ignored; sharding is the server's
//! business) and receives `progress` and `violation` frames while the job
//! runs, then exactly one `job_done` (merged job-wide stats + violations)
//! or `error`. A `cancel` frame stops the named job whether it is running
//! or still queued.
//!
//! `submit` is the matching client: build a [`JobSpec`] from the usual
//! `run` flags, send it, stream progress to stderr, print the verdict.

use crate::{parse_number, usage_error};
use nice_apps::scenarios::find_scenario;
use nice_dist::{read_frame, write_frame, Coordinator, Frame, JobEvent, JobSpec, WireViolation};
use nice_mc::{CheckReport, ReductionKind, ShardSpec, StrategyKind, Violation};
use std::collections::VecDeque;
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// nice serve
// ---------------------------------------------------------------------------

/// One accepted client connection, shared between its reader thread (which
/// appends to `pending`) and the scheduler (which drains it).
struct Client {
    /// Jobs submitted but not yet started: client job id + spec.
    pending: VecDeque<(u64, JobSpec)>,
    /// The running job's client id and cancel flag, while one is running.
    current: Option<(u64, Arc<AtomicBool>)>,
    /// Write half of the connection.
    writer: UnixStream,
    /// Reader saw EOF — drop the client once its queue drains.
    closed: bool,
}

pub(crate) fn cmd_serve(args: &[String]) -> i32 {
    let mut socket: Option<String> = None;
    let mut workers: usize = 2;
    let mut max_jobs: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--socket" => match take(i) {
                Ok(v) => {
                    socket = Some(v.clone());
                    i += 2;
                }
                Err(e) => return usage_error(&e),
            },
            "--workers" => match take(i).and_then(|v| parse_number(v, "--workers")) {
                Ok(n) => {
                    workers = n as usize;
                    i += 2;
                }
                Err(e) => return usage_error(&e),
            },
            "--max-jobs" => match take(i).and_then(|v| parse_number(v, "--max-jobs")) {
                Ok(n) => {
                    max_jobs = n;
                    i += 2;
                }
                Err(e) => return usage_error(&e),
            },
            other => return usage_error(&format!("unknown serve option '{other}'")),
        }
    }
    let Some(socket) = socket else {
        return usage_error("serve needs --socket PATH");
    };

    let _ = std::fs::remove_file(&socket);
    let listener = match UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind '{socket}': {e}");
            return 2;
        }
    };
    let mut coordinator = match Coordinator::new(workers) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot start worker pool: {e}");
            return 2;
        }
    };
    eprintln!(
        "nice serve: listening on {socket} ({} worker process{})",
        coordinator.workers(),
        if coordinator.workers() == 1 { "" } else { "es" }
    );

    let clients: Arc<Mutex<Vec<Client>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_clients = Arc::clone(&clients);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let Ok(writer) = stream.try_clone() else {
                continue;
            };
            let index = {
                let mut clients = accept_clients.lock().unwrap();
                clients.push(Client {
                    pending: VecDeque::new(),
                    current: None,
                    writer,
                    closed: false,
                });
                clients.len() - 1
            };
            let reader_clients = Arc::clone(&accept_clients);
            std::thread::spawn(move || client_reader(index, stream, reader_clients));
        }
    });

    let mut served: u64 = 0;
    let mut next_client = 0usize;
    loop {
        // Round-robin pick: the first connection at or after the cursor
        // with a job pending.
        let picked = {
            let mut clients = clients.lock().unwrap();
            let n = clients.len();
            let mut picked = None;
            for offset in 0..n {
                let index = (next_client + offset) % n;
                if let Some((job, spec)) = clients[index].pending.pop_front() {
                    let cancel = Arc::new(AtomicBool::new(false));
                    clients[index].current = Some((job, Arc::clone(&cancel)));
                    let writer = clients[index].writer.try_clone();
                    next_client = index + 1;
                    picked = Some((index, job, spec, cancel, writer));
                    break;
                }
            }
            picked
        };
        let Some((index, job, spec, cancel, writer)) = picked else {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        let Ok(mut writer) = writer else { continue };

        eprintln!("job {job} (client {index}): {}", spec.scenario);
        let result = coordinator.run_job(
            &spec,
            |event| {
                // A client that stopped reading must not wedge the job;
                // stream errors are ignored and the final frame decides.
                let _ = match event {
                    JobEvent::Progress {
                        transitions,
                        unique_states,
                        depth,
                    } => write_frame(
                        &mut writer,
                        &Frame::Progress {
                            job,
                            transitions,
                            unique_states,
                            depth,
                        },
                    ),
                    JobEvent::Violation(violation) => {
                        write_frame(&mut writer, &Frame::Violation { job, violation })
                    }
                    JobEvent::Started { .. } | JobEvent::WorkerRestarted { .. } => Ok(()),
                };
            },
            Some(&cancel),
        );
        let finale = match &result {
            Ok(report) => Frame::JobDone {
                job,
                stats: report.stats.clone(),
                violations: report.violations.iter().map(wire_violation).collect(),
            },
            Err(e) => Frame::Error {
                job,
                message: e.to_string(),
            },
        };
        let _ = write_frame(&mut writer, &finale);
        match &result {
            Ok(report) => eprintln!(
                "job {job} done: {} states, {} transitions, {} violation{}",
                report.stats.unique_states,
                report.stats.transitions,
                report.violations.len(),
                if report.violations.len() == 1 {
                    ""
                } else {
                    "s"
                }
            ),
            Err(e) => eprintln!("job {job} failed: {e}"),
        }
        clients.lock().unwrap()[index].current = None;

        served += 1;
        if max_jobs > 0 && served >= max_jobs {
            eprintln!(
                "nice serve: served {served} job{}, exiting (--max-jobs)",
                if served == 1 { "" } else { "s" }
            );
            let _ = std::fs::remove_file(&socket);
            return 0;
        }
    }
}

/// Reads a client's frames: `job` enqueues, `cancel` stops a queued or
/// running job, EOF closes the connection (and cancels its running job).
fn client_reader(index: usize, stream: UnixStream, clients: Arc<Mutex<Vec<Client>>>) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Job { job, spec, .. })) => {
                clients.lock().unwrap()[index]
                    .pending
                    .push_back((job, spec));
            }
            Ok(Some(Frame::Cancel { job })) => {
                let mut clients = clients.lock().unwrap();
                let client = &mut clients[index];
                if let Some((current, cancel)) = &client.current {
                    if *current == job {
                        cancel.store(true, Ordering::Relaxed);
                    }
                }
                client.pending.retain(|(id, _)| *id != job);
            }
            Ok(Some(_)) => {} // clients only submit and cancel
            Ok(None) | Err(_) => {
                let mut clients = clients.lock().unwrap();
                let client = &mut clients[index];
                client.closed = true;
                client.pending.clear();
                if let Some((_, cancel)) = &client.current {
                    cancel.store(true, Ordering::Relaxed);
                }
                return;
            }
        }
    }
}

fn wire_violation(v: &Violation) -> WireViolation {
    WireViolation {
        property: v.property.clone(),
        message: v.message.clone(),
        steps: v.trace.transitions().into_iter().cloned().collect(),
    }
}

// ---------------------------------------------------------------------------
// nice submit
// ---------------------------------------------------------------------------

pub(crate) fn cmd_submit(args: &[String]) -> i32 {
    let mut socket: Option<String> = None;
    let mut spec = JobSpec::new("");
    let mut scenario: Option<String> = None;
    let mut expect = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        let step = match args[i].as_str() {
            "--socket" => take(i).map(|v| {
                socket = Some(v.clone());
                2
            }),
            "--strategy" => take(i).and_then(|v| {
                StrategyKind::parse(v)
                    .map(|s| {
                        spec.strategy = s;
                        2
                    })
                    .ok_or_else(|| format!("unknown strategy '{v}'"))
            }),
            "--reduction" => take(i).and_then(|v| {
                ReductionKind::parse(v)
                    .map(|r| {
                        spec.reduction = r;
                        2
                    })
                    .ok_or_else(|| format!("unknown reduction '{v}'"))
            }),
            "--max-transitions" => take(i)
                .and_then(|v| parse_number(v, "--max-transitions"))
                .map(|n| {
                    spec.max_transitions = n;
                    2
                }),
            "--max-depth" => take(i)
                .and_then(|v| parse_number(v, "--max-depth"))
                .map(|n| {
                    spec.max_depth = n as usize;
                    2
                }),
            "--time-budget-ms" => take(i)
                .and_then(|v| parse_number(v, "--time-budget-ms"))
                .map(|n| {
                    spec.time_budget_ms = n;
                    2
                }),
            "--explored" => take(i).and_then(|v| {
                nice_mc::ExploredMode::parse(v)
                    .map(|m| {
                        spec.explored = m;
                        2
                    })
                    .ok_or_else(|| format!("unknown explored mode '{v}' (mem, tiered, bitstate)"))
            }),
            "--mem-limit" => take(i)
                .and_then(|v| parse_number(v, "--mem-limit"))
                .map(|n| {
                    spec.mem_limit = n;
                    2
                }),
            "--faults" => {
                spec.inject_faults = true;
                Ok(1)
            }
            "--all-violations" => {
                spec.stop_at_first_violation = false;
                Ok(1)
            }
            "--expect" => {
                expect = true;
                Ok(1)
            }
            "--quiet" => {
                quiet = true;
                Ok(1)
            }
            flag if flag.starts_with('-') => Err(format!("unknown submit option '{flag}'")),
            name => {
                if scenario.replace(name.to_string()).is_some() {
                    Err("more than one scenario given".into())
                } else {
                    Ok(1)
                }
            }
        };
        match step {
            Ok(n) => i += n,
            Err(e) => return usage_error(&e),
        }
    }
    let Some(socket) = socket else {
        return usage_error("submit needs --socket PATH");
    };
    let Some(scenario) = scenario else {
        return usage_error("submit needs a scenario (a registry name or a spec like chain:5:2)");
    };
    spec.scenario = scenario.clone();

    // --expect needs the registry's prediction; parameterised specs
    // (ping:N, chain:S:P) carry none.
    let entry = find_scenario(&scenario);
    if expect && entry.is_none() {
        eprintln!("--expect needs a registry scenario (`nice list`); '{scenario}' is not one");
        return 2;
    }

    let stream = match UnixStream::connect(&socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to '{socket}': {e} (is `nice serve` running?)");
            return 2;
        }
    };
    let Ok(mut writer) = stream.try_clone() else {
        eprintln!("cannot clone socket stream");
        return 2;
    };
    if let Err(e) = write_frame(
        &mut writer,
        &Frame::Job {
            job: 1,
            shard: ShardSpec::solo(), // the server shards; this field is its business
            spec: spec.clone(),
        },
    ) {
        eprintln!("cannot submit job: {e}");
        return 2;
    }

    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Progress {
                transitions,
                unique_states,
                depth,
                ..
            })) => {
                if !quiet {
                    eprintln!(
                        "  {unique_states} states / {transitions} transitions, depth {depth}"
                    );
                }
            }
            Ok(Some(Frame::Violation { violation, .. })) => {
                if !quiet {
                    eprintln!(
                        "  violation: {} — {}",
                        violation.property, violation.message
                    );
                }
            }
            Ok(Some(Frame::JobDone {
                stats, violations, ..
            })) => {
                let passed = violations.is_empty();
                println!(
                    "{}: {} unique states, {} transitions, {} violation{} ({:.3}s)",
                    spec.scenario,
                    stats.unique_states,
                    stats.transitions,
                    violations.len(),
                    if violations.len() == 1 { "" } else { "s" },
                    stats.duration.as_secs_f64(),
                );
                let mut properties: Vec<&str> =
                    violations.iter().map(|v| v.property.as_str()).collect();
                properties.sort_unstable();
                properties.dedup();
                for property in &properties {
                    println!("  violated: {property}");
                }
                if expect {
                    let entry = entry.expect("checked above");
                    let expected = crate::effective_expectation(&entry, spec.inject_faults);
                    let met = match expected {
                        Some(property) => properties.contains(&property),
                        None => passed,
                    };
                    if !met {
                        eprintln!(
                            "expectation not met for '{}': {}",
                            entry.name,
                            match expected {
                                Some(p) => format!("expected a {p} violation, found none"),
                                None => "this scenario was expected to pass".to_string(),
                            }
                        );
                        return 1;
                    }
                }
                return 0;
            }
            Ok(Some(Frame::Error { message, .. })) => {
                eprintln!("server error: {message}");
                return 2;
            }
            Ok(Some(_)) => {}
            Ok(None) => {
                eprintln!("server closed the connection before finishing the job");
                return 2;
            }
            Err(e) => {
                eprintln!("protocol error: {e}");
                return 2;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nice run --dist N
// ---------------------------------------------------------------------------

/// Runs a check through an in-process [`Coordinator`] with `dist` worker
/// processes — `nice run <scenario> --dist N` without a server.
pub(crate) fn run_distributed(
    spec: &JobSpec,
    dist: usize,
    quiet: bool,
) -> Result<CheckReport, String> {
    let mut coordinator = Coordinator::new(dist).map_err(|e| e.to_string())?;
    coordinator
        .run_job(
            spec,
            |event| {
                if quiet {
                    return;
                }
                match event {
                    JobEvent::Started { workers } => eprintln!(
                        "checking {} over {workers} worker process{} (strategy {}, reduction {})",
                        spec.scenario,
                        if workers == 1 { "" } else { "es" },
                        spec.strategy.name(),
                        spec.reduction.name(),
                    ),
                    JobEvent::Progress {
                        transitions,
                        unique_states,
                        depth,
                    } => eprintln!(
                        "  {unique_states} states / {transitions} transitions, depth {depth}"
                    ),
                    JobEvent::Violation(v) => {
                        eprintln!("  violation: {} — {}", v.property, v.message)
                    }
                    JobEvent::WorkerRestarted { worker } => {
                        eprintln!("  worker {worker} crashed; respawned and shard re-derived")
                    }
                }
            },
            None,
        )
        .map_err(|e| e.to_string())
}
