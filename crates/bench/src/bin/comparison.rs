//! Regenerates the Section 7 comparison between NICE and a generic model
//! checker (SPIN/JPF stand-in): the same workload explored without the
//! domain-specific switch model simplifications.
//!
//! Usage: `comparison [max_pings] [max_transitions]`

use nice_bench::{comparison, stats_cell};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_pings: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let max_transitions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    println!("Section 7 comparison: NICE vs a generic model checker baseline");
    println!("(baseline = no canonical flow table, per-port packet transitions)");
    println!(
        "{:<6} | {:<45} | {:<45} | {:>8}",
        "Pings", "NICE", "generic baseline", "ratio"
    );
    println!("{}", "-".repeat(115));
    for row in comparison(2..=max_pings, max_transitions) {
        println!(
            "{:<6} | {:<45} | {:<45} | {:>7.1}x",
            row.pings,
            stats_cell(&row.nice),
            stats_cell(&row.generic),
            row.transition_ratio()
        );
    }
}
