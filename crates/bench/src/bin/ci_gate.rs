//! Deterministic bench-regression gate for CI.
//!
//! Runs a quick, fixed profile of the exploration engines (the same legs as
//! the `parallel` bin, plus the POR legs) on the pyswitch chain and
//! load-balancer workloads, writes the results as JSON (`BENCH_ci.json` by
//! default), and — when given a committed baseline — fails the process if
//!
//! * an engine explores **more transitions** than the baseline allows
//!   (`> baseline * 1.15`): state-space regressions are deterministic and
//!   always real, or
//! * an engine's **states/s slows down relative to the in-run reference
//!   engine** by more than 15%: rates are normalised against the
//!   deep-clone sequential engine measured in the *same* run, so the gate
//!   compares engine speedups (machine-independent) rather than absolute
//!   throughput (which would make the gate flap with runner hardware).
//!   Each engine reports its best of three runs, and only workloads large
//!   enough to time meaningfully are rate-gated (small ones are report-only).
//!
//! Usage: `ci_gate [--out FILE] [--baseline FILE]`
//!
//! Regenerate the committed baseline with
//! `cargo run --release -p nice-bench --bin ci_gate -- --out bench/baseline.json`.

use nice_bench::jsonv::{validate_json, validate_trace_json};
use nice_bench::{
    chain_fault_workload, chain_ping_workload, engine_configs, exhaustive, load_balancer_workload,
};
use nice_dist::{Coordinator, JobSpec};
use nice_mc::{CheckerConfig, ExploredMode, ModelChecker, Scenario};

/// One engine's measurements on one workload.
struct EngineRow {
    name: String,
    states: u64,
    transitions: u64,
    states_per_sec: f64,
    /// states/s divided by the reference (first) engine's states/s of the
    /// same run — the machine-independent number the gate compares.
    relative_rate: f64,
    /// Frontier nodes stolen between workers (work-stealing legs only).
    work_steals: u64,
    /// Explored-set high-water mark in bytes.
    peak_explored_bytes: u64,
    /// Cold explored-set shards spilled to disk (tiered legs only).
    spilled_shards: u64,
    /// Disk probes the spill segments' bloom filters avoided.
    filter_hits: u64,
    /// Binary searches actually performed against spilled segments.
    disk_probes: u64,
    /// Whether this engine's rate participates in the gate. Legs running a
    /// deliberately degraded explored set (forced spill, bitstate) are
    /// gated on their deterministic counters only: their states/s is
    /// dominated by per-visit disk I/O or hashing and flaps with runner
    /// load far beyond [`RATE_TOLERANCE`].
    rate_gated: bool,
}

struct Profile {
    scenario: String,
    engines: Vec<EngineRow>,
    /// Whether the states/s leg of the gate applies: only workloads with
    /// enough work per run (tens of milliseconds) produce rates stable
    /// enough to gate on — tiny ones are reported but not rate-gated.
    rate_gated: bool,
}

/// Transition-count headroom before the gate fails (deterministic metric).
const TRANSITIONS_TOLERANCE: f64 = 1.15;
/// Allowed relative slowdown of an engine's normalised rate.
const RATE_TOLERANCE: f64 = 0.85;

/// Workers for the parallel legs; fixed so the engine labels (and therefore
/// the baseline keys) never drift with runner hardware.
const GATE_WORKERS: usize = 4;

/// Measurement cycles per profile; each cycle runs every engine once
/// (round-robin) and each engine reports its best cycle. Interleaving the
/// engines means a transient load burst degrades one *cycle* for everyone
/// rather than all runs of one engine, which keeps the relative rates —
/// the numbers the gate compares — stable on busy CI runners.
const MEASUREMENT_CYCLES: usize = 5;

fn profile(label: &str, rate_gated: bool, scenario: impl Fn() -> Scenario) -> Profile {
    let configs = engine_configs(GATE_WORKERS);
    let mut best_rates = vec![0.0f64; configs.len()];
    let mut stats = Vec::new();
    for cycle in 0..MEASUREMENT_CYCLES {
        for (i, (_, config)) in configs.iter().enumerate() {
            let s = exhaustive(scenario(), config.clone());
            let rate = s.unique_states as f64 / s.duration.as_secs_f64().max(1e-9);
            best_rates[i] = best_rates[i].max(rate);
            if cycle == 0 {
                stats.push(s);
            }
        }
    }
    let reference = best_rates[0];
    let engines = configs
        .into_iter()
        .zip(stats)
        .zip(best_rates)
        .map(|(((name, config), s), best_rate)| EngineRow {
            name,
            states: s.unique_states,
            transitions: s.transitions,
            states_per_sec: best_rate,
            relative_rate: best_rate / reference,
            work_steals: s.work_steals,
            peak_explored_bytes: s.peak_explored_bytes,
            spilled_shards: s.spilled_shards,
            filter_hits: s.filter_hits,
            disk_probes: s.disk_probes,
            rate_gated: config.explored.mode == ExploredMode::Mem,
        })
        .collect();
    Profile {
        scenario: label.to_string(),
        engines,
        rate_gated,
    }
}

/// One distributed row: the coordinator + worker-process service checking
/// the same workload. Transition counts are sharding-invariant (each
/// fingerprint has exactly one owner), so they gate like any engine's; the
/// rate leg is exempt — process spawn and IPC framing costs depend on the
/// runner, and the in-process reference engine is not a fair yardstick for
/// a multi-process run.
fn dist_profile(coordinator: &mut Coordinator, label: &str, spec: &JobSpec) -> Profile {
    let name = format!("dist-{}proc", coordinator.workers());
    let mut best_rate = 0.0f64;
    let mut first: Option<nice_mc::CheckReport> = None;
    for _ in 0..MEASUREMENT_CYCLES {
        let report = coordinator
            .run_job(spec, |_| {}, None)
            .expect("distributed gate job");
        let rate =
            report.stats.unique_states as f64 / report.stats.duration.as_secs_f64().max(1e-9);
        best_rate = best_rate.max(rate);
        if first.is_none() {
            first = Some(report);
        }
    }
    let report = first.expect("at least one measurement cycle");
    Profile {
        scenario: label.to_string(),
        engines: vec![EngineRow {
            name,
            states: report.stats.unique_states,
            transitions: report.stats.transitions,
            states_per_sec: best_rate,
            relative_rate: 1.0,
            work_steals: report.stats.work_steals,
            peak_explored_bytes: report.stats.peak_explored_bytes,
            spilled_shards: report.stats.spilled_shards,
            filter_hits: report.stats.filter_hits,
            disk_probes: report.stats.disk_probes,
            rate_gated: false,
        }],
        rate_gated: false,
    }
}

/// The parallelism the profile ran with; recorded in the JSON so the gate
/// can tell whether a baseline was measured on comparable hardware.
fn core_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn render_json(profiles: &[Profile]) -> String {
    let mut out = format!("{{\n  \"cores\": {},\n  \"profiles\": [\n", core_count());
    for (pi, p) in profiles.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"engines\": [\n",
            p.scenario
        ));
        for (ei, e) in p.engines.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"states\": {}, \"transitions\": {}, \
                 \"states_per_sec\": {:.1}, \"relative_rate\": {:.4}, \
                 \"work_steals\": {}, \"peak_explored_bytes\": {}, \
                 \"spilled_shards\": {}, \"filter_hits\": {}, \"disk_probes\": {}}}{}\n",
                e.name,
                e.states,
                e.transitions,
                e.states_per_sec,
                e.relative_rate,
                e.work_steals,
                e.peak_explored_bytes,
                e.spilled_shards,
                e.filter_hits,
                e.disk_probes,
                if ei + 1 < p.engines.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if pi + 1 < profiles.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal extraction for the gate's own JSON shape: finds the object for
/// `(scenario, engine)` and pulls numeric fields out of it. Not a general
/// JSON parser — it only has to read what `render_json` writes.
fn baseline_lookup<'a>(baseline: &'a str, scenario: &str, engine: &str) -> Option<&'a str> {
    let scen_pos = baseline.find(&format!("\"scenario\": \"{scenario}\""))?;
    let tail = &baseline[scen_pos..];
    // Stay within this scenario block: stop at the next "scenario" key.
    let block_end = tail[1..]
        .find("\"scenario\"")
        .map(|i| i + 1)
        .unwrap_or(tail.len());
    let block = &tail[..block_end];
    let eng_pos = block.find(&format!("\"name\": \"{engine}\""))?;
    let row = &block[eng_pos..];
    let row_end = row.find('}').unwrap_or(row.len());
    Some(&row[..row_end])
}

fn numeric_field(row: &str, key: &str) -> Option<f64> {
    let pos = row.find(&format!("\"{key}\":"))?;
    let rest = row[pos..].split(':').nth(1)?;
    rest.trim()
        .trim_end_matches(',')
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = String::from("BENCH_ci.json");
    let mut baseline_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--baseline" => {
                baseline_path = Some(args.get(i + 1).expect("--baseline needs a path").clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    // A dormant fault plan must not perturb the gated numbers: the chain
    // workload *with* a fault plan attached but injection off (the default)
    // has to explore the identical state space as the plain chain workload.
    // Checked before profiling so a zero-cost regression fails fast, ahead
    // of the (slower) measurement cycles.
    let plain = exhaustive(chain_ping_workload(3, 1), CheckerConfig::default());
    let dormant = exhaustive(chain_fault_workload(3, 1), CheckerConfig::default());
    assert_eq!(
        (plain.transitions, plain.unique_states),
        (dormant.transitions, dormant.unique_states),
        "a fault plan with injection disabled changed the explored state space"
    );
    println!(
        "dormant-fault-plan check: OK ({} transitions, {} states either way)",
        plain.transitions, plain.unique_states
    );

    // The debugging toolkit contract: every witness the checker reports
    // must serialize to schema-valid `nice-trace-v1` JSON and reproduce its
    // violation under replay. Gated here so a trace-format or replay
    // regression fails CI even if no unit test covers the exact scenario.
    let checker = ModelChecker::new(load_balancer_workload(), CheckerConfig::default());
    let report = checker.run();
    let violation = report
        .first_violation()
        .expect("the load-balancer workload is the BUG-V witness generator");
    let trace_json = violation.trace.to_json();
    validate_trace_json(&trace_json)
        .expect("emitted witness trace failed nice-trace-v1 validation");
    let replay = checker.replay(&violation.trace);
    assert!(
        replay.completed() && replay.reproduces(&violation.trace),
        "emitted witness trace did not reproduce under replay: {replay}"
    );
    println!(
        "trace self-validation check: OK ({} steps, {} bytes of nice-trace-v1)",
        violation.trace.len(),
        trace_json.len()
    );

    let mut profiles = vec![
        profile("pyswitch-chain-5sw-2pings", true, || {
            chain_ping_workload(5, 2)
        }),
        profile("loadbalancer-bug-v", false, load_balancer_workload),
    ];

    // Multi-worker rows: the same workloads through `nice serve`'s
    // coordinator + 2 sharded worker processes. One pool serves all cycles
    // (respawning per cycle would measure process startup, not checking).
    // Needs `cargo build --release` first: the pool execs the
    // `nice-dist-worker` binary next to this one.
    let mut coordinator = Coordinator::new(2).expect("spawn distributed worker pool");
    let chain_spec = JobSpec {
        stop_at_first_violation: false,
        ..JobSpec::new("chain:5:2")
    };
    profiles.push(dist_profile(
        &mut coordinator,
        "pyswitch-chain-5sw-2pings-dist",
        &chain_spec,
    ));
    let bug_v_spec = JobSpec {
        stop_at_first_violation: false,
        ..JobSpec::new("bug-v-packets-dropped-in-transition")
    };
    profiles.push(dist_profile(
        &mut coordinator,
        "loadbalancer-bug-v-dist",
        &bug_v_spec,
    ));
    drop(coordinator);

    let json = render_json(&profiles);
    validate_json(&json).expect("ci_gate emitted malformed JSON");
    // Schema-presence gate: the scheduler and tiered-explored counters are
    // part of the BENCH json shape now; a refactor that silently drops them
    // fails here, not in whatever dashboard consumes the file.
    for key in [
        "work_steals",
        "peak_explored_bytes",
        "spilled_shards",
        "filter_hits",
        "disk_probes",
    ] {
        assert!(
            json.contains(&format!("\"{key}\":")),
            "BENCH json lost the \"{key}\" counter"
        );
    }
    std::fs::write(&out_path, &json).expect("write results");
    println!("wrote {out_path}");
    for p in &profiles {
        println!("{}", p.scenario);
        for e in &p.engines {
            println!(
                "  {:<32} states {:>8}  transitions {:>8}  {:>10.0} states/s ({:.2}x)",
                e.name, e.states, e.transitions, e.states_per_sec, e.relative_rate
            );
            if e.work_steals + e.spilled_shards + e.disk_probes > 0 {
                println!(
                    "  {:<32} steals {}  spilled {}  filter hits {}  disk probes {}  peak {} KiB",
                    "",
                    e.work_steals,
                    e.spilled_shards,
                    e.filter_hits,
                    e.disk_probes,
                    e.peak_explored_bytes >> 10
                );
            }
        }
    }

    // The headline number of the scheduler rework: work-stealing vs the old
    // work-donation protocol at GATE_WORKERS on the chain profile. Report
    // only — the speedup needs >= GATE_WORKERS physical cores to mean
    // anything, and CI runners vary.
    let steal_name = format!("parallel ({GATE_WORKERS} workers)");
    let donate_name = format!("parallel donation ({GATE_WORKERS} workers)");
    if let Some(chain) = profiles.first() {
        let rate = |name: &str| {
            chain
                .engines
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.states_per_sec)
        };
        if let (Some(steal), Some(donate)) = (rate(&steal_name), rate(&donate_name)) {
            println!(
                "work-stealing vs donation ({} workers, {} cores): {:.2}x{}",
                GATE_WORKERS,
                core_count(),
                steal / donate.max(1e-9),
                if core_count() < GATE_WORKERS {
                    " [fewer cores than workers; speedup not meaningful on this machine]"
                } else {
                    ""
                }
            );
        }
    }

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));

    // Relative rates shift with core count (the parallel legs especially),
    // so a baseline measured on different hardware cannot gate throughput:
    // downgrade the rate leg to a warning until the baseline is
    // regenerated on matching hardware. Transition counts are
    // deterministic and are always gated.
    let baseline_cores = numeric_field(&baseline, "cores").map(|c| c as usize);
    let rates_comparable = baseline_cores == Some(core_count());
    if !rates_comparable {
        println!(
            "bench gate: baseline cores ({}) != this machine ({}); \
             states/s checks are report-only until bench/baseline.json is \
             regenerated here",
            baseline_cores.map_or("unknown".to_string(), |c| c.to_string()),
            core_count()
        );
    }

    let mut failures = Vec::new();
    for p in &profiles {
        for e in &p.engines {
            let Some(row) = baseline_lookup(&baseline, &p.scenario, &e.name) else {
                failures.push(format!(
                    "{} / {}: missing from baseline {baseline_path}",
                    p.scenario, e.name
                ));
                continue;
            };
            let base_transitions = numeric_field(row, "transitions").expect("baseline transitions");
            let base_rel = numeric_field(row, "relative_rate").expect("baseline relative_rate");
            if e.transitions as f64 > base_transitions * TRANSITIONS_TOLERANCE {
                failures.push(format!(
                    "{} / {}: transitions regressed {} -> {} (>{:.0}% headroom)",
                    p.scenario,
                    e.name,
                    base_transitions,
                    e.transitions,
                    (TRANSITIONS_TOLERANCE - 1.0) * 100.0
                ));
            }
            if p.rate_gated
                && e.rate_gated
                && rates_comparable
                && e.relative_rate < base_rel * RATE_TOLERANCE
            {
                failures.push(format!(
                    "{} / {}: states/s (relative to deep-clone reference) regressed \
                     {base_rel:.2}x -> {:.2}x (>15%)",
                    p.scenario, e.name, e.relative_rate
                ));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench gate: OK (within {TRANSITIONS_TOLERANCE}x transitions, {RATE_TOLERANCE}x rate)"
        );
    } else {
        eprintln!("bench gate: FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
