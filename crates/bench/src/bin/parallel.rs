//! States/sec comparison of the exploration engines on the pyswitch FullDfs
//! chain-ping workload and the load-balancer workload (the BUG-V registry
//! entry): the pre-COW sequential baseline (eager deep clones),
//! copy-on-write snapshots, checkpointed replay, the parallel engine and
//! the POR legs — the shared [`nice_bench::engine_configs`] matrix.
//!
//! Usage: `parallel [switches] [pings] [workers] [--progress]`
//!
//! With `--progress`, each run streams its session's `Progress` events to
//! stderr while it explores.

use nice_bench::{chain_ping_workload, engine_configs, exhaustive_with, load_balancer_workload};
use nice_mc::{CheckEvent, NoopObserver, Scenario, SearchStats};

fn states_per_sec(stats: &SearchStats) -> f64 {
    stats.unique_states as f64 / stats.duration.as_secs_f64()
}

/// Prints `Progress` events to stderr; everything else is ignored.
fn progress_printer(engine: String) -> impl FnMut(&CheckEvent) + Send {
    move |event: &CheckEvent| {
        if let CheckEvent::Progress {
            states,
            transitions,
            rate,
            ..
        } = event
        {
            eprintln!("  [{engine}] {states} states / {transitions} transitions ({rate:.0}/s)");
        }
    }
}

fn run(label: &str, scenario: impl Fn() -> Scenario, workers: usize, progress: bool) {
    println!("{label}");
    println!(
        "{:<32} {:>12} {:>12} {:>12} {:>14}",
        "engine", "states", "transitions", "time", "states/sec"
    );
    println!("{}", "-".repeat(86));
    let mut baseline: Option<f64> = None;
    for (name, config) in engine_configs(workers) {
        let stats = if progress {
            exhaustive_with(scenario(), config, &mut progress_printer(name.clone()))
        } else {
            exhaustive_with(scenario(), config, &mut NoopObserver)
        };
        let rate = states_per_sec(&stats);
        let speedup = baseline.map(|b| rate / b).unwrap_or(1.0);
        baseline.get_or_insert(rate);
        println!(
            "{:<32} {:>12} {:>12} {:>11.2?} {:>11.0} ({speedup:.2}x)",
            name, stats.unique_states, stats.transitions, stats.duration, rate
        );
    }
    println!();
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let progress = args.iter().any(|a| a == "--progress");
    args.retain(|a| a != "--progress");
    let switches: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let pings: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let workers: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);

    run(
        &format!("pyswitch FullDfs chain workload, {switches} switches, {pings} pings"),
        || chain_ping_workload(switches, pings),
        workers,
        progress,
    );
    run(
        "load balancer (BUG-V scenario), FullDfs",
        load_balancer_workload,
        workers,
        progress,
    );
}
