//! States/sec comparison of the exploration engines on the pyswitch FullDfs
//! chain-ping workload and the load-balancer workload: the pre-COW
//! sequential baseline (eager deep clones), copy-on-write snapshots,
//! checkpointed replay, and the parallel engine.
//!
//! Usage: `parallel [switches] [pings] [workers]`

use nice_bench::{chain_ping_workload, exhaustive, load_balancer_workload};
use nice_mc::{CheckerConfig, ReductionKind, Scenario, SearchStats};

fn states_per_sec(stats: &SearchStats) -> f64 {
    stats.unique_states as f64 / stats.duration.as_secs_f64()
}

fn engine_configs(workers: usize) -> Vec<(String, CheckerConfig)> {
    vec![
        (
            "sequential-seed (deep clone)".into(),
            CheckerConfig {
                force_deep_clone: true,
                ..CheckerConfig::default()
            },
        ),
        ("cow-snapshot".into(), CheckerConfig::default()),
        (
            "checkpoint-replay (K=8)".into(),
            CheckerConfig::default().with_checkpoint_interval(8),
        ),
        (
            format!("parallel ({workers} workers)"),
            CheckerConfig::default().with_workers(workers),
        ),
        (
            "por (sleep sets)".into(),
            CheckerConfig::default().with_reduction(ReductionKind::Por),
        ),
        (
            format!("por + parallel ({workers} workers)"),
            CheckerConfig::default()
                .with_reduction(ReductionKind::Por)
                .with_workers(workers),
        ),
    ]
}

fn run(label: &str, scenario: impl Fn() -> Scenario, workers: usize) {
    println!("{label}");
    println!(
        "{:<32} {:>12} {:>12} {:>12} {:>14}",
        "engine", "states", "transitions", "time", "states/sec"
    );
    println!("{}", "-".repeat(86));
    let mut baseline: Option<f64> = None;
    for (name, config) in engine_configs(workers) {
        let stats = exhaustive(scenario(), config);
        let rate = states_per_sec(&stats);
        let speedup = baseline.map(|b| rate / b).unwrap_or(1.0);
        baseline.get_or_insert(rate);
        println!(
            "{:<32} {:>12} {:>12} {:>11.2?} {:>11.0} ({speedup:.2}x)",
            name, stats.unique_states, stats.transitions, stats.duration, rate
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let switches: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let pings: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let workers: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);

    run(
        &format!("pyswitch FullDfs chain workload, {switches} switches, {pings} pings"),
        || chain_ping_workload(switches, pings),
        workers,
    );
    run(
        "load balancer (BUG-V scenario), FullDfs",
        load_balancer_workload,
        workers,
    );
}
