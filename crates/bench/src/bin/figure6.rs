//! Regenerates Figure 6: relative state-space reduction of the NO-DELAY and
//! FLOW-IR search strategies (plus UNUSUAL) vs the full NICE-MC search.
//!
//! Usage: `figure6 [max_pings] [max_transitions]`

use nice_bench::figure6;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_pings: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let max_transitions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    println!("Figure 6: relative reduction vs NICE-MC full search (higher is better)");
    println!(
        "{:<6} | {:>22} | {:>22} | {:>22} | {:>18} | {:>18}",
        "Pings",
        "NO-DELAY transitions",
        "FLOW-IR transitions",
        "UNUSUAL transitions",
        "NO-DELAY CPU time",
        "FLOW-IR CPU time"
    );
    println!("{}", "-".repeat(125));
    let rows = figure6(2..=max_pings, max_transitions);
    for row in &rows {
        println!(
            "{:<6} | {:>21.1}% | {:>21.1}% | {:>21.1}% | {:>17.1}% | {:>17.1}%",
            row.pings,
            100.0 * row.transition_reduction(&row.no_delay),
            100.0 * row.transition_reduction(&row.flow_ir),
            100.0 * row.transition_reduction(&row.unusual),
            100.0 * row.time_reduction(&row.no_delay),
            100.0 * row.time_reduction(&row.flow_ir),
        );
    }
    println!();
    println!("Baseline (full search) sizes:");
    for row in &rows {
        println!(
            "  {} pings: {} transitions, {} unique states",
            row.pings, row.full.transitions, row.full.unique_states
        );
    }
}
