//! Regenerates Table 2: transitions / time to the first property violation
//! for each of the eleven bugs of Section 8 under the four search strategies.
//!
//! Usage: `table2 [max_transitions_per_cell]` (default 200000)

use nice_apps::scenarios::BugId;
use nice_bench::table2;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);

    println!("Table 2: transitions / time to the first violation uncovering each bug");
    println!("(budget: {budget} transitions per cell; 'Missed' = not found within the reduced search space/budget)");
    println!();
    println!(
        "{:<5} {:<14} {:<24} | {:>16} | {:>16} | {:>16} | {:>16}",
        "BUG", "application", "property", "PKT-SEQ only", "NO-DELAY", "FLOW-IR", "UNUSUAL"
    );
    println!("{}", "-".repeat(125));
    for row in table2(BugId::ALL, budget) {
        let cells: Vec<String> = row.outcomes.iter().map(|(_, o)| o.cell()).collect();
        println!(
            "{:<5} {:<14} {:<24} | {:>16} | {:>16} | {:>16} | {:>16}",
            row.bug.label(),
            row.bug.application(),
            row.bug.property_name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
}
