//! Ablation of the design choices called out in DESIGN.md: canonical flow
//! tables, the coarse `process_pkt` transition, and replay-based state
//! storage.
//!
//! Usage: `ablation [pings] [max_transitions]`

use nice_bench::{ablation, stats_cell};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pings: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let max_transitions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    println!("Design-choice ablation ({pings}-ping workload)");
    println!("{}", "-".repeat(110));
    for row in ablation(pings, max_transitions) {
        println!("{:<68} | {}", row.label, stats_cell(&row.stats));
    }
}
