//! Regenerates Table 1: exhaustive search with NICE-MC vs
//! NO-SWITCH-REDUCTION on the layer-2 ping workload.
//!
//! Usage: `table1 [max_pings] [max_transitions]`
//! (defaults: 4 pings, unbounded transitions; the 5-ping row of the paper is
//! enabled by passing `5`, and takes a long time — as it did in the paper.)

use nice_bench::{stats_cell, table1};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_pings: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let max_transitions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    println!("Table 1: NICE-MC vs NO-SWITCH-REDUCTION (layer-2 ping workload, pyswitch)");
    println!(
        "{:<6} | {:<45} | {:<45} | {:>6}",
        "Pings", "NICE-MC (transitions, states, time)", "NO-SWITCH-REDUCTION", "rho"
    );
    println!("{}", "-".repeat(115));
    for row in table1(2..=max_pings, max_transitions) {
        println!(
            "{:<6} | {:<45} | {:<45} | {:>6.2}",
            row.pings,
            stats_cell(&row.nice),
            stats_cell(&row.no_reduction),
            row.rho()
        );
    }
    println!();
    println!("rho = (Unique(NO-SWITCH-REDUCTION) - Unique(NICE-MC)) / Unique(NO-SWITCH-REDUCTION)");
}
